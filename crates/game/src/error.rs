//! Error type for game construction and solving.

use std::error::Error;
use std::fmt;

/// Errors produced by game-theoretic routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GameError {
    /// A probability vector had non-finite or negative entries, or a
    /// zero sum.
    InvalidDistribution {
        /// Explanation of the violation.
        message: String,
    },
    /// Strategy length does not match the game dimension.
    DimensionMismatch {
        /// Expected number of actions.
        expected: usize,
        /// Found number of actions.
        found: usize,
    },
    /// The payoff matrix was empty or contained non-finite entries.
    InvalidPayoffs {
        /// Explanation of the violation.
        message: String,
    },
    /// The LP solver hit its pivot cap (should not happen with Bland's
    /// rule unless the problem is numerically degenerate).
    SolverStalled {
        /// Pivots performed before giving up.
        pivots: usize,
    },
    /// An iterative solver failed to reach the requested exploitability.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Exploitability at the final iterate.
        exploitability: f64,
    },
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::InvalidDistribution { message } => {
                write!(f, "invalid probability distribution: {message}")
            }
            GameError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected} actions, found {found}")
            }
            GameError::InvalidPayoffs { message } => {
                write!(f, "invalid payoff matrix: {message}")
            }
            GameError::SolverStalled { pivots } => {
                write!(f, "simplex stalled after {pivots} pivots")
            }
            GameError::NoConvergence {
                iterations,
                exploitability,
            } => write!(
                f,
                "no convergence after {iterations} iterations (exploitability {exploitability:.3e})"
            ),
        }
    }
}

impl Error for GameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GameError::InvalidDistribution {
            message: "negative".into()
        }
        .to_string()
        .contains("negative"));
        assert!(GameError::DimensionMismatch {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains("3"));
        assert!(GameError::InvalidPayoffs {
            message: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(GameError::SolverStalled { pivots: 10 }
            .to_string()
            .contains("10"));
        assert!(GameError::NoConvergence {
            iterations: 5,
            exploitability: 0.5
        }
        .to_string()
        .contains("5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GameError>();
    }
}
