//! Shared machinery for the minibatch (GEMM) fit path.
//!
//! The three SGD learners opt into
//! [`FitKernel::Minibatch`](crate::model::FitKernel) through the same
//! scratch object: rows are gathered from the [`DataView`] in shuffle
//! order into a contiguous [`RowPanel`], their margins computed in one
//! fused pass, and the aggregated subgradient applied with one fused
//! scale-then-accumulate update. All buffers are recycled across
//! batches and epochs, so a whole fit allocates a handful of vectors
//! once.

use poisongame_data::DataView;
use poisongame_linalg::gemm::{self, RowPanel};

/// Reusable per-batch buffers for the minibatch fit path.
pub(crate) struct BatchScratch {
    /// Gathered batch rows, contiguous in shuffle order.
    panel: RowPanel,
    /// Signed labels of the gathered rows (`labels[j]` pairs with
    /// `panel.row(j)`).
    pub labels: Vec<f64>,
    /// Margins `y ⊙ (Xw + b)` of the gathered rows, refreshed by
    /// [`BatchScratch::compute_margins`].
    pub margins: Vec<f64>,
    /// Panel-row indices participating in the aggregated update.
    pub picked: Vec<usize>,
    /// Update coefficient per picked row (in lockstep with `picked`).
    pub coeffs: Vec<f64>,
}

impl BatchScratch {
    /// Scratch sized for batches of up to `batch` rows of width `dim`.
    pub fn new(dim: usize, batch: usize) -> Self {
        Self {
            panel: RowPanel::with_capacity(batch, dim),
            labels: Vec::with_capacity(batch),
            margins: Vec::with_capacity(batch),
            picked: Vec::with_capacity(batch),
            coeffs: Vec::with_capacity(batch),
        }
    }

    /// Copy the rows at `idx` (and their signed labels) into the
    /// contiguous panel, replacing the previous batch.
    pub fn gather(&mut self, data: &dyn DataView, idx: &[usize]) {
        self.panel.clear();
        self.labels.clear();
        for &i in idx {
            self.panel.push(data.point(i));
            self.labels.push(data.label(i).to_signed());
        }
    }

    /// Refresh `margins` with `y ⊙ (Xw + b)` over the gathered batch.
    pub fn compute_margins(&mut self, w: &[f64], bias: f64) {
        gemm::fused_margins(&self.panel, &self.labels, w, bias, &mut self.margins)
            .expect("gathered batch dimensions are consistent");
    }

    /// Apply `w ← shrink·w + Σ coeffs·rows[picked]` in one fused pass.
    /// Pass `shrink = 1.0` to skip the scale.
    pub fn apply(&self, shrink: f64, w: &mut [f64]) {
        gemm::scale_accumulate(shrink, &self.panel, &self.picked, &self.coeffs, w)
            .expect("picked/coeffs are built in lockstep over panel rows");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_data::{Dataset, Label};

    #[test]
    fn gather_margins_apply_round_trip() {
        let data = Dataset::from_rows(
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            vec![Label::Positive, Label::Negative, Label::Positive],
        )
        .unwrap();
        let mut scratch = BatchScratch::new(2, 2);
        scratch.gather(&data, &[2, 0]);
        assert_eq!(scratch.labels, vec![1.0, 1.0]);
        scratch.compute_margins(&[0.5, -0.5], 0.25);
        assert_eq!(scratch.margins, vec![0.25, 0.75]);

        scratch.picked.clear();
        scratch.coeffs.clear();
        scratch.picked.push(1);
        scratch.coeffs.push(2.0);
        let mut w = vec![1.0, 1.0];
        // w ← 0.5·w + 2·row(1) = [0.5+2, 0.5+0]
        scratch.apply(0.5, &mut w);
        assert_eq!(w, vec![2.5, 0.5]);

        // Buffers recycle: the next gather replaces everything.
        scratch.gather(&data, &[1]);
        assert_eq!(scratch.labels, vec![-1.0]);
        scratch.compute_margins(&[1.0, 0.0], 0.0);
        assert_eq!(scratch.margins, vec![-0.0]);
    }
}
