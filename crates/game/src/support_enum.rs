//! Exact equilibrium by support enumeration — for small games only.
//!
//! For every candidate equal-size support pair the indifference
//! conditions form a square linear system; a solution with non-negative
//! probabilities and no profitable outside deviation is a Nash
//! equilibrium. Exponential in the action counts, so the entry point
//! rejects games with more than [`MAX_ACTIONS`] actions per side. Used
//! in tests as a third independent oracle besides the LP and the
//! learning dynamics.

use crate::error::GameError;
use crate::linsys;
use crate::matrix_game::MatrixGame;
use crate::strategy::{MixedStrategy, Solution};
use poisongame_linalg::Matrix;

/// Maximum actions per player accepted by [`solve_support_enumeration`].
pub const MAX_ACTIONS: usize = 10;

const TOL: f64 = 1e-8;

/// Enumerate all size-`k` subsets of `0..n` (lexicographic).
fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        let needed = k - current.len();
        for i in start..=(n - needed) {
            current.push(i);
            rec(i + 1, n, k, current, out);
            current.pop();
        }
    }
    if k == 0 || k > n {
        return out;
    }
    rec(0, n, k, &mut current, &mut out);
    out
}

/// Solve the indifference system for a support pair. Returns the
/// candidate `(probabilities over support, value)` for the *opponent*
/// mixing over `mix_support` that makes every action in `indiff_support`
/// yield the same payoff.
///
/// `payoff(i, j)` must give the payoff relevant to the indifferent
/// player for its action `i` and the mixing player's action `j`.
fn indifference_mix<F>(
    indiff_support: &[usize],
    mix_support: &[usize],
    payoff: F,
) -> Option<(Vec<f64>, f64)>
where
    F: Fn(usize, usize) -> f64,
{
    let k = indiff_support.len();
    debug_assert_eq!(k, mix_support.len());
    // Unknowns: k probabilities + value v.
    // Rows: k indifference equations  Σ_j p_j payoff(i,j) − v = 0,
    //       1 normalization           Σ_j p_j = 1.
    let n = k + 1;
    let mut rows = Vec::with_capacity(n);
    for &i in indiff_support {
        let mut row = Vec::with_capacity(n);
        for &j in mix_support {
            row.push(payoff(i, j));
        }
        row.push(-1.0);
        rows.push(row);
    }
    let mut norm = vec![1.0; k];
    norm.push(0.0);
    rows.push(norm);
    let a = Matrix::from_rows(&rows).ok()?;
    let mut b = vec![0.0; n];
    b[k] = 1.0;
    let sol = linsys::solve(&a, &b)?;
    let (probs, v) = sol.split_at(k);
    if probs.iter().any(|&p| p < -TOL) {
        return None;
    }
    let clipped: Vec<f64> = probs.iter().map(|&p| p.max(0.0)).collect();
    Some((clipped, v[0]))
}

/// Solve a small zero-sum game exactly by support enumeration.
///
/// # Errors
///
/// Returns [`GameError::InvalidPayoffs`] for games larger than
/// [`MAX_ACTIONS`] per side, and [`GameError::NoConvergence`] if no
/// support pair yields an equilibrium (cannot happen for exact
/// arithmetic; indicates numerical degeneracy).
pub fn solve_support_enumeration(game: &MatrixGame) -> Result<Solution, GameError> {
    let (m, n) = game.shape();
    if m > MAX_ACTIONS || n > MAX_ACTIONS {
        return Err(GameError::InvalidPayoffs {
            message: format!("support enumeration limited to {MAX_ACTIONS} actions per side"),
        });
    }

    // Try supports from small to large; equal sizes first (square
    // systems); this finds pure saddle points at k = 1 immediately.
    for k in 1..=m.min(n) {
        for row_support in subsets(m, k) {
            for col_support in subsets(n, k) {
                // Column mix that makes the supported rows indifferent.
                let Some((y_probs, v1)) =
                    indifference_mix(&row_support, &col_support, |i, j| game.payoff(i, j))
                else {
                    continue;
                };
                // Row mix that makes the supported columns indifferent.
                let Some((x_probs, v2)) =
                    indifference_mix(&col_support, &row_support, |j, i| game.payoff(i, j))
                else {
                    continue;
                };
                if (v1 - v2).abs() > 1e-6 {
                    continue;
                }
                let v = 0.5 * (v1 + v2);

                // Assemble full-length strategies.
                let mut x = vec![0.0; m];
                for (idx, &i) in row_support.iter().enumerate() {
                    x[i] = x_probs[idx];
                }
                let mut y = vec![0.0; n];
                for (idx, &j) in col_support.iter().enumerate() {
                    y[j] = y_probs[idx];
                }
                let Ok(xs) = MixedStrategy::from_weights(x) else {
                    continue;
                };
                let Ok(ys) = MixedStrategy::from_weights(y) else {
                    continue;
                };

                // No profitable deviation outside the supports.
                let row_vals = game.row_values(&ys)?;
                if row_vals.iter().any(|&rv| rv > v + 1e-6) {
                    continue;
                }
                let col_vals = game.column_values(&xs)?;
                if col_vals.iter().any(|&cv| cv < v - 1e-6) {
                    continue;
                }

                return Ok(Solution {
                    row_strategy: xs,
                    column_strategy: ys,
                    value: v,
                    iterations: 1,
                });
            }
        }
    }

    Err(GameError::NoConvergence {
        iterations: 0,
        exploitability: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve_lp;

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(subsets(3, 3), vec![vec![0, 1, 2]]);
        assert!(subsets(2, 3).is_empty());
        assert!(subsets(3, 0).is_empty());
    }

    #[test]
    fn pure_saddle_found_at_k1() {
        let g = MatrixGame::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        let sol = solve_support_enumeration(&g).unwrap();
        assert!((sol.value - 2.0).abs() < 1e-9);
        assert!(sol.row_strategy.is_pure());
    }

    #[test]
    fn pennies_support_is_full() {
        let g = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let sol = solve_support_enumeration(&g).unwrap();
        assert!(sol.value.abs() < 1e-9);
        assert_eq!(sol.row_strategy.support().len(), 2);
        assert!((sol.row_strategy.prob(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_lp_on_random_games() {
        use poisongame_linalg::Xoshiro256StarStar;
        use rand::SeedableRng;
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        for _ in 0..5 {
            let g = MatrixGame::from_fn(4, 4, |_, _| (rng.next_f64() * 10.0).round() - 5.0);
            let lp = solve_lp(&g).unwrap();
            let se = solve_support_enumeration(&g).unwrap();
            assert!(
                (lp.value - se.value).abs() < 1e-6,
                "lp {} vs se {}",
                lp.value,
                se.value
            );
        }
    }

    #[test]
    fn rejects_oversized_games() {
        let g = MatrixGame::from_fn(MAX_ACTIONS + 1, 2, |i, j| (i + j) as f64);
        assert!(matches!(
            solve_support_enumeration(&g).unwrap_err(),
            GameError::InvalidPayoffs { .. }
        ));
    }

    #[test]
    fn rps_uniform() {
        let g = MatrixGame::from_rows(&[
            vec![0.0, -1.0, 1.0],
            vec![1.0, 0.0, -1.0],
            vec![-1.0, 1.0, 0.0],
        ])
        .unwrap();
        let sol = solve_support_enumeration(&g).unwrap();
        assert!(sol.value.abs() < 1e-9);
        for p in sol.column_strategy.probabilities() {
            assert!((p - 1.0 / 3.0).abs() < 1e-9);
        }
    }
}
