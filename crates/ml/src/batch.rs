//! Cross-model batched evaluation: score many fitted linear states
//! against one feature matrix in a single blocked product.
//!
//! Simulation cells that share a prepared dataset differ only in their
//! fitted `(w, b)`; evaluating them one model at a time re-streams the
//! test matrix once per cell. [`batched_accuracy`] stacks the weight
//! vectors into one right-hand-side panel and computes every cell's
//! decision values in one [`gemm::gemm_nt`] call. The kernel
//! accumulates in [`poisongame_linalg::vector::dot`] order, so each
//! returned accuracy is bit-identical to
//! [`Classifier::accuracy_on`](crate::Classifier::accuracy_on) on the
//! same state — batching is a pure memory-traffic optimization.

use crate::error::MlError;
use crate::model::LinearState;
use poisongame_data::Label;
use poisongame_linalg::gemm::{self, RowSource};
use poisongame_linalg::Matrix;

/// Accuracy of each linear state on `(features, labels)`, all computed
/// through one blocked multi-RHS product. Returns one accuracy per
/// state, in order; an empty evaluation set yields `0.0` per state
/// (matching `accuracy_on`).
///
/// Large products fan out across the shared worker pool inside
/// [`gemm::gemm_nt`] (hence the `Sync` bound on `features`); that
/// nesting is safe even when this call itself runs on a pool worker —
/// e.g. inside a `parallel_map` cell — because submitters participate
/// in their own batches. Results stay bit-identical either way.
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] if `labels.len()` differs
/// from the feature row count or any state's width differs from the
/// feature column count.
pub fn batched_accuracy(
    features: &(impl RowSource + Sync),
    labels: &[Label],
    states: &[LinearState],
) -> Result<Vec<f64>, MlError> {
    if labels.len() != features.rows() {
        return Err(MlError::DimensionMismatch {
            expected: features.rows(),
            found: labels.len(),
        });
    }
    for state in states {
        if state.weights.len() != features.cols() {
            return Err(MlError::DimensionMismatch {
                expected: features.cols(),
                found: state.weights.len(),
            });
        }
    }
    let n = features.rows();
    let k = states.len();
    if n == 0 || k == 0 {
        return Ok(vec![0.0; k]);
    }

    // Stack the weight vectors as rows: decisions = X Wᵀ, no transpose
    // ever materialized.
    let mut stacked = Matrix::zeros(k, features.cols());
    for (j, state) in states.iter().enumerate() {
        stacked.row_mut(j).copy_from_slice(&state.weights);
    }
    let decisions =
        gemm::gemm_nt(features, &stacked).expect("state widths validated against features");

    let mut accuracies = Vec::with_capacity(k);
    for (j, state) in states.iter().enumerate() {
        let correct = (0..n)
            .filter(|&i| Label::from_signed(decisions.get(i, j) + state.bias) == labels[i])
            .count();
        accuracies.push(correct as f64 / n as f64);
    }
    Ok(accuracies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Classifier, TrainConfig};
    use crate::svm::LinearSvm;
    use poisongame_data::synth::gaussian_blobs;
    use poisongame_data::Dataset;
    use poisongame_linalg::Xoshiro256StarStar;
    use rand::SeedableRng;

    fn blobs(seed: u64) -> Dataset {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        gaussian_blobs(60, 3, 3.0, 0.7, &mut rng)
    }

    #[test]
    fn batched_accuracy_is_bit_identical_to_accuracy_on() {
        let train = blobs(41);
        let test = blobs(42);
        // Several distinct states: different epochs/seeds.
        let mut states = Vec::new();
        let mut singles = Vec::new();
        for (epochs, seed) in [(5usize, 1u64), (20, 2), (40, 3)] {
            let mut svm = LinearSvm::new(TrainConfig {
                epochs,
                seed,
                ..TrainConfig::default()
            });
            svm.fit(&train).unwrap();
            singles.push(svm.accuracy_on(&test));
            states.push(svm.linear_state().unwrap());
        }
        let batched = batched_accuracy(test.features(), test.labels(), &states).unwrap();
        assert_eq!(batched.len(), singles.len());
        for (b, s) in batched.iter().zip(&singles) {
            assert_eq!(b.to_bits(), s.to_bits(), "batched accuracy diverged");
        }
    }

    #[test]
    fn empty_inputs_and_mismatches() {
        let data = blobs(43);
        let state = LinearState {
            weights: vec![0.0; 3],
            bias: 0.0,
        };
        // No states: empty result.
        assert!(batched_accuracy(data.features(), data.labels(), &[])
            .unwrap()
            .is_empty());
        // Empty evaluation set: 0.0 per state, like accuracy_on.
        let empty = Dataset::empty(3);
        assert_eq!(
            batched_accuracy(
                empty.features(),
                empty.labels(),
                std::slice::from_ref(&state)
            )
            .unwrap(),
            vec![0.0]
        );
        // Label-count and width mismatches error.
        assert!(batched_accuracy(data.features(), &[], &[state]).is_err());
        let skinny = LinearState {
            weights: vec![1.0],
            bias: 0.0,
        };
        assert!(batched_accuracy(data.features(), data.labels(), &[skinny]).is_err());
    }
}
