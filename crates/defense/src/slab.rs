//! Slab filter — the second sanitizer of Steinhardt et al. (2017),
//! included as an ablation baseline.
//!
//! Where the sphere filter scores a point by its distance to its class
//! centroid, the slab filter scores it by the magnitude of its
//! projection onto the inter-centroid axis: poison that hides near the
//! sphere boundary but far along the class-separating direction is
//! caught here.

use crate::centroid::CentroidEstimator;
use crate::error::DefenseError;
use crate::filter::{Filter, FilterOutcome};
use poisongame_data::{DataView, Label};
use poisongame_linalg::{stats, vector};
use serde::{Deserialize, Serialize};

/// Slab filter: removes the fraction of each class whose projection
/// onto the centroid axis deviates most from the class centroid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlabFilter {
    remove_fraction: f64,
    centroid: CentroidEstimator,
}

impl SlabFilter {
    /// New slab filter removing `remove_fraction` of each class.
    pub fn new(remove_fraction: f64, centroid: CentroidEstimator) -> Self {
        Self {
            remove_fraction,
            centroid,
        }
    }

    /// The configured removal fraction.
    pub fn remove_fraction(&self) -> f64 {
        self.remove_fraction
    }
}

impl Filter for SlabFilter {
    fn split(&self, data: &dyn DataView) -> Result<FilterOutcome, DefenseError> {
        if !(0.0..1.0).contains(&self.remove_fraction) || self.remove_fraction.is_nan() {
            return Err(DefenseError::BadParameter {
                what: "remove_fraction",
                value: self.remove_fraction,
            });
        }
        if data.is_empty() {
            return Err(DefenseError::EmptyDataset);
        }

        // Class centroids and the separating axis.
        let mut centers = Vec::with_capacity(2);
        for label in Label::both() {
            let idx = data.class_indices(label);
            if idx.is_empty() {
                return Err(DefenseError::MissingClass);
            }
            let points: Vec<&[f64]> = idx.iter().map(|&i| data.point(i)).collect();
            centers.push(self.centroid.estimate(&points)?);
        }
        let mut axis = vector::sub(&centers[1], &centers[0]);
        if vector::normalize(&mut axis).is_err() {
            // Coincident centroids: slab direction undefined, keep all.
            return Ok(FilterOutcome {
                kept_indices: (0..data.len()).collect(),
                removed_indices: Vec::new(),
                class_radii: [None, None],
            });
        }

        let mut kept = Vec::with_capacity(data.len());
        let mut removed = Vec::new();
        let mut class_radii = [None, None];
        for (slot, label) in Label::both().iter().enumerate() {
            let idx = data.class_indices(*label);
            let center = &centers[slot];
            let scores: Vec<f64> = idx
                .iter()
                .map(|&i| {
                    let diff = vector::sub(data.point(i), center);
                    vector::dot(&diff, &axis).abs()
                })
                .collect();
            let threshold = stats::quantile(&scores, 1.0 - self.remove_fraction)
                .map_err(|_| DefenseError::EmptyDataset)?;
            class_radii[slot] = Some(threshold);
            for (&i, &s) in idx.iter().zip(&scores) {
                if s <= threshold {
                    kept.push(i);
                } else {
                    removed.push(i);
                }
            }
        }
        kept.sort_unstable();
        removed.sort_unstable();
        Ok(FilterOutcome {
            kept_indices: kept,
            removed_indices: removed,
            class_radii,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_data::synth::gaussian_blobs;
    use poisongame_data::Dataset;
    use poisongame_linalg::Xoshiro256StarStar;
    use rand::SeedableRng;

    #[test]
    fn keeps_all_at_zero_fraction() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let data = gaussian_blobs(40, 2, 3.0, 0.5, &mut rng);
        let f = SlabFilter::new(0.0, CentroidEstimator::Mean);
        let outcome = f.split(&data).unwrap();
        assert_eq!(outcome.kept_indices.len(), data.len());
    }

    #[test]
    fn removes_requested_fraction() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(12);
        let data = gaussian_blobs(150, 3, 3.0, 0.6, &mut rng);
        let f = SlabFilter::new(0.2, CentroidEstimator::Mean);
        let outcome = f.split(&data).unwrap();
        let frac = outcome.removed_fraction(&data);
        assert!((frac - 0.2).abs() < 0.04, "fraction {frac}");
    }

    #[test]
    fn catches_point_far_along_axis() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let mut data = gaussian_blobs(50, 2, 4.0, 0.4, &mut rng);
        // A point labelled negative but sitting deep in positive
        // territory along the axis.
        let pos_mean = data.class_mean(Label::Positive).unwrap();
        let far = vector::scale_copy(2.0, &pos_mean);
        data.push(&far, Label::Negative).unwrap();
        let injected = data.len() - 1;
        let f = SlabFilter::new(0.05, CentroidEstimator::CoordinateMedian);
        let outcome = f.split(&data).unwrap();
        assert!(
            outcome.removed_indices.contains(&injected),
            "slab missed the planted point"
        );
    }

    #[test]
    fn validates_parameters_and_classes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(14);
        let data = gaussian_blobs(10, 2, 3.0, 0.5, &mut rng);
        assert!(SlabFilter::new(1.5, CentroidEstimator::Mean)
            .split(&data)
            .is_err());
        assert!(SlabFilter::new(0.1, CentroidEstimator::Mean)
            .split(&Dataset::empty(2))
            .is_err());
    }

    #[test]
    fn coincident_centroids_keep_everything() {
        // Same distribution for both classes ⇒ centroids nearly equal;
        // force exact coincidence with identical points.
        let data = Dataset::from_rows(
            vec![
                vec![1.0, 1.0],
                vec![1.0, 1.0],
                vec![1.0, 1.0],
                vec![1.0, 1.0],
            ],
            vec![
                Label::Positive,
                Label::Negative,
                Label::Positive,
                Label::Negative,
            ],
        )
        .unwrap();
        let f = SlabFilter::new(0.2, CentroidEstimator::Mean);
        let outcome = f.split(&data).unwrap();
        assert_eq!(outcome.kept_indices.len(), 4);
    }
}
