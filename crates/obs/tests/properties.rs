//! Property tests for the histogram: merge ≡ recording
//! concatenation, percentile within one bucket of exact, and
//! saturation instead of overflow.
#![cfg(not(feature = "noop"))]

use poisongame_obs::{bucket_index, Histogram};

/// Deterministic xorshift stream so the tests need no RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A value with a random bit width, so every bucket gets traffic.
    fn skewed(&mut self) -> u64 {
        let width = self.next() % 33; // 0..=32 bits
        if width == 0 {
            0
        } else {
            self.next() >> (64 - width)
        }
    }
}

fn stream(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = XorShift(seed | 1);
    (0..n).map(|_| rng.skewed()).collect()
}

#[test]
fn merge_is_recording_concatenation() {
    for (seed_a, seed_b, n_a, n_b) in [(1, 2, 500, 300), (77, 3, 1, 999), (5, 5, 0, 250)] {
        let (a, b) = (stream(seed_a, n_a), stream(seed_b, n_b));
        let (ha, hb, hc) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        // Snapshot-level merge.
        assert_eq!(ha.snapshot().merge(&hb.snapshot()), hc.snapshot());
        // Histogram-level merge.
        ha.merge_from(&hb.snapshot());
        assert_eq!(ha.snapshot(), hc.snapshot());
    }
}

#[test]
fn percentile_within_one_bucket_of_exact() {
    for seed in [3u64, 11, 42, 1234] {
        let values = stream(seed, 2000);
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = snap.percentile(q);
            assert_eq!(
                bucket_index(approx),
                bucket_index(exact),
                "seed {seed} q {q}: approx {approx} not in same bucket as exact {exact}"
            );
            assert!(approx >= exact, "quantile may only overstate");
            assert!(
                approx <= snap.max,
                "quantile never exceeds the observed max"
            );
        }
    }
}

#[test]
fn sum_saturates_instead_of_wrapping() {
    let hist = Histogram::new();
    hist.record(u64::MAX);
    hist.record(u64::MAX);
    hist.record(7);
    let snap = hist.snapshot();
    assert_eq!(snap.sum, u64::MAX, "sum must clamp, not wrap");
    assert_eq!(snap.count, 3, "count stays exact");
    assert_eq!(snap.max, u64::MAX);
    // Merging saturated snapshots also clamps.
    let merged = snap.merge(&snap);
    assert_eq!(merged.sum, u64::MAX);
    assert_eq!(merged.count, 6);
}

#[test]
fn concurrent_recording_loses_nothing() {
    use std::sync::Arc;
    let hist = Arc::new(Histogram::new());
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for v in stream(t + 1, 5000) {
                    hist.record(v);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, 20_000);
    assert_eq!(snap.buckets.iter().sum::<u64>(), 20_000);
}
