//! `poisongame-online` — the repeated-game simulator: adaptive
//! attackers and defenders playing T rounds over streaming data
//! batches.
//!
//! The paper models poisoning as a **one-shot** zero-sum game solved
//! for a static mixed-strategy NE (Algorithm 1). This crate opens the
//! *interactive* workload class: each round the attacker commits a
//! poison placement and the defender a filter strength over the
//! round's data batch, both observe what happened, and both adapt.
//! Because no-regret dynamics' time-averaged strategies converge to
//! the one-shot equilibrium in zero-sum games, repeated play doubles
//! as an independent validation of the static NE the rest of the
//! workspace computes.
//!
//! * [`learner`] — the [`Learner`] trait and the shipped update
//!   rules: regret matching, Hedge (anytime multiplicative weights),
//!   fictitious play, and fixed-NE / fixed-pure baselines.
//! * [`payoff`] — how rounds are scored: a precomputed
//!   [`MatrixPayoff`] (the paper's discretized game — horizons of
//!   `T ≥ 10k` run at solver speed), or the [`EnginePayoff`] that
//!   scores each pair by **actually running** the configured
//!   attack × defense × learner cell through the
//!   [`poisongame_sim::EvalEngine`] (`PrepCache`-hit per query,
//!   memoized per entry).
//! * [`play`] — the deterministic simulator and its convergence
//!   diagnostics (per-player external regret, exploitability, NE
//!   gap), serialized as an [`OnlineTrace`].
//! * [`spec`] — the serializable [`OnlineSpec`] the serving protocol
//!   ships.
//! * [`pipeline`] — empirical runs end to end: [`run_online`]
//!   (parallel grid materialization), [`run_online_engine`] (lazy,
//!   cache-hitting), [`run_online_prepared`] (the serving dispatch
//!   path) — all bit-identical for the same inputs.
//! * [`report`] — ASCII/CSV rendering of traces.
//!
//! # Example
//!
//! Self-play on the paper's discretized game converges to the static
//! equilibrium:
//!
//! ```no_run
//! use poisongame_core::bridge::{discretized_game, solve_discretized};
//! use poisongame_core::{CostCurve, EffectCurve, PoisonGame};
//! use poisongame_online::payoff::MatrixPayoff;
//! use poisongame_online::play::{play, PlayConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let effect = EffectCurve::from_samples(&[(0.0, 2.0e-4), (0.3, 1.5e-5), (0.45, -1.0e-6)])?;
//! let cost = CostCurve::from_samples(&[(0.0, 0.0), (0.3, 0.04)])?;
//! let game = PoisonGame::new(effect, cost, 644)?;
//! let (_grid, matrix) = discretized_game(&game, 40);
//!
//! let trace = play(
//!     &mut MatrixPayoff::new(matrix),
//!     &PlayConfig { rounds: 10_000, ..PlayConfig::default() },
//! )?;
//! let lp = solve_discretized(&game, 40)?;
//! assert!((trace.last().average_value - lp.value).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod learner;
pub mod payoff;
pub mod pipeline;
pub mod play;
pub mod report;
pub mod spec;

pub use error::OnlineError;
pub use learner::{FixedStrategy, FollowTheLeader, Hedge, Learner, LearnerKind, RegretMatching};
pub use payoff::{EnginePayoff, MatrixPayoff, RoundPayoff};
pub use pipeline::{run_online, run_online_engine, run_online_prepared, OnlineOutcome};
pub use play::{play, play_on_matrix, Feedback, OnlinePoint, OnlineTrace, PlayConfig};
pub use spec::OnlineSpec;
