//! Bench: regenerating Figure 1 (pure-strategy sweep).
//!
//! Measures one sweep point (attack + filter + train + eval) and the
//! full reduced sweep, at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use poisongame_bench::bench_experiment_config;
use poisongame_defense::FilterStrength;
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_sim::fig1::{run_fig1, Fig1Config};
use poisongame_sim::pipeline::{attack_filter_train_eval, prepare};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let config = bench_experiment_config();
    let prepared = prepare(&config).expect("pipeline prepares");

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);

    group.bench_function("single_sweep_point", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(7);
            let out = attack_filter_train_eval(
                &prepared,
                black_box(0.12),
                FilterStrength::RemoveFraction(0.10),
                &config,
                &mut rng,
            )
            .expect("sweep point runs");
            black_box(out.accuracy)
        })
    });

    group.bench_function("reduced_full_sweep", |b| {
        let sweep = Fig1Config {
            strengths: vec![0.0, 0.10, 0.25],
            placement_slack: 0.01,
        };
        b.iter(|| {
            let r = run_fig1(&config, &sweep).expect("sweep runs");
            black_box(r.baseline_accuracy)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
