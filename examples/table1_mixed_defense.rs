//! Regenerate **Table 1**: the mixed-strategy defense under optimal
//! attack, for `n = 2` and `n = 3` filter radii.
//!
//! Estimates the game curves, runs Algorithm 1 for each support size,
//! and evaluates the resulting mixed defense empirically against a
//! best-responding attacker — then compares with the best pure
//! strategy from the Figure 1 sweep (the paper's headline claim is
//! that the mixed accuracy is strictly higher).
//!
//! ```sh
//! cargo run --release --example table1_mixed_defense            # quick
//! cargo run --release --example table1_mixed_defense -- --full  # paper scale
//! ```

use poisongame::core::paper::{paper_game, PAPER_BASELINE_ACCURACY};
use poisongame::core::{Algorithm1, DefenderMixedStrategy};
use poisongame::sim::estimate::{default_placements, default_strengths, estimate_curves};
use poisongame::sim::fig1::{run_fig1, Fig1Config};
use poisongame::sim::pipeline::ExperimentConfig;
use poisongame::sim::report::table1_table;
use poisongame::sim::table1::run_table1;

/// Part 1 — the faithful model-level reproduction: Algorithm 1 on
/// curves inverted from the paper's own published Table 1 numbers.
fn paper_calibrated_reproduction() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Table 1, model level (paper-calibrated curves) ==\n");
    let game = paper_game()?;
    // The best pure strategy under the same curves.
    let mut best_pure = (0.0f64, f64::INFINITY);
    for k in 0..=49 {
        let theta = 0.01 * k as f64;
        let pure = DefenderMixedStrategy::pure(theta)?;
        let loss = pure.defender_loss(game.effect(), game.cost(), game.n_points());
        if loss < best_pure.1 {
            best_pure = (theta, loss);
        }
    }
    println!(
        "best pure strategy: θ = {:.1}% → accuracy {:.4}",
        best_pure.0 * 100.0,
        PAPER_BASELINE_ACCURACY - best_pure.1
    );
    println!("paper's published rows: n=2 → {{5.8%, 15.7%}} @ {{51.2%, 48.8%}}, acc 85.6%");
    println!("                        n=3 → {{5.8%, 9.4%, 16.3%}} @ ~uniform, acc 86.1%\n");
    for n in [2usize, 3] {
        let r = Algorithm1::with_support_size(n).solve(&game)?;
        println!(
            "ours, n = {n}: {} → accuracy {:.4} (strictly above best pure: {})",
            r.strategy,
            PAPER_BASELINE_ACCURACY - r.defender_loss,
            r.defender_loss < best_pure.1
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    paper_calibrated_reproduction()?;

    println!("== Table 1, end-to-end (synthetic Spambase pipeline) ==\n");
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        ExperimentConfig::paper()
    } else {
        ExperimentConfig::paper().quick()
    };

    eprintln!("running Figure 1 sweep for the pure-strategy baseline...");
    let fig1 = run_fig1(&config, &Fig1Config::default())?;
    let best_pure = fig1.best_pure().accuracy_under_attack;

    eprintln!("estimating E(p) / Γ(p)...");
    let curves = estimate_curves(&config, &default_placements(), &default_strengths())?;

    eprintln!("running Algorithm 1 for n = 2, 3 and evaluating empirically...");
    let table1 = run_table1(&config, &curves, &[2, 3], best_pure)?;
    println!("{}", table1_table(&table1));

    for row in &table1.rows {
        let verdict = if row.empirical_accuracy >= table1.best_pure_accuracy {
            "≥ best pure — matches the paper's claim"
        } else {
            "below best pure — see EXPERIMENTS.md discussion"
        };
        println!(
            "n = {}: mixed {:.4} vs best pure {:.4}  [{verdict}]",
            row.n_radii, row.empirical_accuracy, table1.best_pure_accuracy
        );
    }
    Ok(())
}
