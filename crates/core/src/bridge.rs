//! Discretize the continuous poisoning game into a finite matrix game
//! and solve it exactly — the independent cross-check on Algorithm 1.
//!
//! Attacker actions: place the whole budget at one grid percentile
//! (mixing over these spans every expected allocation, because the
//! payoff is linear in the allocation), plus an "abstain" action.
//! Defender actions: one filter strength per grid percentile. The LP
//! solution is an exact NE of the discretized game; as the grid
//! refines, its value converges to the continuous game's value, so
//! Algorithm 1's loss should match it closely.

use crate::error::CoreError;
use crate::game_model::{percentile_grid, PoisonGame};
use crate::strategy::DefenderMixedStrategy;
use poisongame_theory::{solve_lp, MatrixGame, Solution};
use serde::{Deserialize, Serialize};

/// A solved discretization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscretizedSolution {
    /// Grid percentiles indexing both players' actions.
    pub grid: Vec<f64>,
    /// The exact matrix-game solution (row = attacker; the final row
    /// index is the abstain action).
    pub solution: Solution,
    /// The defender's equilibrium strategy collapsed onto its support.
    pub defender_strategy: DefenderMixedStrategy,
    /// The attacker's equilibrium placement mass per grid percentile
    /// (excludes abstain).
    pub attacker_support: Vec<(f64, f64)>,
    /// The game value = the defender's equilibrium loss.
    pub value: f64,
}

/// Build the discretized payoff matrix.
///
/// Rows: placements at each grid percentile, then abstain.
/// Columns: filter strengths at each grid percentile.
pub fn to_matrix_game(game: &PoisonGame, grid: &[f64]) -> MatrixGame {
    let n = game.n_points() as f64;
    let g = grid.to_vec();
    MatrixGame::from_fn(grid.len() + 1, grid.len(), move |i, j| {
        let theta = g[j];
        let cost = game.cost().eval(theta);
        if i == g.len() {
            // Abstain.
            cost
        } else {
            let p = g[i];
            let survives = theta <= p + 1e-12;
            if survives {
                n * game.effect().eval(p) + cost
            } else {
                cost
            }
        }
    })
}

/// Solve the discretized game exactly by LP.
///
/// # Errors
///
/// Propagates LP-solver and strategy-construction failures.
pub fn solve_discretized(
    game: &PoisonGame,
    resolution: usize,
) -> Result<DiscretizedSolution, CoreError> {
    let grid = percentile_grid(resolution);
    let matrix = to_matrix_game(game, &grid);
    let solution = solve_lp(&matrix)?;

    // Collapse the defender's grid distribution onto its support.
    let mut support = Vec::new();
    let mut probs = Vec::new();
    for (j, &q) in solution.column_strategy.probabilities().iter().enumerate() {
        if q > 1e-9 {
            support.push(grid[j]);
            probs.push(q);
        }
    }
    let defender_strategy = DefenderMixedStrategy::new(support, probs)?;

    let attacker_support: Vec<(f64, f64)> = solution
        .row_strategy
        .probabilities()
        .iter()
        .take(grid.len())
        .enumerate()
        .filter(|(_, &q)| q > 1e-9)
        .map(|(i, &q)| (grid[i], q))
        .collect();

    let value = solution.value;
    Ok(DiscretizedSolution {
        grid,
        solution,
        defender_strategy,
        attacker_support,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use crate::curves::{CostCurve, EffectCurve};

    fn paper_like_game() -> PoisonGame {
        let effect = EffectCurve::from_samples(&[
            (0.0, 2.0e-4),
            (0.05, 1.4e-4),
            (0.10, 9.0e-5),
            (0.20, 4.0e-5),
            (0.30, 1.5e-5),
            (0.40, 2.0e-6),
            (0.45, -1.0e-6),
        ])
        .unwrap();
        let cost = CostCurve::from_samples(&[
            (0.0, 0.0),
            (0.05, 0.004),
            (0.10, 0.009),
            (0.20, 0.022),
            (0.30, 0.040),
            (0.40, 0.065),
        ])
        .unwrap();
        PoisonGame::new(effect, cost, 644).unwrap()
    }

    #[test]
    fn matrix_entries_match_payoff_semantics() {
        let game = paper_like_game();
        let grid = [0.0, 0.1, 0.2];
        let m = to_matrix_game(&game, &grid);
        assert_eq!(m.shape(), (4, 3));
        // Placement at 0.1 vs filter 0.2: removed → only Γ.
        assert!((m.payoff(1, 2) - game.cost().eval(0.2)).abs() < 1e-12);
        // Placement at 0.2 vs filter 0.1: survives.
        let expected = 644.0 * game.effect().eval(0.2) + game.cost().eval(0.1);
        assert!((m.payoff(2, 1) - expected).abs() < 1e-12);
        // Abstain row: pure Γ.
        assert!((m.payoff(3, 1) - game.cost().eval(0.1)).abs() < 1e-12);
    }

    #[test]
    fn discretized_equilibrium_is_mixed() {
        // Proposition 1 in discrete form: the equilibrium of the
        // discretized poisoning game is not pure.
        let game = paper_like_game();
        let grid = percentile_grid(50);
        let m = to_matrix_game(&game, &grid);
        assert!(m.saddle_point().is_none(), "unexpected pure NE");
        let sol = solve_discretized(&game, 50).unwrap();
        assert!(
            sol.defender_strategy.support().len() >= 2,
            "defender NE should mix: {:?}",
            sol.defender_strategy.support()
        );
    }

    #[test]
    fn lp_value_close_to_algorithm1_loss() {
        let game = paper_like_game();
        let lp = solve_discretized(&game, 100).unwrap();
        let a1 = Algorithm1::with_support_size(4).solve(&game).unwrap();
        // Algorithm 1 restricts the support size; the LP mixes freely
        // over the grid. They must agree within discretization slack.
        let rel = (lp.value - a1.defender_loss).abs() / lp.value.abs().max(1e-12);
        assert!(
            rel < 0.15,
            "LP value {} vs Algorithm1 loss {} (rel {rel})",
            lp.value,
            a1.defender_loss
        );
    }

    #[test]
    fn defender_equilibrium_loss_below_pure_strategies() {
        let game = paper_like_game();
        let sol = solve_discretized(&game, 60).unwrap();
        // The LP value is the defender's guaranteed cap; every pure
        // strategy does weakly worse against a best-responding attacker.
        for &theta in &sol.grid {
            let pure = DefenderMixedStrategy::pure(theta).unwrap();
            let pure_loss = pure.defender_loss(game.effect(), game.cost(), game.n_points());
            assert!(sol.value <= pure_loss + 1e-9, "θ={theta}");
        }
    }

    #[test]
    fn attacker_mass_stays_in_profitable_zone() {
        let game = paper_like_game();
        let sol = solve_discretized(&game, 60).unwrap();
        for &(p, _) in &sol.attacker_support {
            assert!(
                game.effect().eval(p) >= -1e-9,
                "attacker places at unprofitable {p}"
            );
        }
    }
}
