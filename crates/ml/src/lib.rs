//! Linear classifiers, losses, metrics and validation utilities.
//!
//! The paper's victim model is a linear SVM trained with hinge loss for
//! 5000 epochs; [`svm::LinearSvm`] reproduces it. Logistic regression
//! and an averaged perceptron are included as ablation baselines, all
//! behind the common [`Classifier`] trait.
//!
//! # Example
//!
//! ```
//! use poisongame_data::synth::gaussian_blobs;
//! use poisongame_linalg::Xoshiro256StarStar;
//! use poisongame_ml::{metrics::accuracy, svm::LinearSvm, Classifier, TrainConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(5);
//! let data = gaussian_blobs(100, 2, 3.0, 0.5, &mut rng);
//! let mut model = LinearSvm::new(TrainConfig { epochs: 50, ..TrainConfig::default() });
//! model.fit(&data).unwrap();
//! let preds = model.predict_batch(&data);
//! assert!(poisongame_ml::metrics::accuracy(data.labels(), &preds) > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod error;
mod kernel;
pub mod logreg;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod perceptron;
pub mod schedule;
pub mod svm;
pub mod validate;

pub use error::MlError;
pub use model::{Classifier, FitKernel, LinearState, TrainConfig};
