//! Monte-Carlo validation of the equilibrium indifference property.
//!
//! At the defender's NE every support placement yields the attacker
//! the same expected gain (§4.2). This module plays the game
//! repeatedly — sampling the defender's filter strength each round —
//! and checks that the *empirical* per-placement payoffs converge to a
//! common value, closing the loop between the analytic strategy and
//! the stochastic game it is meant to secure.

use crate::error::SimError;
use crate::exec::{parallel_map, ExecPolicy};
use poisongame_core::{DefenderMixedStrategy, PoisonGame};
use poisongame_linalg::rng::SplitMix64;
use poisongame_linalg::Xoshiro256StarStar;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of a repeated-game simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloResults {
    /// `(placement, empirical mean attacker payoff)` per candidate.
    pub candidate_payoffs: Vec<(f64, f64)>,
    /// Relative spread `(max − min)/|max|` of the payoffs.
    pub payoff_spread: f64,
    /// Empirical mean of the defender's total loss (damage + Γ).
    pub mean_defender_loss: f64,
    /// Rounds simulated.
    pub rounds: usize,
}

/// Simulate `rounds` plays of the game: each round the defender samples
/// a strength from `strategy`, and every candidate placement's payoff
/// (`N·E(p)` if it survives, else 0) is recorded.
///
/// # Errors
///
/// Returns [`SimError::BadParameter`] if `rounds == 0`.
pub fn simulate_repeated_game(
    game: &PoisonGame,
    strategy: &DefenderMixedStrategy,
    rounds: usize,
    rng: &mut Xoshiro256StarStar,
) -> Result<MonteCarloResults, SimError> {
    if rounds == 0 {
        return Err(SimError::BadParameter {
            what: "rounds",
            value: 0.0,
        });
    }
    let candidates: Vec<f64> = strategy.support().to_vec();
    let partial = play_rounds(game, strategy, &candidates, rounds, rng);
    finish(&candidates, partial, rounds)
}

/// Per-candidate payoff sums and the defender-loss sum over a block of
/// rounds — the mergeable unit of the Monte-Carlo simulation.
struct Partial {
    sums: Vec<f64>,
    loss_sum: f64,
}

fn play_rounds(
    game: &PoisonGame,
    strategy: &DefenderMixedStrategy,
    candidates: &[f64],
    rounds: usize,
    rng: &mut Xoshiro256StarStar,
) -> Partial {
    let n = game.n_points() as f64;
    let mut sums = vec![0.0; candidates.len()];
    let mut loss_sum = 0.0;

    for _ in 0..rounds {
        let theta = strategy.sample(rng);
        let mut best_payoff: f64 = 0.0;
        for (k, &p) in candidates.iter().enumerate() {
            let survives = theta <= p + 1e-12;
            let payoff = if survives {
                n * game.effect().eval(p)
            } else {
                0.0
            };
            sums[k] += payoff;
            best_payoff = best_payoff.max(payoff);
        }
        // Defender pays the best response damage plus the filter cost.
        loss_sum += best_payoff + game.cost().eval(theta);
    }
    Partial { sums, loss_sum }
}

fn finish(
    candidates: &[f64],
    partial: Partial,
    rounds: usize,
) -> Result<MonteCarloResults, SimError> {
    let candidate_payoffs: Vec<(f64, f64)> = candidates
        .iter()
        .zip(&partial.sums)
        .map(|(&p, &s)| (p, s / rounds as f64))
        .collect();
    let max = candidate_payoffs
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    let min = candidate_payoffs
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::INFINITY, f64::min);
    let payoff_spread = if max.abs() < 1e-300 {
        0.0
    } else {
        (max - min) / max.abs()
    };

    Ok(MonteCarloResults {
        candidate_payoffs,
        payoff_spread,
        mean_defender_loss: partial.loss_sum / rounds as f64,
        rounds,
    })
}

/// Parallel repeated-game simulation: `replicates` independent blocks
/// of `rounds_per_replicate` rounds, each with its own RNG derived
/// from `master_seed` via SplitMix64, fanned out across the worker
/// pool and merged in replicate order. Bit-identical at any thread
/// count (including [`ExecPolicy::sequential`]).
///
/// # Errors
///
/// Returns [`SimError::BadParameter`] if `rounds_per_replicate` or
/// `replicates` is zero.
pub fn simulate_repeated_game_parallel(
    game: &PoisonGame,
    strategy: &DefenderMixedStrategy,
    rounds_per_replicate: usize,
    replicates: usize,
    master_seed: u64,
    policy: &ExecPolicy,
) -> Result<MonteCarloResults, SimError> {
    if rounds_per_replicate == 0 {
        return Err(SimError::BadParameter {
            what: "rounds_per_replicate",
            value: 0.0,
        });
    }
    if replicates == 0 {
        return Err(SimError::BadParameter {
            what: "replicates",
            value: 0.0,
        });
    }
    let candidates: Vec<f64> = strategy.support().to_vec();

    // Pre-derive one seed per replicate from the master seed, so a
    // replicate's stream depends only on its index.
    let mut mix = SplitMix64::new(master_seed);
    let seeds: Vec<u64> = (0..replicates).map(|_| mix.next()).collect();

    let partials = parallel_map(policy, &seeds, |_, &seed| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        play_rounds(game, strategy, &candidates, rounds_per_replicate, &mut rng)
    });

    // Merge in replicate order: float accumulation order is fixed, so
    // the totals are independent of scheduling.
    let mut merged = Partial {
        sums: vec![0.0; candidates.len()],
        loss_sum: 0.0,
    };
    for partial in partials {
        for (total, s) in merged.sums.iter_mut().zip(&partial.sums) {
            *total += s;
        }
        merged.loss_sum += partial.loss_sum;
    }
    finish(&candidates, merged, rounds_per_replicate * replicates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_core::ne::equalizing_strategy;
    use poisongame_core::{CostCurve, EffectCurve};
    use rand::SeedableRng;

    fn game() -> PoisonGame {
        let effect = EffectCurve::from_samples(&[
            (0.0, 2.0e-4),
            (0.10, 9.0e-5),
            (0.20, 4.0e-5),
            (0.40, 2.0e-6),
        ])
        .unwrap();
        let cost = CostCurve::from_samples(&[(0.0, 0.0), (0.20, 0.022), (0.40, 0.065)]).unwrap();
        PoisonGame::new(effect, cost, 644).unwrap()
    }

    #[test]
    fn equalizing_strategy_is_empirically_indifferent() {
        let g = game();
        let strategy = equalizing_strategy(&[0.05, 0.15, 0.30], g.effect()).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        let mc = simulate_repeated_game(&g, &strategy, 200_000, &mut rng).unwrap();
        assert!(
            mc.payoff_spread < 0.02,
            "payoffs not indifferent: {:?} (spread {})",
            mc.candidate_payoffs,
            mc.payoff_spread
        );
    }

    #[test]
    fn non_equalizing_strategy_shows_spread() {
        let g = game();
        // Uniform probabilities are not equalizing for this curve.
        let strategy = DefenderMixedStrategy::new(vec![0.05, 0.30], vec![0.5, 0.5]).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(32);
        let mc = simulate_repeated_game(&g, &strategy, 100_000, &mut rng).unwrap();
        assert!(
            mc.payoff_spread > 0.1,
            "expected visible spread, got {}",
            mc.payoff_spread
        );
    }

    #[test]
    fn empirical_matches_analytic_payoff() {
        let g = game();
        let strategy = equalizing_strategy(&[0.05, 0.25], g.effect()).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(33);
        let mc = simulate_repeated_game(&g, &strategy, 300_000, &mut rng).unwrap();
        let analytic = g.n_points() as f64 * strategy.attacker_gain(g.effect());
        for &(p, emp) in &mc.candidate_payoffs {
            assert!(
                (emp - analytic).abs() / analytic < 0.02,
                "placement {p}: empirical {emp} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn parallel_replicates_are_thread_count_invariant() {
        let g = game();
        let strategy = equalizing_strategy(&[0.05, 0.15, 0.30], g.effect()).unwrap();
        let reference =
            simulate_repeated_game_parallel(&g, &strategy, 5_000, 8, 91, &ExecPolicy::sequential())
                .unwrap();
        for threads in [2, 8] {
            let parallel = simulate_repeated_game_parallel(
                &g,
                &strategy,
                5_000,
                8,
                91,
                &ExecPolicy::with_threads(threads),
            )
            .unwrap();
            assert_eq!(reference, parallel, "{threads} threads diverged");
        }
        // And the statistics still make sense.
        assert!(reference.payoff_spread < 0.05);
        assert_eq!(reference.rounds, 40_000);
    }

    #[test]
    fn parallel_rejects_zero_blocks() {
        let g = game();
        let strategy = DefenderMixedStrategy::pure(0.1).unwrap();
        let policy = ExecPolicy::default();
        assert!(simulate_repeated_game_parallel(&g, &strategy, 0, 4, 1, &policy).is_err());
        assert!(simulate_repeated_game_parallel(&g, &strategy, 10, 0, 1, &policy).is_err());
    }

    #[test]
    fn zero_rounds_rejected() {
        let g = game();
        let strategy = DefenderMixedStrategy::pure(0.1).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(34);
        assert!(simulate_repeated_game(&g, &strategy, 0, &mut rng).is_err());
    }
}
