//! The connection multiplexer: one thread, many sockets.
//!
//! The pre-sharding server spent one OS thread per accepted
//! connection, almost all of it blocked in `read` — thousands of idle
//! pipelined connections meant thousands of idle stacks. The
//! multiplexer replaces them with a single readiness loop over
//! nonblocking sockets (std only — no `epoll`/`kqueue` binding, so
//! readiness is discovered by scanning):
//!
//! * **Accept** — the listener is nonblocking; every tick drains the
//!   pending backlog.
//! * **Read** — each connection owns a growing frame buffer; every
//!   tick reads until `WouldBlock`, slices complete NDJSON frames out
//!   and hands them to the protocol layer. Control-plane requests
//!   (`stats`, `resize`, `shutdown`) are answered inline; evaluation
//!   requests are admitted to their shard.
//! * **Write** — workers never touch the socket: they append rendered
//!   responses to the connection's outbox ([`Conn::send`]) and wake
//!   the loop, which flushes as much as each socket accepts. Pipelined
//!   responses cannot interleave because only the multiplexer writes.
//! * **Park** — a tick that made no progress parks on a condvar with
//!   a short timeout (`poll_interval`), so an idle server burns a few
//!   wakeups per millisecond instead of a thread per connection, and
//!   a worker finishing a response wakes it immediately.
//!
//! A connection is reaped once its peer closed (or broke framing) and
//! every in-flight response has been flushed — in-flight is tracked by
//! the job-held `Arc<Conn>` count, so a response computed after the
//! peer stopped sending is still delivered, exactly like the
//! thread-per-connection server did.

use crate::protocol::{ErrorCode, Response};
use crate::server::Inner;
use crate::telemetry::MuxObs;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wakes the multiplexer when a worker queues a response (or a
/// dispatcher exits during a drain).
#[derive(Debug, Default)]
pub(crate) struct MuxWaker {
    pending: Mutex<bool>,
    cv: Condvar,
}

impl MuxWaker {
    pub fn wake(&self) {
        *self.pending.lock().expect("mux waker poisoned") = true;
        self.cv.notify_one();
    }

    /// Park until woken or `timeout`, consuming the pending flag.
    fn park(&self, timeout: Duration) {
        let mut pending = self.pending.lock().expect("mux waker poisoned");
        if !*pending {
            let (guard, _) = self
                .cv
                .wait_timeout(pending, timeout)
                .expect("mux waker poisoned");
            pending = guard;
        }
        *pending = false;
    }
}

/// The write half of one connection, shared with evaluation workers:
/// responses are rendered into the outbox under its lock and the
/// multiplexer flushes them to the socket.
#[derive(Debug, Default)]
pub(crate) struct Conn {
    outbox: Mutex<Outbox>,
    waker: Arc<MuxWaker>,
}

#[derive(Debug, Default)]
struct Outbox {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    flushed: usize,
}

impl Conn {
    fn new(waker: Arc<MuxWaker>) -> Self {
        Self {
            outbox: Mutex::new(Outbox::default()),
            waker,
        }
    }

    /// Queue one response frame for delivery and wake the multiplexer.
    pub fn send(&self, response: &Response) {
        let line = response.to_line();
        {
            let mut outbox = self.outbox.lock().expect("connection outbox poisoned");
            outbox.buf.extend_from_slice(line.as_bytes());
        }
        self.waker.wake();
    }

    fn is_drained(&self) -> bool {
        let outbox = self.outbox.lock().expect("connection outbox poisoned");
        outbox.flushed == outbox.buf.len()
    }
}

/// One multiplexed connection: the socket, its partial-frame read
/// buffer, and the worker-shared write half.
struct MuxConn {
    stream: TcpStream,
    conn: Arc<Conn>,
    read_buf: Vec<u8>,
    /// Prefix of `read_buf` already scanned for a newline (so a slowly
    /// arriving huge frame is not re-scanned from byte 0 every tick).
    scanned: usize,
    /// The peer closed, errored or broke framing: stop reading, flush
    /// what remains, then reap.
    read_closed: bool,
    /// The socket broke while writing: reap immediately.
    write_closed: bool,
}

/// Run the readiness loop until shutdown completes. Returns when the
/// drain is finished: no admissions, every dispatcher exited, every
/// queued response flushed (or its connection gone).
pub(crate) fn mux_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    let mut conns: Vec<MuxConn> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let obs = MuxObs::register();
    loop {
        let mut progress = false;

        // Accept the pending backlog (stop admitting once draining —
        // a late connection would never be read again).
        if !inner.shutdown.load(Ordering::SeqCst) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        conns.push(MuxConn {
                            stream,
                            conn: Arc::new(Conn::new(Arc::clone(&inner.waker))),
                            read_buf: Vec::new(),
                            scanned: 0,
                            read_closed: false,
                            write_closed: false,
                        });
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    // Transient accept failure; keep serving.
                    Err(_) => break,
                }
            }
        }

        // Latency histograms record only ticks that made progress:
        // idle WouldBlock scans would otherwise drown the signal.
        for mc in &mut conns {
            if !mc.read_closed {
                let start = Instant::now();
                if pump_read(inner, &obs, mc, &mut chunk) {
                    obs.read.record_duration(start.elapsed());
                    progress = true;
                }
            }
            let start = Instant::now();
            if pump_write(mc) {
                obs.write.record_duration(start.elapsed());
                progress = true;
            }
        }

        // Reap: broken writers immediately; finished readers once the
        // outbox is flushed and no evaluation job still holds the
        // connection (each job owns an `Arc<Conn>` clone).
        conns.retain(|mc| {
            if mc.write_closed {
                return false;
            }
            !(mc.read_closed && mc.conn.is_drained() && Arc::strong_count(&mc.conn) == 1)
        });

        if inner.shutdown.load(Ordering::SeqCst)
            && inner.pool.active_dispatchers() == 0
            && conns.iter().all(|mc| mc.conn.is_drained())
        {
            return;
        }
        if !progress {
            inner.waker.park(inner.poll_interval);
        }
    }
}

/// Read whatever the socket has, slice complete frames out of the
/// buffer and handle them. Returns whether any bytes arrived.
fn pump_read(inner: &Arc<Inner>, obs: &MuxObs, mc: &mut MuxConn, chunk: &mut [u8]) -> bool {
    let mut progress = false;
    loop {
        match mc.stream.read(chunk) {
            Ok(0) => {
                // Clean EOF; a partial frame left behind is the peer's
                // truncation.
                if !mc.read_buf.is_empty() {
                    mc.conn.send(&Response::err(
                        None,
                        ErrorCode::BadRequest,
                        "truncated frame: stream ended before the terminating newline",
                    ));
                }
                mc.read_closed = true;
                break;
            }
            Ok(n) => {
                progress = true;
                mc.read_buf.extend_from_slice(&chunk[..n]);
                drain_frames(inner, obs, mc);
                if mc.read_closed {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                mc.read_closed = true;
                break;
            }
        }
    }
    progress
}

/// Slice complete newline-terminated frames out of the read buffer and
/// hand each to the protocol layer. Oversized frames (with or without
/// their newline in sight) lose framing: answer `line_too_long`, then
/// stop reading.
fn drain_frames(inner: &Arc<Inner>, obs: &MuxObs, mc: &mut MuxConn) {
    loop {
        match mc.read_buf[mc.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|at| mc.scanned + at)
        {
            Some(newline) => {
                if newline > inner.max_line_bytes {
                    // The frame's content (everything before the
                    // newline) exceeds the cap.
                    too_long(inner, mc);
                    return;
                }
                let mut frame: Vec<u8> = mc.read_buf.drain(..=newline).collect();
                mc.scanned = 0;
                frame.pop();
                if frame.last() == Some(&b'\r') {
                    frame.pop();
                }
                let line = String::from_utf8_lossy(&frame).into_owned();
                if !line.trim().is_empty() {
                    // Dispatch latency: parse + inline answer (control
                    // plane) or parse + admission (evaluation).
                    let start = Instant::now();
                    crate::server::handle_line(inner, &mc.conn, &line);
                    obs.dispatch.record_duration(start.elapsed());
                }
            }
            None => {
                mc.scanned = mc.read_buf.len();
                if mc.read_buf.len() > inner.max_line_bytes {
                    too_long(inner, mc);
                }
                return;
            }
        }
    }
}

fn too_long(inner: &Arc<Inner>, mc: &mut MuxConn) {
    mc.conn.send(&Response::err(
        None,
        ErrorCode::LineTooLong,
        format!("frame exceeds the {} byte cap", inner.max_line_bytes),
    ));
    mc.read_buf.clear();
    mc.scanned = 0;
    mc.read_closed = true;
}

/// Flush as much of the outbox as the socket accepts. Returns whether
/// any bytes left.
fn pump_write(mc: &mut MuxConn) -> bool {
    let mut progress = false;
    let mut outbox = mc.conn.outbox.lock().expect("connection outbox poisoned");
    while outbox.flushed < outbox.buf.len() {
        match mc.stream.write(&outbox.buf[outbox.flushed..]) {
            Ok(0) => {
                mc.write_closed = true;
                break;
            }
            Ok(n) => {
                outbox.flushed += n;
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                mc.write_closed = true;
                break;
            }
        }
    }
    if outbox.flushed == outbox.buf.len() {
        outbox.buf.clear();
        outbox.flushed = 0;
    }
    progress
}
