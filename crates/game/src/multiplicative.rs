//! Multiplicative weights (Hedge) self-play.
//!
//! Both players run the exponential-weights no-regret algorithm against
//! each other; the *average* strategy profile converges to a Nash
//! equilibrium of the zero-sum game at rate `O(√(ln k / T))`. Faster in
//! practice than fictitious play and, unlike the LP, trivially
//! parallelizable — included both as an ablation point (bench
//! `solver_comparison`) and as a fallback for large discretizations.

use crate::error::GameError;
use crate::matrix_game::MatrixGame;
use crate::strategy::{MixedStrategy, Solution};
use poisongame_linalg::vector;

/// Configuration for [`solve_multiplicative_weights`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplicativeWeightsConfig {
    /// Number of self-play rounds.
    pub iterations: usize,
    /// Step size; when `None` the theory-optimal
    /// `√(8 ln k / T) / range` is used.
    pub eta: Option<f64>,
}

impl Default for MultiplicativeWeightsConfig {
    fn default() -> Self {
        Self {
            iterations: 20_000,
            eta: None,
        }
    }
}

/// Run Hedge vs Hedge and return the averaged strategies.
///
/// # Errors
///
/// Returns [`GameError::InvalidPayoffs`] for a constant game with zero
/// payoff range only if weight normalization fails (cannot happen for
/// finite inputs); propagates strategy-construction errors otherwise.
///
/// # Example
///
/// ```
/// use poisongame_theory::{solve_multiplicative_weights, MultiplicativeWeightsConfig, MatrixGame};
///
/// let pennies = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
/// let sol = solve_multiplicative_weights(&pennies, &MultiplicativeWeightsConfig::default()).unwrap();
/// assert!(sol.value.abs() < 0.02);
/// ```
pub fn solve_multiplicative_weights(
    game: &MatrixGame,
    config: &MultiplicativeWeightsConfig,
) -> Result<Solution, GameError> {
    let (m, n) = game.shape();
    let t_max = config.iterations.max(1);
    let range = (game.max_payoff() - game.min_payoff()).max(1e-12);
    let eta = config.eta.unwrap_or_else(|| {
        let k = m.max(n) as f64;
        (8.0 * k.ln().max(1.0) / t_max as f64).sqrt() / range
    });

    // Log-space weights for numerical stability.
    let mut row_log = vec![0.0f64; m];
    let mut col_log = vec![0.0f64; n];
    let mut row_avg = vec![0.0f64; m];
    let mut col_avg = vec![0.0f64; n];

    for _ in 0..t_max {
        let x = softmax(&row_log);
        let y = softmax(&col_log);
        vector::axpy(1.0, &x, &mut row_avg);
        vector::axpy(1.0, &y, &mut col_avg);

        // Row player earns A y, column player pays xᵀA.
        let row_payoffs = game.payoffs().mul_vec(&y);
        let mut col_payoffs = vec![0.0; n];
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                vector::axpy(xi, game.payoffs().row(i), &mut col_payoffs);
            }
        }
        for (log, payoff) in row_log.iter_mut().zip(&row_payoffs) {
            *log += eta * payoff;
        }
        for (log, payoff) in col_log.iter_mut().zip(&col_payoffs) {
            *log -= eta * payoff;
        }
        // Keep log-weights bounded.
        let row_max = vector::norm_inf(&row_log);
        if row_max > 500.0 {
            let shift = row_log.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for v in &mut row_log {
                *v -= shift;
            }
        }
        let col_max = vector::norm_inf(&col_log);
        if col_max > 500.0 {
            let shift = col_log.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for v in &mut col_log {
                *v -= shift;
            }
        }
    }

    let row_strategy = MixedStrategy::from_weights(row_avg)?;
    let column_strategy = MixedStrategy::from_weights(col_avg)?;
    let value = game.expected_payoff(&row_strategy, &column_strategy)?;
    Ok(Solution {
        row_strategy,
        column_strategy,
        value,
        iterations: t_max,
    })
}

/// Numerically stable softmax: the probability distribution
/// proportional to `exp(log_weights)`. Shared by the batch Hedge
/// solver above and the online Hedge learner in `poisongame-online`.
pub fn softmax(log_weights: &[f64]) -> Vec<f64> {
    let max = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = log_weights.iter().map(|&w| (w - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve_lp;

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[0.0, 1.0, -1.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0] && p[0] > p[2]);
        // Stable under huge inputs.
        let p = softmax(&[1e8, 1e8 + 1.0]);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pennies_value_near_zero() {
        let g = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let sol =
            solve_multiplicative_weights(&g, &MultiplicativeWeightsConfig::default()).unwrap();
        assert!(sol.value.abs() < 0.02, "value {}", sol.value);
        let expl = g
            .exploitability(&sol.row_strategy, &sol.column_strategy)
            .unwrap();
        assert!(expl < 0.1, "exploitability {expl}");
    }

    #[test]
    fn rps_close_to_uniform() {
        let g = MatrixGame::from_rows(&[
            vec![0.0, -1.0, 1.0],
            vec![1.0, 0.0, -1.0],
            vec![-1.0, 1.0, 0.0],
        ])
        .unwrap();
        let sol =
            solve_multiplicative_weights(&g, &MultiplicativeWeightsConfig::default()).unwrap();
        for p in sol.row_strategy.probabilities() {
            assert!((p - 1.0 / 3.0).abs() < 0.05, "prob {p}");
        }
    }

    #[test]
    fn value_matches_lp_on_random_game() {
        use poisongame_linalg::Xoshiro256StarStar;
        use rand::SeedableRng;
        let mut rng = Xoshiro256StarStar::seed_from_u64(101);
        let g = MatrixGame::from_fn(5, 6, |_, _| rng.next_f64() * 4.0 - 2.0);
        let lp = solve_lp(&g).unwrap();
        let mw = solve_multiplicative_weights(&g, &MultiplicativeWeightsConfig::default()).unwrap();
        assert!(
            (lp.value - mw.value).abs() < 0.05,
            "lp {} mw {}",
            lp.value,
            mw.value
        );
    }

    #[test]
    fn custom_eta_still_converges() {
        let g = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let cfg = MultiplicativeWeightsConfig {
            iterations: 30_000,
            eta: Some(0.05),
        };
        let sol = solve_multiplicative_weights(&g, &cfg).unwrap();
        assert!(sol.value.abs() < 0.05);
    }

    #[test]
    fn single_action_game() {
        let g = MatrixGame::from_rows(&[vec![3.0]]).unwrap();
        let sol = solve_multiplicative_weights(
            &g,
            &MultiplicativeWeightsConfig {
                iterations: 10,
                eta: None,
            },
        )
        .unwrap();
        assert!((sol.value - 3.0).abs() < 1e-12);
        assert!(sol.row_strategy.is_pure());
    }
}
