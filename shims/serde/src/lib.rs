//! Offline stand-in for `serde`.
//!
//! All result serialization in this workspace goes through
//! `poisongame_sim::report` (deterministic ASCII/CSV renderers), so
//! `Serialize` / `Deserialize` only need to exist as marker traits to
//! keep the `#[derive(...)]` annotation surface source-compatible with
//! the real crate. The derive macros (re-exported from the
//! `serde_derive` shim) emit marker impls, so `T: Serialize` bounds
//! work as expected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the `::serde::...` paths emitted by the derive shim resolve
// inside this crate's own tests (the same trick real serde uses).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types whose serialization is handled by the workspace's
/// own renderers (`poisongame_sim::report`).
pub trait Serialize {}

/// Marker for types whose deserialization is handled by the
/// workspace's own parsers (`poisongame_data::csv`).
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
mod tests {
    #[derive(crate::Serialize, crate::Deserialize)]
    struct Plain {
        _x: f64,
    }

    #[derive(crate::Serialize, crate::Deserialize)]
    struct WithAttrs {
        #[serde(default)]
        _y: f64,
    }

    #[derive(crate::Serialize, crate::Deserialize)]
    enum Tagged {
        _A,
        _B { _y: usize },
    }

    fn assert_serialize<T: crate::Serialize>() {}
    fn assert_deserialize<T: for<'de> crate::Deserialize<'de>>() {}

    #[test]
    fn derives_emit_marker_impls() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Tagged>();
        assert_deserialize::<Tagged>();
        assert_serialize::<WithAttrs>();
        assert_deserialize::<WithAttrs>();
    }
}
