//! A keyed store for shared, immutable preparation products.
//!
//! Sweeps over an experiment grid prepare the *same* dataset
//! (generate → split → scale) for every cell that shares a source;
//! [`PrepCache`] memoizes that work behind a content-hash key so each
//! distinct preparation runs exactly once and every consumer shares
//! one `Arc` of the result. Values are immutable once inserted —
//! caching can only remove redundant identical computation, never
//! change a result.
//!
//! # Example
//!
//! ```
//! use poisongame_data::cache::PrepCache;
//!
//! let cache: PrepCache<u64, Vec<f64>> = PrepCache::new();
//! let a = cache
//!     .get_or_try_insert_with::<(), _>(42, || Ok(vec![1.0, 2.0]))
//!     .unwrap();
//! let b = cache
//!     .get_or_try_insert_with::<(), _>(42, || unreachable!("cache hit"))
//!     .unwrap();
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! ```

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters of a [`PrepCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the value.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent keyed map of `Arc`-shared immutable values.
///
/// Keys are compared by full `Eq`, never by hash alone — callers may
/// use a content-hash *inside* their key's `Hash` impl for speed, but
/// a hash collision can only cost a rebuild, not serve the wrong
/// value.
///
/// The builder closure runs *outside* the map lock, so distinct keys
/// prepare in parallel. Two threads racing the same key may both build
/// it (first insert wins, the loser's value is dropped); callers that
/// fan out over a grid should deduplicate keys first — see the
/// simulation crate's two-phase engine — and the race is then
/// impossible. Because values are deterministic functions of their
/// key, a duplicated build never changes what consumers observe.
#[derive(Debug)]
pub struct PrepCache<K, V> {
    map: Mutex<HashMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

// Manual impl: a derived `Default` would demand `K: Default` and
// `V: Default`, but an empty cache needs no values at all.
impl<K: Eq + Hash, V> Default for PrepCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> PrepCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The value under `key`, building and inserting it with `build`
    /// on a miss. Counts a hit when the value was already present, a
    /// miss when `build` ran (even if another thread's insert won the
    /// race).
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is inserted on failure.
    pub fn get_or_try_insert_with<E, F>(&self, key: K, build: F) -> Result<Arc<V>, E>
    where
        F: FnOnce() -> Result<V, E>,
    {
        if let Some(found) = self.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("cache map poisoned");
        // First insert wins so every consumer of the key shares one Arc.
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }

    /// The value under `key`, if present (does not touch the counters).
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        self.map
            .lock()
            .expect("cache map poisoned")
            .get(key)
            .map(Arc::clone)
    }

    /// Number of cached values.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache map poisoned").len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached value (counters are kept).
    pub fn clear(&self) {
        self.map.lock().expect("cache map poisoned").clear();
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Incremental FNV-1a content hasher for building cache keys out of
/// heterogeneous fields (enum tags, integers, float bit patterns, raw
/// text). Stable across platforms and runs.
#[derive(Debug, Clone, Copy)]
pub struct ContentHash(u64);

impl Default for ContentHash {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHash {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Fold raw bytes into the hash.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold a `u64` (little-endian bytes) into the hash.
    pub fn u64(self, value: u64) -> Self {
        self.bytes(&value.to_le_bytes())
    }

    /// Fold an `f64` by exact bit pattern into the hash.
    pub fn f64(self, value: f64) -> Self {
        self.u64(value.to_bits())
    }

    /// Fold a UTF-8 string into the hash.
    pub fn str(self, value: &str) -> Self {
        self.bytes(value.as_bytes())
    }

    /// The accumulated 64-bit key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_shares_one_arc() {
        let cache: PrepCache<u64, String> = PrepCache::new();
        let a = cache
            .get_or_try_insert_with::<(), _>(1, || Ok("built".to_string()))
            .unwrap();
        let b = cache
            .get_or_try_insert_with::<(), _>(1, || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_independently() {
        let cache: PrepCache<u64, u32> = PrepCache::new();
        for key in 0..5 {
            let v = cache
                .get_or_try_insert_with::<(), _>(key, || Ok(key as u32 * 10))
                .unwrap();
            assert_eq!(*v, key as u32 * 10);
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().misses, 5);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn build_failure_inserts_nothing() {
        let cache: PrepCache<u64, u32> = PrepCache::new();
        let out: Result<_, &str> = cache.get_or_try_insert_with(9, || Err("boom"));
        assert_eq!(out.unwrap_err(), "boom");
        assert!(cache.get(&9).is_none());
        // A later successful build fills the slot.
        let v = cache
            .get_or_try_insert_with::<&str, _>(9, || Ok(7))
            .unwrap();
        assert_eq!(*v, 7);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache: PrepCache<u64, u32> = PrepCache::new();
        cache.get_or_try_insert_with::<(), _>(1, || Ok(1)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_same_key_converges_to_one_value() {
        let cache: Arc<PrepCache<u64, u64>> = Arc::new(PrepCache::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                *cache
                    .get_or_try_insert_with::<(), _>(5, || Ok(123))
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 123);
        }
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
    }

    #[test]
    fn hit_rate_math() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let base = ContentHash::new().str("blobs").u64(7).f64(0.3).finish();
        let same = ContentHash::new().str("blobs").u64(7).f64(0.3).finish();
        assert_eq!(base, same);
        assert_ne!(
            base,
            ContentHash::new().str("blobs").u64(8).f64(0.3).finish()
        );
        assert_ne!(
            base,
            ContentHash::new().str("spam").u64(7).f64(0.3).finish()
        );
        assert_ne!(
            base,
            ContentHash::new().str("blobs").u64(7).f64(0.30001).finish()
        );
    }
}
