//! The multi-threaded evaluation server.
//!
//! Architecture (all `std`, no external runtime):
//!
//! * **Connection readers** — one thread per accepted connection
//!   parses frames and answers `stats`/`shutdown` inline (they stay
//!   responsive even when evaluation is saturated). Evaluation
//!   requests go through the admission layer.
//! * **Admission** — a bounded queue. A full queue sheds the request
//!   with a structured `busy` error immediately; the server never
//!   buffers unboundedly and never blocks a reader on evaluation.
//! * **Dispatcher** — drains the queue in batches and routes each
//!   batch through [`prepare_then_map`]: distinct dataset preparations
//!   (keyed like the engine's cache) are computed once per batch and
//!   answered from the process-wide bounded [`EvalEngine`] store
//!   across batches, then cells fan out across the worker pool. A
//!   request's response is written from its evaluation task, so
//!   cheap requests in a batch complete while expensive ones still
//!   run.
//! * **Deadlines** — checked when evaluation is about to start; an
//!   expired request is answered with a `deadline` error instead of
//!   being evaluated. Running evaluations are never preempted.
//! * **Shutdown** — a `shutdown` request is acked, then the server
//!   stops admitting, finishes every queued request, and `run`
//!   returns. Responses in flight are delivered before exit.
//!
//! Responses are pure functions of their request document: worker
//! count, queue order and co-tenant requests never change a result
//! (see `tests/loopback.rs`).

use crate::protocol::{
    parse_request_line, read_frame, ErrorCode, Frame, Request, RequestKind, Response, ServerStats,
    SolveRequest, SolveResult, DEFAULT_MAX_LINE_BYTES,
};
use poisongame_core::bridge::solve_discretized_with;
use poisongame_core::{CostCurve, EffectCurve, PoisonGame};
use poisongame_online::run_online_prepared;
use poisongame_sim::engine::{config_prep_key, EvalEngine, PrepKey};
use poisongame_sim::estimate::estimate_curves_prepared;
use poisongame_sim::exec::prepare_then_map;
use poisongame_sim::jsonio::Json;
use poisongame_sim::pipeline::{Prepared, PreparedData};
use poisongame_sim::scenario::run_matrix_prepared;
use poisongame_sim::{ExecPolicy, SimError};
use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (read it back
    /// via [`Server::local_addr`]).
    pub addr: String,
    /// Evaluation worker count — the fan-out width of one admitted
    /// batch; `0` means one per hardware thread.
    pub workers: usize,
    /// Admission queue bound: requests beyond it are shed with a
    /// structured `busy` error.
    pub queue_capacity: usize,
    /// Preparation-cache bound (`None` = unbounded, like the batch
    /// engine; the default keeps a long-lived process from leaking).
    pub cache_capacity: Option<usize>,
    /// Worker threads *inside* one request's evaluation (a matrix's
    /// cells, never across requests). The default of `1` puts all
    /// parallelism across requests, which is the right shape for many
    /// small requests; raise it for few huge matrices.
    pub eval_threads: usize,
    /// Per-frame byte cap, requests and responses alike.
    pub max_line_bytes: usize,
    /// Deadline applied to requests that carry none (`None` = no
    /// implicit deadline).
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: Some(32),
            eval_threads: 1,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            default_deadline_ms: None,
        }
    }
}

/// Monotonic admission/evaluation counters.
#[derive(Debug, Default)]
struct Counters {
    received: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The write half of one connection; workers share it via `Arc` and
/// serialize whole frames under the lock, so pipelined responses never
/// interleave.
#[derive(Debug)]
struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    fn send(&self, response: &Response) {
        let line = response.to_line();
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        // A vanished client is its own problem; the server keeps going.
        let _ = stream.write_all(line.as_bytes());
    }
}

/// One admitted evaluation request.
struct Job {
    request: Request,
    deadline: Option<Instant>,
    /// The dataset preparation this request needs (`None` for `solve`,
    /// which prepares nothing) — precomputed so batch deduplication is
    /// a hash away.
    prep_key: Option<PrepKey>,
    conn: Arc<Conn>,
}

/// State shared by the acceptor, readers and the dispatcher.
struct Inner {
    engine: EvalEngine,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    worker_policy: ExecPolicy,
    eval_policy: ExecPolicy,
    workers: usize,
    max_line_bytes: usize,
    default_deadline_ms: Option<u64>,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    started: Instant,
    counters: Counters,
}

impl Inner {
    /// Admit a job or answer it with a structured rejection. Admission
    /// and the shutdown flag are read under the queue lock, so a job
    /// is either rejected or guaranteed to be drained by the
    /// dispatcher — never silently dropped.
    fn admit(&self, job: Job) {
        let mut queue = self.queue.lock().expect("admission queue poisoned");
        if self.shutdown.load(Ordering::SeqCst) {
            let response = Response::err(
                Some(job.request.id),
                ErrorCode::ShuttingDown,
                "server is draining and admits no new work",
            );
            drop(queue);
            job.conn.send(&response);
        } else if queue.len() >= self.queue_capacity {
            Counters::bump(&self.counters.shed);
            let response = Response::err(
                Some(job.request.id),
                ErrorCode::Busy,
                format!("admission queue full ({} queued); retry later", queue.len()),
            );
            drop(queue);
            job.conn.send(&response);
        } else {
            queue.push_back(job);
            self.queue_cv.notify_all();
        }
    }

    /// Flip to draining: reject new admissions, wake the dispatcher so
    /// it can finish the backlog and exit, and unblock the acceptor.
    fn begin_shutdown(&self) {
        {
            let _queue = self.queue.lock().expect("admission queue poisoned");
            self.shutdown.store(true, Ordering::SeqCst);
        }
        self.queue_cv.notify_all();
        // `accept` has no timeout; a loopback touch wakes it so the
        // acceptor can observe the flag. A wildcard bind (0.0.0.0 /
        // ::) is not connectable on every platform, so aim the touch
        // at the loopback of the same family instead.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }

    fn stats(&self) -> ServerStats {
        let cache = self.engine.cache_stats();
        // Process-global phase counters (never per-response: responses
        // to identical requests must stay byte-identical).
        let timing = poisongame_sim::timing::snapshot();
        ServerStats {
            uptime_micros: self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            workers: self.workers,
            queue_capacity: self.queue_capacity,
            queue_depth: self.queue.lock().expect("admission queue poisoned").len(),
            received: self.counters.received.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            expired: self.counters.expired.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_entries: self.engine.cached_preparations(),
            cache_capacity: self.engine.cache_capacity(),
            prep_micros: timing.prep_micros,
            fit_micros: timing.fit_micros,
            eval_micros: timing.eval_micros,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Bind the listening socket and build the shared engine. The
    /// server does not accept connections until [`Server::run`] (or
    /// [`Server::spawn`]) is called.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let eval_policy = ExecPolicy::with_threads(config.eval_threads);
        let engine = match config.cache_capacity {
            Some(capacity) => EvalEngine::with_policy(eval_policy).bound_cache(capacity),
            None => EvalEngine::with_policy(eval_policy),
        };
        let worker_policy = ExecPolicy::with_threads(config.workers);
        let workers = worker_policy.effective_threads(usize::MAX);
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                engine,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                queue_capacity: config.queue_capacity,
                worker_policy,
                eval_policy,
                workers,
                max_line_bytes: config.max_line_bytes,
                default_deadline_ms: config.default_deadline_ms,
                shutdown: AtomicBool::new(false),
                local_addr,
                started: Instant::now(),
                counters: Counters::default(),
            }),
        })
    }

    /// The bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates socket introspection failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `shutdown` request drains the backlog. Returns
    /// the final statistics snapshot.
    ///
    /// # Errors
    ///
    /// Propagates fatal socket errors; per-connection errors only
    /// close that connection.
    pub fn run(self) -> io::Result<ServerStats> {
        let inner = self.inner;
        let dispatcher = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || dispatch_loop(&inner))
        };
        for stream in self.listener.incoming() {
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                // Transient accept failure; keep serving.
                continue;
            };
            let inner = Arc::clone(&inner);
            thread::spawn(move || serve_connection(&inner, stream));
        }
        dispatcher
            .join()
            .map_err(|_| io::Error::other("dispatcher panicked"))?;
        Ok(inner.stats())
    }

    /// [`Server::run`] on a background thread; returns once the
    /// listener is live.
    pub fn spawn(self) -> ServerHandle {
        ServerHandle {
            thread: thread::spawn(move || self.run()),
        }
    }
}

/// Handle of a [`Server::spawn`]ed server.
pub struct ServerHandle {
    thread: JoinHandle<io::Result<ServerStats>>,
}

impl ServerHandle {
    /// Wait for the server to drain and exit; returns its final
    /// statistics.
    ///
    /// # Errors
    ///
    /// Propagates the server's exit error (or a panic as an error).
    pub fn join(self) -> io::Result<ServerStats> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn {
        stream: Mutex::new(write_half),
    });
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, inner.max_line_bytes) {
            Err(_) | Ok(Frame::Eof) => break,
            Ok(Frame::TooLong) => {
                // Framing is lost beyond the cap: answer, then close.
                conn.send(&Response::err(
                    None,
                    ErrorCode::LineTooLong,
                    format!("frame exceeds the {} byte cap", inner.max_line_bytes),
                ));
                break;
            }
            Ok(Frame::Truncated) => {
                conn.send(&Response::err(
                    None,
                    ErrorCode::BadRequest,
                    "truncated frame: stream ended before the terminating newline",
                ));
                break;
            }
            Ok(Frame::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(inner, &conn, &line);
            }
        }
    }
}

fn handle_line(inner: &Arc<Inner>, conn: &Arc<Conn>, line: &str) {
    let request = match parse_request_line(line) {
        Err(e) => {
            conn.send(&Response::err(e.id, e.code, e.message));
            return;
        }
        Ok(request) => request,
    };
    Counters::bump(&inner.counters.received);
    match &request.kind {
        // Control-plane requests bypass the queue: they stay
        // responsive even when evaluation is saturated.
        RequestKind::Stats => conn.send(&Response::ok(request.id, inner.stats().to_json())),
        RequestKind::Shutdown => {
            conn.send(&Response::ok(
                request.id,
                Json::obj(vec![("draining", Json::Bool(true))]),
            ));
            inner.begin_shutdown();
        }
        _ => {
            let deadline = request
                .deadline_ms
                .or(inner.default_deadline_ms)
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            let prep_key = prep_key_of(&request);
            inner.admit(Job {
                request,
                deadline,
                prep_key,
                conn: Arc::clone(conn),
            });
        }
    }
}

/// The dataset preparation a request depends on (`None` for `solve`).
fn prep_key_of(request: &Request) -> Option<PrepKey> {
    match &request.kind {
        RequestKind::Cell(req) => Some(config_prep_key(&req.config)),
        RequestKind::Matrix(req) => Some(config_prep_key(&req.config)),
        RequestKind::Estimate(req) => Some(config_prep_key(&req.config)),
        RequestKind::Online(req) => Some(config_prep_key(&req.config)),
        RequestKind::Solve(_) | RequestKind::Stats | RequestKind::Shutdown => None,
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// A batch's phase-1 product per job: nothing for `solve`, the shared
/// (or failed) preparation otherwise.
type BatchPrep = Option<Result<Arc<PreparedData>, SimError>>;

fn dispatch_loop(inner: &Arc<Inner>) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = inner.queue.lock().expect("admission queue poisoned");
            loop {
                if !queue.is_empty() {
                    break queue.drain(..).collect();
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .expect("admission queue poisoned");
            }
        };
        process_batch(inner, batch);
    }
}

/// Route one admitted batch through the two-phase task graph: distinct
/// preparations once (answered from the engine's store when warm),
/// then every job evaluated across the worker pool, each writing its
/// own response as it finishes.
///
/// Jobs whose deadline already expired while queued are rejected up
/// front — before phase 1 — so a dead request never pays for (or
/// pollutes the bounded cache with) a dataset preparation.
fn process_batch(inner: &Inner, batch: Vec<Job>) {
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = batch
        .into_iter()
        .partition(|job| job.deadline.map_or(true, |deadline| now <= deadline));
    for job in &expired {
        Counters::bump(&inner.counters.expired);
        job.conn.send(&Response::err(
            Some(job.request.id),
            ErrorCode::Deadline,
            "deadline expired before evaluation started",
        ));
    }
    let outcome: Result<Vec<()>, ()> = prepare_then_map(
        &inner.worker_policy,
        &live,
        |job| job.prep_key.clone(),
        |key: &Option<PrepKey>| Ok(key.as_ref().map(|k| inner.engine.prepare_shared(k))),
        |_, job, prep: &BatchPrep| {
            job.conn.send(&execute(inner, job, prep));
            Ok(())
        },
    );
    debug_assert!(outcome.is_ok(), "batch closures are infallible");
}

/// Evaluate one job into its response (deadline gate first).
fn execute(inner: &Inner, job: &Job, prep: &BatchPrep) -> Response {
    let id = job.request.id;
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            Counters::bump(&inner.counters.expired);
            return Response::err(
                Some(id),
                ErrorCode::Deadline,
                "deadline expired before evaluation started",
            );
        }
    }
    let shared = || -> Result<Arc<PreparedData>, SimError> {
        match prep {
            Some(Ok(data)) => Ok(Arc::clone(data)),
            Some(Err(e)) => Err(e.clone()),
            None => Err(SimError::Spec(
                "internal: evaluation request without a preparation".into(),
            )),
        }
    };
    let result: Result<Json, SimError> = match &job.request.kind {
        RequestKind::Solve(req) => run_solve(req),
        RequestKind::Cell(req) => shared().and_then(|data| {
            let prepared = Prepared::from_shared(data, &req.config)?;
            run_matrix_prepared(&prepared, &req.config, &req.as_matrix(), &inner.eval_policy)
                .map(|results| results.to_json())
        }),
        RequestKind::Matrix(req) => shared().and_then(|data| {
            let prepared = Prepared::from_shared(data, &req.config)?;
            run_matrix_prepared(&prepared, &req.config, &req.matrix, &inner.eval_policy)
                .map(|results| results.to_json())
        }),
        RequestKind::Estimate(req) => shared().and_then(|data| {
            let prepared = Prepared::from_shared(data, &req.config)?;
            estimate_curves_prepared(&prepared, &req.config, &req.placements, &req.strengths)
                .map(|estimate| estimate.to_json())
        }),
        RequestKind::Online(req) => shared().and_then(|data| {
            let prepared = Prepared::from_shared(data, &req.config)?;
            run_online_prepared(&prepared, &req.config, &req.spec, &inner.eval_policy)
                .map(|trace| trace.to_json())
                // Online play has its own error domain; unwrap the
                // pipeline errors it carries and flatten the rest into
                // the evaluation error the wire already speaks.
                .map_err(|e| match e {
                    poisongame_online::OnlineError::Sim(e) => e,
                    other => SimError::Spec(other.to_string()),
                })
        }),
        RequestKind::Stats | RequestKind::Shutdown => {
            // Handled inline by the reader; nothing enqueues these.
            Err(SimError::Spec("internal: control request in queue".into()))
        }
    };
    match result {
        Ok(json) => {
            Counters::bump(&inner.counters.completed);
            Response::ok(id, json)
        }
        Err(e) => {
            Counters::bump(&inner.counters.failed);
            Response::err(Some(id), ErrorCode::EvalFailed, e.to_string())
        }
    }
}

/// Execute a `solve`: fit the shipped curve samples, assemble the
/// game, solve the discretization with the requested solver.
fn run_solve(req: &SolveRequest) -> Result<Json, SimError> {
    let effect = EffectCurve::from_samples(&req.effect_samples)?;
    let cost = CostCurve::from_samples(&req.cost_samples)?;
    let game = PoisonGame::new(effect, cost, req.n_points)?;
    let solution = solve_discretized_with(&game, req.resolution, req.solver)?;
    Ok(SolveResult {
        value: solution.value,
        solver: solution.solver.clone(),
        defender_support: solution.defender_strategy.support().to_vec(),
        defender_probabilities: solution.defender_strategy.probabilities().to_vec(),
        attacker_support: solution.attacker_support.clone(),
    }
    .to_json())
}
