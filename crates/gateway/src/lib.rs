//! `poisongame-gateway` — a std-only HTTP/1.1 front end for the
//! NDJSON defense-evaluation service.
//!
//! The serving tier speaks a pipelined NDJSON-over-TCP protocol
//! (`poisongame-serve`), which is ideal for long-lived in-repo
//! clients and useless for everything else. This crate puts a thin
//! HTTP translation in front of it so standard tooling — `curl`,
//! load balancers, HTTP health checks — can drive the service:
//!
//! * [`http`] — the minimal HTTP/1.1 message layer: content-length
//!   framing, keep-alive, structured JSON error bodies; no chunked
//!   transfer, no TLS.
//! * [`server`] — the gateway itself: `POST
//!   /v1/{solve,cell,matrix,estimate,online,resize}`, `GET
//!   /v1/stats`, `POST /v1/shutdown`; bodies are forwarded to the
//!   backend untouched (the gateway owns only the `id`/`type`
//!   envelope), so backend validation, deadlines and seed overrides
//!   work over HTTP verbatim, and a `200` body is byte-identical to
//!   the NDJSON `result` document. Observability rides two more
//!   GETs: `GET /v1/metrics` scrapes the backend's metric registry
//!   as Prometheus text exposition 0.0.4, and `GET /v1/events?since=N`
//!   replays the backend's structured event log from a cursor.
//! * Backend connections are pooled and borrowed for one round trip
//!   per HTTP request; broken connections are dropped and redialed,
//!   so the gateway rides out backend restarts.
//! * [`client`] — a tiny blocking HTTP client for tests and load
//!   generation.
//!
//! # Example
//!
//! ```no_run
//! use poisongame_gateway::client::HttpClient;
//! use poisongame_gateway::server::{Gateway, GatewayConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gateway = Gateway::bind(GatewayConfig {
//!     backend: "127.0.0.1:7979".into(),
//!     ..GatewayConfig::default()
//! })?;
//! let addr = gateway.local_addr();
//! let handle = gateway.spawn();
//! let mut http = HttpClient::connect(addr)?;
//! let stats = http.get("/v1/stats")?;
//! println!("{} {}", stats.status, stats.body);
//! let _ = http.post("/v1/shutdown", "");
//! handle.join()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
mod pool;
pub mod server;

pub use client::{HttpClient, HttpResponse};
pub use server::{Gateway, GatewayConfig, GatewayHandle};
