//! Strict streaming CSV reading in fixed-size row chunks.
//!
//! [`ChunkReader`] pulls UCI-Spambase-layout CSV (`f_1,…,f_d,label`,
//! no header) off any [`BufRead`] source one bounded chunk at a time —
//! the whole file is never resident, so out-of-core preparation can
//! run over datasets far larger than memory. The reader folds every
//! raw byte it consumes into an FNV-1a [`ContentHash`] as a side
//! effect, so one streaming pass yields both the parsed rows *and* the
//! checksum a [`crate::FileSource`] validates against.
//!
//! Line semantics match `poisongame_data::csv::parse_csv` — blank
//! lines and `#` comments are skipped, fields are trimmed, the last
//! field is the label — with three strictness additions: CSV quoting
//! is rejected (the Spambase layout has none), physical lines beyond
//! [`IngestLimits::max_line_bytes`] are rejected up front (the
//! ingestion analogue of the serve tier's frame cap), and a final data
//! row without a terminating newline is rejected as a truncated
//! source.

use crate::error::IngestError;
use poisongame_data::cache::ContentHash;
use poisongame_data::csv::parse_csv as whole_parse_csv;
use poisongame_data::{Dataset, Label};
use std::io::BufRead;

/// Default cap on one physical line, in bytes. A real Spambase row is
/// ~2 KB even at full 17-significant-digit float precision; one
/// megabyte leaves three orders of magnitude of headroom while still
/// bounding what a corrupt (newline-less) source can make the reader
/// buffer.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Default rows per chunk for callers that stream without an explicit
/// chunk size (the whole-file reader's internal granularity).
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// Structural limits enforced while reading, before any field parsing.
#[derive(Debug, Clone)]
pub struct IngestLimits {
    /// Longest accepted physical line in bytes (newline excluded).
    pub max_line_bytes: usize,
}

impl Default for IngestLimits {
    fn default() -> Self {
        Self {
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// One chunk of raw (unparsed) data rows, ready to cross a worker-pool
/// boundary for parallel parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawChunk {
    /// The data rows, trimmed, newline-joined (comments and blank
    /// lines already stripped).
    pub text: String,
    /// The 1-based physical line number of each row, for error
    /// reporting that points at the real file.
    pub line_numbers: Vec<usize>,
    /// Global index of this chunk's first data row (0-based).
    pub first_row: usize,
}

impl RawChunk {
    /// Number of data rows in the chunk.
    pub fn rows(&self) -> usize {
        self.line_numbers.len()
    }
}

/// What one full streaming pass observed: the row count the split
/// planner needs, plus the byte count and checksum that pin the
/// source's identity between passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanSummary {
    /// Data rows (blank lines and comments excluded).
    pub rows: usize,
    /// Raw bytes consumed, newlines included.
    pub bytes: u64,
    /// FNV-1a hash of every raw byte, in order — equal to
    /// [`checksum_bytes`] of the whole source.
    pub checksum: u64,
}

/// FNV-1a checksum of a byte slice — the value to pin in a file
/// source's `checksum` field (and what [`ScanSummary::checksum`]
/// reports after a full pass).
pub fn checksum_bytes(bytes: &[u8]) -> u64 {
    ContentHash::new().bytes(bytes).finish()
}

/// A streaming chunked reader over Spambase-layout CSV.
///
/// # Example
///
/// ```
/// use poisongame_io::{ChunkReader, IngestLimits, parse_chunk};
///
/// let text = "0.5,1.5,1\n# comment\n2.5,3.5,0\n4.5,5.5,1\n";
/// let mut reader = ChunkReader::new(text.as_bytes(), 2, IngestLimits::default()).unwrap();
/// let chunk = reader.next_chunk().unwrap().unwrap();
/// assert_eq!(chunk.rows(), 2);
/// assert_eq!(chunk.line_numbers, vec![1, 3]);
/// let parsed = parse_chunk(&chunk, None).unwrap();
/// assert_eq!(parsed.cols, 2);
/// let last = reader.next_chunk().unwrap().unwrap();
/// assert_eq!(last.first_row, 2);
/// assert!(reader.next_chunk().unwrap().is_none());
/// assert_eq!(reader.summary().rows, 3);
/// ```
#[derive(Debug)]
pub struct ChunkReader<R> {
    reader: R,
    chunk_rows: usize,
    limits: IngestLimits,
    /// Physical lines consumed so far (1-based numbering flows from
    /// this).
    line: usize,
    /// Data rows emitted so far.
    row: usize,
    bytes: u64,
    hash: ContentHash,
    /// Bytes consumed since the last telemetry flush.
    unreported_bytes: u64,
    done: bool,
}

impl<R: BufRead> ChunkReader<R> {
    /// A reader emitting at most `chunk_rows` data rows per chunk.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::ZeroChunkRows`] for `chunk_rows == 0`.
    pub fn new(reader: R, chunk_rows: usize, limits: IngestLimits) -> Result<Self, IngestError> {
        if chunk_rows == 0 {
            return Err(IngestError::ZeroChunkRows);
        }
        Ok(Self {
            reader,
            chunk_rows,
            limits,
            line: 0,
            row: 0,
            bytes: 0,
            hash: ContentHash::new(),
            unreported_bytes: 0,
            done: false,
        })
    }

    /// The next chunk of raw data rows, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::LineTooLong`] past the byte cap,
    /// [`IngestError::UnterminatedRow`] when the final data row lacks
    /// a newline, and [`IngestError::Read`] on I/O failure.
    pub fn next_chunk(&mut self) -> Result<Option<RawChunk>, IngestError> {
        self.advance(true)
    }

    /// Consume the next chunk's worth of rows without materializing
    /// them — the counting pass of an out-of-core preparation. Returns
    /// the number of rows skimmed, `None` at end of input.
    ///
    /// # Errors
    ///
    /// Same as [`ChunkReader::next_chunk`].
    pub fn skim_chunk(&mut self) -> Result<Option<usize>, IngestError> {
        Ok(self.advance(false)?.map(|chunk| chunk.rows()))
    }

    /// Read one physical line (through its `\n`) into `buf`, buffering
    /// at most `max_line_bytes + 3` bytes — content, CRLF framing, and
    /// one byte proving the cap is exceeded. An over-cap line stops
    /// being read mid-stream, so a corrupt newline-less source can
    /// never make the reader materialize it; the caller's cap check
    /// fires on the truncated buffer (which lacks a `\n` and is
    /// already longer than the cap). Returns bytes consumed, 0 at EOF.
    fn read_line_bounded(&mut self, buf: &mut Vec<u8>) -> Result<usize, IngestError> {
        // Cap plus CRLF: a line whose *content* is exactly at the cap
        // still fits with its framing and must not trip the bound.
        let stop = self.limits.max_line_bytes.saturating_add(2);
        let mut total = 0usize;
        loop {
            let available = self
                .reader
                .fill_buf()
                .map_err(|e| IngestError::Read(e.to_string()))?;
            if available.is_empty() {
                return Ok(total);
            }
            if let Some(pos) = available.iter().position(|&b| b == b'\n') {
                buf.extend_from_slice(&available[..=pos]);
                self.reader.consume(pos + 1);
                return Ok(total + pos + 1);
            }
            let room = stop.saturating_add(1).saturating_sub(buf.len());
            let take = available.len().min(room);
            buf.extend_from_slice(&available[..take]);
            self.reader.consume(take);
            total += take;
            if buf.len() > stop {
                return Ok(total);
            }
        }
    }

    fn advance(&mut self, collect: bool) -> Result<Option<RawChunk>, IngestError> {
        if self.done {
            self.flush_bytes();
            return Ok(None);
        }
        let mut chunk = RawChunk {
            text: String::new(),
            line_numbers: Vec::new(),
            first_row: self.row,
        };
        let mut buf: Vec<u8> = Vec::new();
        while chunk.rows() < self.chunk_rows {
            buf.clear();
            let n = self.read_line_bounded(&mut buf)?;
            if n == 0 {
                self.done = true;
                break;
            }
            self.line += 1;
            self.bytes += n as u64;
            self.unreported_bytes += n as u64;
            self.hash = self.hash.bytes(&buf);
            let (content, terminated) = match buf.split_last() {
                // CRLF sources are accepted: the carriage return is
                // line framing, not row content (it still counts
                // toward the checksum, which covers raw bytes).
                Some((&b'\n', stripped)) => {
                    (stripped.strip_suffix(b"\r").unwrap_or(stripped), true)
                }
                _ => (buf.as_slice(), false),
            };
            if content.len() > self.limits.max_line_bytes {
                self.done = true;
                return Err(IngestError::LineTooLong {
                    line: self.line,
                    bytes: content.len(),
                    cap: self.limits.max_line_bytes,
                });
            }
            // The cap check runs on raw bytes first: a bounded read may
            // stop mid-UTF-8-sequence on an over-cap line, and that
            // must report LineTooLong, not a spurious encoding error.
            let content = std::str::from_utf8(content)
                .map_err(|_| IngestError::Read("stream did not contain valid UTF-8".to_string()))?;
            let trimmed = content.trim();
            let is_data = !(trimmed.is_empty() || trimmed.starts_with('#'));
            if !terminated {
                // Last line of the source. A trailing comment or
                // stray whitespace is fine; a data row without its
                // newline means the source was cut mid-record.
                self.done = true;
                if is_data {
                    return Err(IngestError::UnterminatedRow { line: self.line });
                }
                break;
            }
            if is_data {
                self.row += 1;
                chunk.line_numbers.push(self.line);
                if collect {
                    chunk.text.push_str(trimmed);
                    chunk.text.push('\n');
                }
            }
        }
        if chunk.rows() == 0 {
            self.flush_bytes();
            return Ok(None);
        }
        self.flush_bytes();
        Ok(Some(chunk))
    }

    fn flush_bytes(&mut self) {
        if self.unreported_bytes > 0 {
            crate::telemetry::metrics().bytes.add(self.unreported_bytes);
            self.unreported_bytes = 0;
        }
    }

    /// What the reader has observed so far; after the stream is
    /// drained this is the full-pass summary.
    pub fn summary(&self) -> ScanSummary {
        ScanSummary {
            rows: self.row,
            bytes: self.bytes,
            checksum: self.hash.finish(),
        }
    }
}

/// One full structural pass over a source: count data rows, enforce
/// the line cap and termination rules, fold the checksum — without
/// parsing a single float. This is pass 1 of an out-of-core
/// preparation (pass 2 re-reads and parses in chunks).
///
/// # Errors
///
/// Same as [`ChunkReader::next_chunk`].
pub fn scan<R: BufRead>(reader: R, limits: &IngestLimits) -> Result<ScanSummary, IngestError> {
    let mut chunks = ChunkReader::new(reader, DEFAULT_CHUNK_ROWS, limits.clone())?;
    while chunks.skim_chunk()?.is_some() {}
    Ok(chunks.summary())
}

/// The parsed form of one [`RawChunk`]: a row-major feature block plus
/// labels, positioned by its global first row.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedChunk {
    /// Global index of the first row (copied from the raw chunk).
    pub first_row: usize,
    /// Feature columns per row.
    pub cols: usize,
    /// Row-major `rows × cols` feature values.
    pub features: Vec<f64>,
    /// One label per row.
    pub labels: Vec<Label>,
}

impl ParsedChunk {
    /// Number of rows in the chunk.
    pub fn rows(&self) -> usize {
        self.labels.len()
    }
}

/// Parse one raw chunk's fields. `expected_cols` pins the feature
/// width (registered formats know theirs); `None` infers it from the
/// chunk's first row.
///
/// # Errors
///
/// Returns the structured per-line variants of [`IngestError`]
/// (arity, float, label, finiteness, quoting), each carrying the
/// original 1-based line number.
pub fn parse_chunk(
    chunk: &RawChunk,
    expected_cols: Option<usize>,
) -> Result<ParsedChunk, IngestError> {
    let started = std::time::Instant::now();
    let mut cols = expected_cols;
    let mut features: Vec<f64> = Vec::new();
    let mut labels: Vec<Label> = Vec::with_capacity(chunk.rows());
    for (i, row) in chunk.text.lines().enumerate() {
        let line = chunk.line_numbers[i];
        let mut fields = 0usize;
        let mut label_field: &str = "";
        for field in row.split(',') {
            let field = field.trim();
            if field.starts_with('"') {
                return Err(IngestError::Quoted { line });
            }
            fields += 1;
            // Every field is parsed as a feature first; once the row's
            // arity is known the trailing entry is reinterpreted as
            // the label below.
            label_field = field;
            // A parse failure becomes NaN here; the error is deferred
            // until we know whether this is the label position
            // (labels get their own variant).
            features.push(field.parse::<f64>().unwrap_or(f64::NAN));
        }
        if fields < 2 {
            return Err(IngestError::BadArity {
                line,
                expected: cols.map_or(2, |c| c + 1),
                found: fields,
            });
        }
        let width = match cols {
            Some(c) => {
                if fields - 1 != c {
                    return Err(IngestError::BadArity {
                        line,
                        expected: c + 1,
                        found: fields,
                    });
                }
                c
            }
            None => {
                cols = Some(fields - 1);
                fields - 1
            }
        };
        // Pop the label slot off the feature block and validate both
        // sides with their own error variants. Non-finite covers both
        // garbage text (parsed to NaN above) and literal `nan`/`inf`
        // labels — neither names a 0/1 class, so the label column is
        // exactly as strict as the feature columns.
        let label_value = features.pop().expect("label slot pushed above");
        if !label_value.is_finite() {
            return Err(IngestError::BadLabel {
                line,
                field: label_field.to_string(),
            });
        }
        let row_start = features.len() - width;
        for (offset, value) in features[row_start..].iter().enumerate() {
            if value.is_nan() || value.is_infinite() {
                // Re-parse the offending field to distinguish "not a
                // float" from "a non-finite float" — the slow path
                // only runs on already-doomed rows.
                let field = row.split(',').nth(offset).unwrap_or("").trim();
                return match field.parse::<f64>() {
                    Ok(v) => Err(IngestError::NonFinite { line, value: v }),
                    Err(_) => Err(IngestError::BadFloat {
                        line,
                        field: field.to_string(),
                    }),
                };
            }
        }
        labels.push(if label_value != 0.0 {
            Label::Positive
        } else {
            Label::Negative
        });
    }
    let parsed = ParsedChunk {
        first_row: chunk.first_row,
        cols: cols.unwrap_or(0),
        features,
        labels,
    };
    crate::telemetry::record_chunk(parsed.rows() as u64, started.elapsed());
    Ok(parsed)
}

/// Materialize a whole source through the strict streaming reader:
/// every row parsed, the full [`ScanSummary`] (checksum included)
/// observed in one pass. The small-file path of a file source — and
/// the reference the chunked out-of-core path is pinned bit-identical
/// against.
///
/// # Errors
///
/// Structural and per-line errors as in [`ChunkReader::next_chunk`]
/// and [`parse_chunk`], plus [`IngestError::Empty`] for a source with
/// no data rows.
pub fn read_dataset<R: BufRead>(
    reader: R,
    expected_cols: Option<usize>,
    limits: &IngestLimits,
) -> Result<(Dataset, ScanSummary), IngestError> {
    let mut chunks = ChunkReader::new(reader, DEFAULT_CHUNK_ROWS, limits.clone())?;
    let mut text = String::new();
    let mut cols = expected_cols;
    while let Some(chunk) = chunks.next_chunk()? {
        // Validate with the strict chunk parser (structured errors,
        // pinned width), but materialize via the same whole-text parse
        // the CsvText source uses so both construction paths share
        // one proven code path.
        let parsed = parse_chunk(&chunk, cols)?;
        cols = Some(parsed.cols);
        text.push_str(&chunk.text);
    }
    let summary = chunks.summary();
    if summary.rows == 0 {
        return Err(IngestError::Empty);
    }
    let dataset = whole_parse_csv(&text).map_err(|e| IngestError::Read(e.to_string()))?;
    Ok((dataset, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_preserves_rows_and_lines() {
        let text = "# header\n1,2,1\n\n3,4,0\n5,6,1\n7,8,0\n";
        let mut reader = ChunkReader::new(text.as_bytes(), 3, IngestLimits::default()).unwrap();
        let a = reader.next_chunk().unwrap().unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.line_numbers, vec![2, 4, 5]);
        assert_eq!(a.first_row, 0);
        let b = reader.next_chunk().unwrap().unwrap();
        assert_eq!(b.rows(), 1);
        assert_eq!(b.first_row, 3);
        assert!(reader.next_chunk().unwrap().is_none());
        let summary = reader.summary();
        assert_eq!(summary.rows, 4);
        assert_eq!(summary.bytes, text.len() as u64);
        assert_eq!(summary.checksum, checksum_bytes(text.as_bytes()));
    }

    #[test]
    fn scan_matches_chunked_summary() {
        let text = "1,2,1\r\n3,4,0\r\n";
        let summary = scan(text.as_bytes(), &IngestLimits::default()).unwrap();
        assert_eq!(summary.rows, 2);
        assert_eq!(summary.checksum, checksum_bytes(text.as_bytes()));
        let mut reader = ChunkReader::new(text.as_bytes(), 1, IngestLimits::default()).unwrap();
        while reader.next_chunk().unwrap().is_some() {}
        assert_eq!(reader.summary(), summary);
    }

    #[test]
    fn parse_chunk_infers_and_pins_width() {
        let chunk = RawChunk {
            text: "1,2,1\n3,4,0\n".to_string(),
            line_numbers: vec![1, 2],
            first_row: 0,
        };
        let parsed = parse_chunk(&chunk, None).unwrap();
        assert_eq!(parsed.cols, 2);
        assert_eq!(parsed.features, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(parsed.labels, vec![Label::Positive, Label::Negative]);
        assert!(matches!(
            parse_chunk(&chunk, Some(5)).unwrap_err(),
            IngestError::BadArity {
                line: 1,
                expected: 6,
                found: 3
            }
        ));
    }

    #[test]
    fn read_dataset_matches_parse_csv() {
        let text = "0.5,1.5,1\n2.5,3.5,0\n";
        let (dataset, summary) =
            read_dataset(text.as_bytes(), None, &IngestLimits::default()).unwrap();
        assert_eq!(dataset, whole_parse_csv(text).unwrap());
        assert_eq!(summary.rows, 2);
        assert_eq!(summary.checksum, checksum_bytes(text.as_bytes()));
    }

    #[test]
    fn zero_chunk_rows_is_rejected() {
        assert!(matches!(
            ChunkReader::new("1,2,1\n".as_bytes(), 0, IngestLimits::default()).unwrap_err(),
            IngestError::ZeroChunkRows
        ));
    }
}
