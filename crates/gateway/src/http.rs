//! Minimal HTTP/1.1 message layer: request parsing with
//! content-length framing, response serialization, structured JSON
//! error bodies.
//!
//! The gateway speaks just enough HTTP for load balancers, `curl` and
//! the in-repo client: request-line + headers + content-length body,
//! keep-alive by default (HTTP/1.1 semantics; `Connection: close`
//! honored), no chunked transfer, no TLS. Anything outside that
//! subset is answered with a structured HTTP error rather than a
//! dropped connection.

use poisongame_sim::jsonio::Json;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;

/// Cap on the request line plus all headers. Generous for any real
/// client; stops a hostile peer from growing the header buffer
/// without bound.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Content type of every JSON response the gateway writes. The one
/// non-JSON route, `GET /v1/metrics`, answers with
/// [`poisongame_obs::PROMETHEUS_CONTENT_TYPE`] instead.
pub const JSON_CONTENT_TYPE: &str = "application/json";

/// One parsed HTTP request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (`/v1/solve`); query strings are not split off.
    pub target: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection survives this exchange
    /// (HTTP/1.1 default, `Connection` header honored).
    pub keep_alive: bool,
}

/// A structured HTTP-level error: status + machine-readable code +
/// human-readable message, rendered as the same `{"error": {...}}`
/// body shape the backend's NDJSON errors use.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Machine-readable error class (mirrors the NDJSON `error.code`
    /// vocabulary, extended with HTTP-only classes like `not_found`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Whether framing is lost and the connection must close after
    /// the error response.
    pub close: bool,
}

impl HttpError {
    /// Build an error with every field explicit.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>, close: bool) -> Self {
        Self {
            status,
            code,
            message: message.into(),
            close,
        }
    }

    /// The JSON error body.
    pub fn body(&self) -> String {
        Json::obj(vec![(
            "error",
            Json::obj(vec![
                ("code", Json::str(self.code)),
                ("message", Json::str(&self.message)),
            ]),
        )])
        .render()
    }
}

/// Outcome of one attempt to read a request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(HttpRequest),
    /// Clean EOF on a request boundary — the peer is done.
    Closed,
    /// The gateway is stopping; abandon the connection.
    Stopped,
    /// The peer violated the protocol; answer with this error.
    Invalid(HttpError),
}

/// Read one request. `should_stop` is polled whenever the socket's
/// read timeout fires, so an idle keep-alive connection notices a
/// gateway shutdown promptly; mid-message timeouts keep waiting (the
/// partial bytes already read are preserved).
///
/// # Errors
///
/// Propagates unexpected transport failures (timeouts and EOF are
/// folded into [`ReadOutcome`]).
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
    should_stop: &dyn Fn() -> bool,
) -> io::Result<ReadOutcome> {
    let mut head = Vec::new();
    // Request line.
    let request_line = match read_line(reader, &mut head, should_stop)? {
        Line::Text(line) => line,
        Line::Eof => return Ok(ReadOutcome::Closed),
        Line::Truncated => {
            return Ok(ReadOutcome::Invalid(HttpError::new(
                400,
                "bad_request",
                "truncated request line",
                true,
            )))
        }
        Line::Stopped => return Ok(ReadOutcome::Stopped),
        Line::TooLong => return Ok(ReadOutcome::Invalid(head_too_large())),
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Ok(ReadOutcome::Invalid(HttpError::new(
                400,
                "bad_request",
                format!("malformed request line: `{request_line}`"),
                true,
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Ok(ReadOutcome::Invalid(HttpError::new(
            400,
            "bad_request",
            format!("unsupported protocol version `{version}`"),
            true,
        )));
    }
    let mut keep_alive = version == "HTTP/1.1";
    let method = method.to_string();
    let target = target.to_string();

    // Headers, until the blank line.
    let mut content_length: Option<usize> = None;
    loop {
        let line = match read_line(reader, &mut head, should_stop)? {
            Line::Text(line) => line,
            Line::Eof | Line::Truncated => {
                return Ok(ReadOutcome::Invalid(HttpError::new(
                    400,
                    "bad_request",
                    "connection closed inside the header block",
                    true,
                )))
            }
            Line::Stopped => return Ok(ReadOutcome::Stopped),
            Line::TooLong => return Ok(ReadOutcome::Invalid(head_too_large())),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Invalid(HttpError::new(
                400,
                "bad_request",
                format!("malformed header line: `{line}`"),
                true,
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if content_length.map_or(true, |prev| prev == n) => {
                    content_length = Some(n);
                }
                _ => {
                    return Ok(ReadOutcome::Invalid(HttpError::new(
                        400,
                        "bad_request",
                        format!("invalid content-length `{value}`"),
                        true,
                    )))
                }
            },
            "connection" => {
                // Token list; `close` anywhere wins, `keep-alive`
                // re-enables for HTTP/1.0 peers.
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "close" => keep_alive = false,
                        "keep-alive" => keep_alive = true,
                        _ => {}
                    }
                }
            }
            "transfer-encoding" => {
                return Ok(ReadOutcome::Invalid(HttpError::new(
                    400,
                    "bad_request",
                    "transfer-encoding is not supported; send content-length",
                    true,
                )))
            }
            _ => {}
        }
    }

    // Body framing: POST and friends require an explicit length.
    let length = match content_length {
        Some(length) => length,
        None if method == "GET" || method == "HEAD" || method == "DELETE" => 0,
        None => {
            // Framing is intact (there is no body to skip), so the
            // connection survives.
            return Ok(ReadOutcome::Invalid(HttpError::new(
                411,
                "length_required",
                format!("{method} requests must carry a content-length header"),
                false,
            )));
        }
    };
    if length > max_body_bytes {
        // The body is never read, so framing is lost: close.
        return Ok(ReadOutcome::Invalid(HttpError::new(
            413,
            "body_too_large",
            format!("content-length {length} exceeds the {max_body_bytes} byte cap"),
            true,
        )));
    }
    let mut body = vec![0u8; length];
    let mut filled = 0;
    while filled < length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Ok(ReadOutcome::Invalid(HttpError::new(
                    400,
                    "bad_request",
                    "connection closed before the full body arrived",
                    true,
                )))
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if should_stop() {
                    return Ok(ReadOutcome::Stopped);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Request(HttpRequest {
        method,
        target,
        body,
        keep_alive,
    }))
}

fn head_too_large() -> HttpError {
    HttpError::new(
        431,
        "headers_too_large",
        format!("request head exceeds the {MAX_HEAD_BYTES} byte cap"),
        true,
    )
}

enum Line {
    /// A complete line, CRLF/LF stripped.
    Text(String),
    /// Clean EOF before any byte of this line.
    Eof,
    /// EOF in the middle of a line.
    Truncated,
    Stopped,
    TooLong,
}

/// Read one CRLF/LF-terminated line, accounting its bytes against the
/// shared `head` budget. Timeouts poll `should_stop` so an idle
/// keep-alive connection notices a gateway shutdown promptly.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    head: &mut Vec<u8>,
    should_stop: &dyn Fn() -> bool,
) -> io::Result<Line> {
    let start = head.len();
    loop {
        // Cap each read at the remaining head budget so a peer that
        // never sends the newline cannot grow the buffer unboundedly.
        let remaining = (MAX_HEAD_BYTES + 1).saturating_sub(head.len()) as u64;
        if remaining == 0 {
            return Ok(Line::TooLong);
        }
        match reader.by_ref().take(remaining).read_until(b'\n', head) {
            Ok(0) => {
                return Ok(if head.len() == start {
                    Line::Eof
                } else {
                    Line::Truncated
                })
            }
            Ok(_) => {
                if head.last() != Some(&b'\n') {
                    // Delimiter not reached: either the budget ran out
                    // (retry shrinks `remaining` to 0 → TooLong) or
                    // EOF cut the line short — distinguished by
                    // whether another read yields bytes.
                    continue;
                }
                if head.len() > MAX_HEAD_BYTES {
                    return Ok(Line::TooLong);
                }
                let mut line = &head[start..head.len() - 1];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                return Ok(Line::Text(String::from_utf8_lossy(line).into_owned()));
            }
            Err(e) if is_timeout(&e) => {
                if should_stop() {
                    return Ok(Line::Stopped);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Serialize one response: status line, `Content-Type`,
/// `Content-Length`, `Connection`, body.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {length}\r\nconnection: {connection}\r\n\r\n",
        reason = reason_of(status),
        length = body.len(),
        connection = if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Canonical reason phrase for the statuses the gateway emits.
pub fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}
