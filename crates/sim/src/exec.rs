//! Parallel experiment execution.
//!
//! Every sweep in this crate is a grid of independent cells (sweep
//! points, support sizes, Monte-Carlo replicates) whose randomness is
//! derived per-cell from the master seed, never from a shared stream.
//! That makes fan-out safe *and* exactly reproducible: this module's
//! [`parallel_map`] assigns cells to the process-wide worker pool
//! ([`pool::WorkerPool`]) and writes results back by cell index, so
//! the output is **bit-identical to the sequential path at any worker
//! count** — the schedule decides only wall-clock time, never results.
//!
//! Historically each call spawned a fresh `std::thread::scope` pool;
//! the entry points now submit index-addressed batches to one
//! persistent pool instead (see the [`pool`] module), which removes
//! thread spawn/join churn from per-batch hot paths and makes nested
//! `parallel_map` calls safe: the submitting thread participates in
//! its own batch rather than blocking, so a cell that fans out again
//! cannot deadlock even on a one-worker pool. [`ExecPolicy::threads`]
//! is now a *participation cap* — how many threads may work this grid
//! concurrently — rather than a number of threads to spawn.
//!
//! # Example
//!
//! ```
//! use poisongame_sim::exec::{parallel_map, ExecPolicy};
//!
//! let squares = parallel_map(&ExecPolicy::with_threads(4), &[1, 2, 3], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};

use poisongame_exec::{OnceSlots, WorkerPool};

/// The persistent execution runtime behind this module's entry points.
///
/// Re-exports `poisongame-exec`, the workspace's bottom-layer runtime
/// crate: a lazily-initialized process-wide [`pool::WorkerPool`]
/// (global injector queue, per-worker stealable deques, condvar
/// parking, clean shutdown for tests) plus the write-once
/// [`pool::OnceSlots`] result cells. `sim` sits too high in the crate
/// graph for `linalg`'s blocked GEMM to depend on it, so the runtime
/// lives below both and this module is its canonical simulation-facing
/// name.
pub mod pool {
    pub use poisongame_exec::{hardware_threads, OnceSlots, PoolStats, WorkerPool};
}

/// How a sweep is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Concurrency cap: how many threads (the caller plus pool
    /// workers) may work the grid at once; `0` means one per available
    /// hardware thread.
    pub threads: usize,
}

impl Default for ExecPolicy {
    /// One participant per hardware thread.
    fn default() -> Self {
        Self { threads: 0 }
    }
}

impl ExecPolicy {
    /// Single-threaded execution (the historical code path).
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// At most `threads` concurrent participants (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The participant count actually used for `n_items` cells.
    ///
    /// The hardware thread count is resolved once per process and
    /// cached ([`pool::hardware_threads`]), so this is lock-free after
    /// first use — it runs per drained batch on the serving hot path.
    pub fn effective_threads(&self, n_items: usize) -> usize {
        let requested = if self.threads == 0 {
            pool::hardware_threads()
        } else {
            self.threads
        };
        requested.min(n_items).max(1)
    }
}

/// Map `f` over `items` on the shared worker pool, returning results
/// in item order.
///
/// `f` receives `(index, &item)`; cells are claimed from a shared
/// atomic counter and each result is written to its own write-once
/// slot, so the output `Vec` is independent of scheduling. The calling
/// thread participates in the batch (it claims cells alongside the
/// pool workers), which makes nested `parallel_map` calls
/// deadlock-free at any pool size. A panicking cell panics the whole
/// map (as the sequential loop would); the pool survives.
pub fn parallel_map<T, R, F>(policy: &ExecPolicy, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let participants = policy.effective_threads(items.len());
    if participants <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let slots: OnceSlots<R> = OnceSlots::new(items.len());
    WorkerPool::global().run(items.len(), participants, &|i| {
        slots.set(i, f(i, &items[i]));
    });
    slots
        .into_options()
        .into_iter()
        .map(|slot| slot.expect("every cell computed"))
        .collect()
}

/// Fallible [`parallel_map`]: the error of the **lowest-indexed**
/// failing cell is returned — the same error the sequential loop would
/// surface first, regardless of which participant hit it when. Once a
/// cell fails, participants stop evaluating cells above the failing
/// index, so an early failure does not pay for the rest of the grid.
///
/// # Errors
///
/// The first (by cell index) error any cell produced.
pub fn try_parallel_map<T, R, E, F>(policy: &ExecPolicy, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let participants = policy.effective_threads(items.len());
    if participants <= 1 {
        // Sequential fast path aborts at the first error, exactly like
        // the loops this replaces.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Lowest failing cell index seen so far; cells above it are
    // skipped (their slots stay unset).
    let lowest_err = AtomicUsize::new(usize::MAX);
    let slots: OnceSlots<Result<R, E>> = OnceSlots::new(items.len());
    WorkerPool::global().run(items.len(), participants, &|i| {
        if i > lowest_err.load(Ordering::Relaxed) {
            return;
        }
        let result = f(i, &items[i]);
        if result.is_err() {
            lowest_err.fetch_min(i, Ordering::Relaxed);
        }
        slots.set(i, result);
    });

    // Cells at or below the final lowest failing index are always
    // computed (the skip bound only holds failing indices, and only
    // ever decreases), so an in-order scan hits that error before any
    // skipped slot.
    let mut out = Vec::with_capacity(items.len());
    for slot in slots.into_options() {
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(e)) => return Err(e),
            None => unreachable!("slot below the lowest error is always computed"),
        }
    }
    Ok(out)
}

/// Two-phase prepare → evaluate task graph over a grid of cells that
/// share expensive context.
///
/// Phase 1 computes `prepare` **once per distinct key** (keys in
/// first-occurrence order, fanned out across the pool); phase 2 maps
/// `eval` over every cell with a shared borrow of its key's prepared
/// context. Cells sharing a key therefore share one preparation
/// instead of re-deriving it per cell — the scheduling-level
/// counterpart of the engine's cross-run preparation cache.
///
/// Determinism: both phases go through [`try_parallel_map`], so the
/// output (and which error surfaces) is independent of thread count.
/// `eval` receives `(cell index, &cell, &prepared)`.
///
/// # Errors
///
/// The first error by position: preparation errors surface in
/// first-occurrence key order, then evaluation errors in cell order —
/// exactly what a sequential prepare-all-then-eval-all loop would hit
/// first.
pub fn prepare_then_map<T, K, P, R, E, KF, PF, EF>(
    policy: &ExecPolicy,
    items: &[T],
    key_of: KF,
    prepare: PF,
    eval: EF,
) -> Result<Vec<R>, E>
where
    T: Sync,
    K: Eq + Hash + Clone + Sync,
    P: Send + Sync,
    R: Send,
    E: Send,
    KF: Fn(&T) -> K,
    PF: Fn(&K) -> Result<P, E> + Sync,
    EF: Fn(usize, &T, &P) -> Result<R, E> + Sync,
{
    // Distinct keys in first-occurrence order; each cell remembers its
    // key's slot.
    let mut distinct: Vec<K> = Vec::new();
    let mut slot_of: HashMap<K, usize> = HashMap::new();
    let cell_slots: Vec<usize> = items
        .iter()
        .map(|item| {
            let key = key_of(item);
            *slot_of.entry(key.clone()).or_insert_with(|| {
                distinct.push(key);
                distinct.len() - 1
            })
        })
        .collect();

    // Phase 1: one preparation per distinct key.
    let prepared: Vec<P> = try_parallel_map(policy, &distinct, |_, key| prepare(key))?;

    // Phase 2: evaluate every cell against its shared context.
    try_parallel_map(policy, items, |i, item| {
        eval(i, item, &prepared[cell_slots[i]])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn maps_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map(&ExecPolicy::with_threads(threads), &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    /// Float-heavy per-cell workload with per-cell seeds, shared by the
    /// backend-comparison tests below.
    fn lcg_workload(_: usize, &seed: &u64) -> f64 {
        let mut acc = 0.0f64;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for _ in 0..1000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            acc += (state >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        }
        acc
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // The pooled result must be bit-identical to the sequential
        // one at every participation cap.
        let cells: Vec<u64> = (0..64).collect();
        let sequential = parallel_map(&ExecPolicy::sequential(), &cells, lcg_workload);
        for threads in [2, 4, 8] {
            let parallel = parallel_map(&ExecPolicy::with_threads(threads), &cells, lcg_workload);
            let seq_bits: Vec<u64> = sequential.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u64> = parallel.iter().map(|v| v.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "{threads} threads diverged");
        }
    }

    #[test]
    fn pool_backend_matches_scoped_backend_bitwise() {
        // Reference implementation: the per-call scoped spawn backend
        // this module used before the persistent pool. Grid results
        // must be bit-identical across the two backends.
        fn scoped_map<T: Sync, R: Send, F: Fn(usize, &T) -> R + Sync>(
            threads: usize,
            items: &[T],
            f: F,
        ) -> Vec<R> {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let result = f(i, &items[i]);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("every cell computed"))
                .collect()
        }

        let cells: Vec<u64> = (0..48).collect();
        let scoped = scoped_map(4, &cells, lcg_workload);
        for threads in [1, 2, 8] {
            let pooled = parallel_map(&ExecPolicy::with_threads(threads), &cells, lcg_workload);
            let scoped_bits: Vec<u64> = scoped.iter().map(|v| v.to_bits()).collect();
            let pooled_bits: Vec<u64> = pooled.iter().map(|v| v.to_bits()).collect();
            assert_eq!(scoped_bits, pooled_bits, "{threads}-way pool vs scoped");
        }
    }

    #[test]
    fn nested_parallel_map_does_not_deadlock() {
        // A cell that fans out again used to be impossible (each call
        // spawned its own scoped pool); on the shared pool it must not
        // deadlock even when the outer grid already saturates every
        // worker. Exercised at participation caps that straddle the
        // pool size, including the global pool's own size.
        for threads in [1, 2, 8] {
            let outer: Vec<u64> = (0..4).collect();
            let policy = ExecPolicy::with_threads(threads);
            let out = parallel_map(&policy, &outer, |_, &row| {
                let inner: Vec<u64> = (0..4).map(|c| row * 4 + c).collect();
                parallel_map(&policy, &inner, |_, &x| x * 10)
                    .into_iter()
                    .sum::<u64>()
            });
            let expected: Vec<u64> = (0..4u64)
                .map(|row| (0..4).map(|c| (row * 4 + c) * 10).sum())
                .collect();
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn nested_try_parallel_map_propagates_inner_error() {
        let outer: Vec<u64> = (0..3).collect();
        let policy = ExecPolicy::with_threads(4);
        let out: Result<Vec<u64>, String> = try_parallel_map(&policy, &outer, |_, &row| {
            let inner: Vec<u64> = (0..3).map(|c| row * 3 + c).collect();
            let inner_sum: u64 = try_parallel_map(&policy, &inner, |_, &x| {
                if x == 4 {
                    Err(format!("cell {x} failed"))
                } else {
                    Ok(x)
                }
            })?
            .into_iter()
            .sum();
            Ok(inner_sum)
        });
        assert_eq!(out.unwrap_err(), "cell 4 failed");
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..32).collect();
        let out: Result<Vec<usize>, usize> =
            try_parallel_map(&ExecPolicy::with_threads(8), &items, |_, &x| {
                if x % 10 == 7 {
                    Err(x)
                } else {
                    Ok(x)
                }
            });
        assert_eq!(out.unwrap_err(), 7);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(&ExecPolicy::default(), &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ExecPolicy::with_threads(8).effective_threads(3), 3);
        assert_eq!(ExecPolicy::with_threads(2).effective_threads(100), 2);
        assert_eq!(ExecPolicy::sequential().effective_threads(100), 1);
        assert!(ExecPolicy::default().effective_threads(1000) >= 1);
    }

    #[test]
    fn zero_cells_every_entry_point() {
        let empty: &[u32] = &[];
        let out = parallel_map(&ExecPolicy::with_threads(8), empty, |_, &x| x);
        assert!(out.is_empty());
        let out: Result<Vec<u32>, ()> =
            try_parallel_map(&ExecPolicy::with_threads(8), empty, |_, &x| Ok(x));
        assert!(out.unwrap().is_empty());
        let out: Result<Vec<u32>, ()> = prepare_then_map(
            &ExecPolicy::with_threads(8),
            empty,
            |&x| x,
            |_| unreachable!("no keys for no cells"),
            |_, &x, _: &u32| Ok(x),
        );
        assert!(out.unwrap().is_empty());
    }

    #[test]
    fn more_threads_than_cells() {
        // Requesting far more participants than cells must neither
        // hang nor change results (workers beyond the cell count find
        // the claim counter exhausted immediately).
        let items = [10u64, 20, 30];
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        let out = parallel_map(&ExecPolicy::with_threads(64), &items, |_, &x| x * 3);
        assert_eq!(out, expected);
        let out: Vec<u64> =
            try_parallel_map::<_, _, (), _>(&ExecPolicy::with_threads(64), &items, |_, &x| {
                Ok(x * 3)
            })
            .unwrap();
        assert_eq!(out, expected);
        let out: Vec<u64> = prepare_then_map::<_, _, _, _, (), _, _, _>(
            &ExecPolicy::with_threads(64),
            &items,
            |&x| x % 2,
            |&k| Ok(k + 100),
            |_, &x, &p| Ok(x + p),
        )
        .unwrap();
        assert_eq!(out, vec![110, 120, 130]);
    }

    #[test]
    fn prepare_runs_once_per_distinct_key() {
        let prep_calls = AtomicUsize::new(0);
        let items = [1u64, 2, 1, 3, 2, 1];
        for threads in [1, 4] {
            prep_calls.store(0, Ordering::SeqCst);
            let out: Vec<u64> = prepare_then_map::<_, _, _, _, (), _, _, _>(
                &ExecPolicy::with_threads(threads),
                &items,
                |&x| x,
                |&k| {
                    prep_calls.fetch_add(1, Ordering::SeqCst);
                    Ok(k * 100)
                },
                |i, &x, &p| Ok(p + x + i as u64),
            )
            .unwrap();
            // 3 distinct keys → exactly 3 preparations at any thread
            // count, and every cell saw its own key's context.
            assert_eq!(prep_calls.load(Ordering::SeqCst), 3, "{threads} threads");
            assert_eq!(out, vec![101, 203, 103, 306, 206, 106]);
        }
    }

    #[test]
    fn prepare_errors_surface_in_first_occurrence_order() {
        let items = [5u64, 7, 6, 7];
        let out: Result<Vec<u64>, u64> = prepare_then_map(
            &ExecPolicy::with_threads(4),
            &items,
            |&x| x,
            |&k| if k >= 6 { Err(k) } else { Ok(k) },
            |_, &x, &p: &u64| Ok(x + p),
        );
        // Key 7 occurs before key 6, so its error wins regardless of
        // which worker failed first.
        assert_eq!(out.unwrap_err(), 7);
    }

    #[test]
    fn eval_errors_surface_in_cell_order() {
        let items = [1u64, 2, 3, 4];
        let out: Result<Vec<u64>, u64> = prepare_then_map(
            &ExecPolicy::with_threads(4),
            &items,
            |_| 0u64,
            |_| Ok(0u64),
            |i, &x, _| if x % 2 == 0 { Err(i as u64) } else { Ok(x) },
        );
        assert_eq!(out.unwrap_err(), 1, "lowest failing cell index");
    }
}
