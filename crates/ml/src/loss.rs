//! Loss functions for binary linear classifiers.
//!
//! All losses operate on the *margin* `m = y·f(x)` where `y ∈ {−1,+1}`
//! and `f(x) = w·x + b`: a positive margin is a correct classification.

/// Hinge loss `max(0, 1 − m)` — the SVM loss used throughout the paper.
///
/// # Example
///
/// ```
/// use poisongame_ml::loss::hinge;
/// assert_eq!(hinge(2.0), 0.0);   // confidently correct
/// assert_eq!(hinge(0.0), 1.0);   // on the boundary
/// assert_eq!(hinge(-1.0), 2.0);  // confidently wrong
/// ```
pub fn hinge(margin: f64) -> f64 {
    (1.0 - margin).max(0.0)
}

/// Subgradient of the hinge loss with respect to the margin
/// (`−1` inside the margin, `0` outside).
pub fn hinge_grad(margin: f64) -> f64 {
    if margin < 1.0 {
        -1.0
    } else {
        0.0
    }
}

/// Squared hinge loss `max(0, 1 − m)²` (smooth variant).
pub fn squared_hinge(margin: f64) -> f64 {
    let h = hinge(margin);
    h * h
}

/// Gradient of the squared hinge loss w.r.t. the margin.
pub fn squared_hinge_grad(margin: f64) -> f64 {
    if margin < 1.0 {
        -2.0 * (1.0 - margin)
    } else {
        0.0
    }
}

/// Logistic loss `ln(1 + e^{−m})`, computed in a numerically stable
/// form for large |m|.
pub fn logistic(margin: f64) -> f64 {
    // ln(1+e^{-m}) = max(0,-m) + ln(1 + e^{-|m|})
    (-margin).max(0.0) + (-margin.abs()).exp().ln_1p()
}

/// Gradient of the logistic loss w.r.t. the margin: `−σ(−m)`.
pub fn logistic_grad(margin: f64) -> f64 {
    -sigmoid(-margin)
}

/// The logistic sigmoid `1 / (1 + e^{−z})`, stable for large |z|.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Zero-one loss on the margin sign (`1` for errors, boundary counts
/// as an error).
pub fn zero_one(margin: f64) -> f64 {
    if margin > 0.0 {
        0.0
    } else {
        1.0
    }
}

/// Mean of a loss over a margin iterator; `0.0` when empty.
pub fn mean_loss<I, F>(margins: I, loss: F) -> f64
where
    I: IntoIterator<Item = f64>,
    F: Fn(f64) -> f64,
{
    let mut total = 0.0;
    let mut count = 0usize;
    for m in margins {
        total += loss(m);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinge_piecewise() {
        assert_eq!(hinge(1.0), 0.0);
        assert_eq!(hinge(0.5), 0.5);
        assert_eq!(hinge(-2.0), 3.0);
        assert_eq!(hinge_grad(0.5), -1.0);
        assert_eq!(hinge_grad(1.5), 0.0);
    }

    #[test]
    fn squared_hinge_is_square() {
        assert_eq!(squared_hinge(0.0), 1.0);
        assert_eq!(squared_hinge(-1.0), 4.0);
        assert_eq!(squared_hinge(2.0), 0.0);
        assert_eq!(squared_hinge_grad(0.0), -2.0);
        assert_eq!(squared_hinge_grad(3.0), 0.0);
    }

    #[test]
    fn logistic_matches_naive_in_safe_range() {
        for m in [-3.0f64, -1.0, 0.0, 0.5, 2.0] {
            let naive = (1.0 + (-m).exp()).ln();
            assert!((logistic(m) - naive).abs() < 1e-12, "margin {m}");
        }
    }

    #[test]
    fn logistic_is_stable_for_extreme_margins() {
        assert!(logistic(1000.0).is_finite());
        assert!(logistic(-1000.0).is_finite());
        assert!((logistic(-1000.0) - 1000.0).abs() < 1e-9);
        assert!(logistic(1000.0) < 1e-12);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        for z in [-50.0, -1.0, 0.3, 20.0] {
            let s = sigmoid(z);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-z) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn logistic_grad_bounds() {
        assert!((logistic_grad(0.0) + 0.5).abs() < 1e-15);
        assert!(logistic_grad(100.0).abs() < 1e-12);
        assert!((logistic_grad(-100.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_one_counts_boundary_as_error() {
        assert_eq!(zero_one(0.0), 1.0);
        assert_eq!(zero_one(0.1), 0.0);
        assert_eq!(zero_one(-0.1), 1.0);
    }

    #[test]
    fn mean_loss_averages() {
        let margins = vec![1.0, 0.0, -1.0];
        assert!((mean_loss(margins, hinge) - (0.0 + 1.0 + 2.0) / 3.0).abs() < 1e-12);
        assert_eq!(mean_loss(Vec::<f64>::new(), hinge), 0.0);
    }
}
