//! Repeated-game demo: adaptive attackers and defenders rediscover
//! the paper's static equilibrium by playing it.
//!
//! Part 1 plays 10,000 rounds of no-regret self-play on the
//! discretized paper game (memoized payoff-matrix mode) and compares
//! both the wall-clock and the converged value against the one-shot
//! simplex solve — the repeated game runs in the same order of
//! magnitude as solving the static game once.
//!
//! Part 2 runs the empirical mode on real (synthetic-Spambase) data:
//! every payoff-grid cell is an actual attack → filter → train →
//! evaluate run routed through the `EvalEngine`, so repeated queries
//! hit the preparation cache instead of re-preparing the dataset.
//!
//! Used as a CI smoke: the assertions at the bottom (regret shrinks,
//! the averaged value lands on the NE, cache hits dominate) fail the
//! run loudly if online play regresses.
//!
//! ```sh
//! cargo run --release --example online_play
//! ```

use poisongame::core::bridge::{discretized_game, solve_discretized};
use poisongame::core::paper::paper_game;
use poisongame::online::payoff::MatrixPayoff;
use poisongame::online::pipeline::materialize_grid;
use poisongame::online::play::{play, PlayConfig};
use poisongame::online::report::online_table;
use poisongame::online::{run_online, run_online_engine, LearnerKind, OnlineSpec};
use poisongame::sim::exec::ExecPolicy;
use poisongame::sim::pipeline::{DataSource, ExperimentConfig};
use poisongame::sim::EvalEngine;
use poisongame::theory::SolverKind;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: the discretized paper game at T = 10,000 ----------
    let game = paper_game()?;
    let resolution = 40;
    let (_grid, matrix) = discretized_game(&game, resolution);

    let t0 = Instant::now();
    let lp = solve_discretized(&game, resolution)?;
    let simplex_micros = t0.elapsed().as_micros();

    // The iterative reference: Hedge self-play as a *batch solver*
    // (20k fixed-horizon iterations) — the same computational shape
    // as the online loop.
    let t0 = Instant::now();
    let hedge = SolverKind::MultiplicativeWeights.solve(&discretized_game(&game, resolution).1)?;
    let hedge_micros = t0.elapsed().as_micros();

    let t0 = Instant::now();
    let trace = play(
        &mut MatrixPayoff::new(matrix),
        &PlayConfig {
            rounds: 10_000,
            attacker: LearnerKind::RegretMatching,
            defender: LearnerKind::RegretMatching,
            checkpoint_every: 2_000,
            ..PlayConfig::default()
        },
    )?;
    let play_micros = t0.elapsed().as_micros();

    println!("{}", online_table(&trace));
    let last = trace.last();
    println!(
        "T=10,000 rounds in {:.1} ms | one-shot solves: simplex {:.1} ms, Hedge(20k iters) {:.1} ms",
        play_micros as f64 / 1000.0,
        simplex_micros as f64 / 1000.0,
        hedge_micros as f64 / 1000.0,
    );
    println!(
        "averaged value {:.6} vs static NE {:.6} (gap {:.2e}; batch Hedge lands at {:.6})\n",
        last.average_value, lp.value, last.ne_gap, hedge.value
    );
    // Memoized-mode contract: 10k adaptive rounds cost what one
    // iterative solve of the same game costs (same order of
    // magnitude), not 10k × a cell evaluation.
    assert!(
        play_micros <= hedge_micros.max(1) * 10,
        "10k rounds ({play_micros}us) should be within one order of the \
         20k-iteration Hedge solve ({hedge_micros}us)"
    );

    // CI smoke assertions: regret shrinks and averaged play lands on
    // the static equilibrium.
    assert!(
        last.attacker_regret <= trace.points[0].attacker_regret,
        "attacker regret grew: {} -> {}",
        trace.points[0].attacker_regret,
        last.attacker_regret
    );
    assert!(
        last.defender_regret <= trace.points[0].defender_regret,
        "defender regret grew"
    );
    assert!(last.ne_gap <= 1e-2, "NE gap too large: {}", last.ne_gap);
    assert_eq!(trace.ne_value.to_bits(), lp.value.to_bits());

    // ---- Part 2: the empirical engine-backed mode ------------------
    let config = ExperimentConfig {
        seed: 11,
        source: DataSource::SyntheticSpambase { rows: 300 },
        epochs: 20,
        ..ExperimentConfig::paper()
    };
    let spec = OnlineSpec {
        rounds: 10_000,
        attacker: LearnerKind::Hedge,
        defender: LearnerKind::RegretMatching,
        placements: vec![0.02, 0.10, 0.20, 0.30],
        strengths: vec![0.0, 0.10, 0.20, 0.30],
        ..OnlineSpec::default()
    };

    // The static reference on the *same* empirical game: materialize
    // the payoff grid, solve it once. Sequential materialization, like
    // the lazy route below — the comparison is about what the 10k
    // rounds add, not about worker counts, and a parallel reference
    // would make the CI timing assertion core-count-dependent.
    let static_engine = EvalEngine::new();
    let t0 = Instant::now();
    let static_prepared = static_engine.prepare(&config)?;
    let static_game =
        materialize_grid(&static_prepared, &config, &spec, &ExecPolicy::sequential())?;
    let static_value = SolverKind::Simplex.solve(&static_game)?.value;
    let static_micros = t0.elapsed().as_micros();

    let engine = EvalEngine::new();
    let t0 = Instant::now();
    let lazy = run_online_engine(&engine, &config, &spec)?;
    let lazy_micros = t0.elapsed().as_micros();
    let stats = lazy.engine.expect("engine stats");
    println!(
        "empirical mode: {} cells + {} rounds on real data in {:.1} ms \
         (static solve of the same game: {:.1} ms, value {:.4})",
        stats.cells,
        spec.rounds,
        lazy_micros as f64 / 1000.0,
        static_micros as f64 / 1000.0,
        static_value
    );
    // Same order of magnitude end to end: cell evaluation dominates,
    // the 10k memoized rounds are marginal.
    assert!(
        lazy_micros <= static_micros.max(1) * 10,
        "T=10k empirical run ({lazy_micros}us) should be within one order \
         of the static solve ({static_micros}us)"
    );
    println!(
        "  prep cache: {} hits / {} misses — repeated payoff queries share one preparation",
        stats.prep_hits, stats.prep_misses
    );
    let last = lazy.trace.last();
    println!(
        "  {} vs {} after {} rounds: averaged value {:.4}, NE gap {:.2e}, exploitability {:.2e}",
        lazy.trace.attacker,
        lazy.trace.defender,
        lazy.trace.rounds,
        last.average_value,
        last.ne_gap,
        last.exploitability
    );
    assert!(
        stats.prep_hits > stats.prep_misses,
        "engine-backed payoffs must hit the prep cache: {stats:?}"
    );
    assert!(
        last.ne_gap <= 1e-2,
        "empirical NE gap too large: {}",
        last.ne_gap
    );

    // The parallel-materialization route is bit-identical.
    let engine2 = EvalEngine::new();
    let batch = run_online(&engine2, &config, &spec, &ExecPolicy::default())?;
    assert_eq!(
        batch.trace.to_json_string(),
        lazy.trace.to_json_string(),
        "parallel and lazy routes diverged"
    );
    println!("  parallel materialization: bit-identical trace — OK");

    println!("\nonline play OK");
    Ok(())
}
