//! Synthetic data generators.
//!
//! The build environment has no network access, so the UCI Spambase
//! file cannot be fetched. [`spambase_like`] generates a stand-in with
//! the exact Spambase *schema* (57 features: 48 word frequencies, 6
//! character frequencies, 3 capital-run-length statistics; 4601 rows;
//! 39.4 % spam) and the same statistical regime: zero-inflated,
//! right-skewed frequency columns, heavy-tailed capital-run columns,
//! two classes separable by a linear model at roughly 90 % accuracy
//! with a small irreducible error. The poisoning game consumes only
//! the distance-from-centroid distribution and the induced accuracy
//! curves, both of which this generator preserves qualitatively (see
//! DESIGN.md).
//!
//! [`gaussian_blobs`] provides a low-dimensional generator for fast
//! unit tests and the quickstart example.

use crate::dataset::Dataset;
use crate::label::Label;
use poisongame_linalg::rng::{exponential, log_normal, shuffled_indices, Xoshiro256StarStar};

/// Number of features in the Spambase schema.
pub const SPAMBASE_DIM: usize = 57;

/// Number of rows in the UCI Spambase dataset.
pub const SPAMBASE_ROWS: usize = 4601;

/// Spam fraction of the UCI Spambase dataset (1813 / 4601).
pub const SPAMBASE_SPAM_FRACTION: f64 = 1813.0 / 4601.0;

/// Configuration for [`spambase_like`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpambaseConfig {
    /// Number of rows to generate (UCI: 4601).
    pub rows: usize,
    /// Fraction of spam rows (UCI: 0.394).
    pub spam_fraction: f64,
    /// Probability that a row's recorded label is flipped relative to
    /// the class its features were drawn from — the irreducible error
    /// that keeps clean accuracy near the real dataset's ~90 %.
    pub label_noise: f64,
    /// Multiplier on class separation; `1.0` matches the calibrated
    /// default, smaller values create harder problems.
    pub separation: f64,
}

impl Default for SpambaseConfig {
    fn default() -> Self {
        Self {
            rows: SPAMBASE_ROWS,
            spam_fraction: SPAMBASE_SPAM_FRACTION,
            label_noise: 0.05,
            separation: 1.0,
        }
    }
}

impl SpambaseConfig {
    /// A reduced-size configuration for fast tests (same schema).
    pub fn small(rows: usize) -> Self {
        Self {
            rows,
            ..Self::default()
        }
    }
}

/// How one synthetic feature is distributed, per class.
///
/// Index 0 of each pair is ham (negative), index 1 is spam (positive).
#[derive(Debug, Clone, Copy, PartialEq)]
enum FeatureKind {
    /// With probability `zero_prob[class]` the value is 0, otherwise
    /// exponential with mean `mean[class]`, truncated at `cap`.
    ZeroInflatedExp {
        zero_prob: [f64; 2],
        mean: [f64; 2],
        cap: f64,
    },
    /// Log-normal with parameters per class, shifted to be ≥ `min`;
    /// rounded to an integer when `round` is set (run lengths are
    /// integers in the real data).
    LogNormal {
        mu: [f64; 2],
        sigma: [f64; 2],
        min: f64,
        round: bool,
    },
}

/// The 57-feature synthetic schema. Word groups:
/// * features 0–19  — spam-indicative words (`free`, `money`, …),
/// * features 20–39 — ham-indicative words (`george`, `meeting`, …),
/// * features 40–47 — neutral words,
/// * features 48–53 — character frequencies (`;`, `(`, `[`, `!`, `$`, `#`),
/// * features 54–56 — capital-run statistics (average, longest, total).
fn schema(separation: f64) -> Vec<FeatureKind> {
    let s = separation;
    let mut features = Vec::with_capacity(SPAMBASE_DIM);
    // Spam-indicative words: more frequent in spam, but present in ham
    // too — the class-conditional distributions overlap substantially,
    // as in the real corpus (generic mail mentions "money" as well).
    for i in 0..20 {
        let strength = 0.16 + 0.016 * i as f64;
        features.push(FeatureKind::ZeroInflatedExp {
            zero_prob: [
                0.86 - 0.01 * (i % 3) as f64,
                (0.74 - 0.008 * i as f64).max(0.55),
            ],
            mean: [0.22, (0.22 + strength * s).min(0.8)],
            cap: 20.0,
        });
    }
    // Ham-indicative words: more frequent in ham, present in spam.
    for i in 0..20 {
        let strength = 0.15 + 0.015 * i as f64;
        features.push(FeatureKind::ZeroInflatedExp {
            zero_prob: [(0.72 - 0.007 * i as f64).max(0.55), 0.87],
            mean: [(0.20 + strength * s).min(0.7), 0.18],
            cap: 20.0,
        });
    }
    // Neutral words: identical in both classes.
    for i in 0..8 {
        features.push(FeatureKind::ZeroInflatedExp {
            zero_prob: [0.8 - 0.02 * i as f64, 0.8 - 0.02 * i as f64],
            mean: [0.4, 0.4],
            cap: 15.0,
        });
    }
    // Character frequencies: `!` (index 51) and `$` (index 52) are the
    // classic spam markers; the others are weak or neutral.
    features.push(FeatureKind::ZeroInflatedExp {
        // ';'
        zero_prob: [0.55, 0.75],
        mean: [0.12, 0.08],
        cap: 5.0,
    });
    features.push(FeatureKind::ZeroInflatedExp {
        // '('
        zero_prob: [0.35, 0.5],
        mean: [0.18, 0.14],
        cap: 5.0,
    });
    features.push(FeatureKind::ZeroInflatedExp {
        // '['
        zero_prob: [0.85, 0.9],
        mean: [0.06, 0.05],
        cap: 3.0,
    });
    features.push(FeatureKind::ZeroInflatedExp {
        // '!'
        zero_prob: [0.50, 0.33],
        mean: [0.15, (0.22 + 0.12 * s).min(0.6)],
        cap: 10.0,
    });
    features.push(FeatureKind::ZeroInflatedExp {
        // '$'
        zero_prob: [0.88, 0.64],
        mean: [0.06, (0.10 + 0.06 * s).min(0.3)],
        cap: 6.0,
    });
    features.push(FeatureKind::ZeroInflatedExp {
        // '#'
        zero_prob: [0.9, 0.85],
        mean: [0.08, 0.1],
        cap: 6.0,
    });
    // Capital-run statistics — strongly heavy-tailed, higher for spam.
    features.push(FeatureKind::LogNormal {
        // average
        mu: [0.45, 0.45 + 0.3 * s],
        sigma: [0.7, 1.0],
        min: 1.0,
        round: false,
    });
    features.push(FeatureKind::LogNormal {
        // longest — very heavy tail, like the UCI column (max 9989);
        // far heavier for spam (SHOUTING subject lines).
        mu: [2.0, 2.0 + 0.5 * s],
        sigma: [1.1, 1.5],
        min: 1.0,
        round: true,
    });
    features.push(FeatureKind::LogNormal {
        // total — the heaviest UCI column (max 15841).
        mu: [4.0, 4.0 + 0.45 * s],
        sigma: [1.2, 1.7],
        min: 1.0,
        round: true,
    });
    debug_assert_eq!(features.len(), SPAMBASE_DIM);
    features
}

fn sample_feature(kind: &FeatureKind, class: usize, rng: &mut Xoshiro256StarStar) -> f64 {
    match *kind {
        FeatureKind::ZeroInflatedExp {
            zero_prob,
            mean,
            cap,
        } => {
            if rng.next_f64() < zero_prob[class] {
                0.0
            } else {
                exponential(1.0 / mean[class], rng).min(cap)
            }
        }
        FeatureKind::LogNormal {
            mu,
            sigma,
            min,
            round,
        } => {
            let v = log_normal(mu[class], sigma[class], rng).max(min);
            if round {
                v.round()
            } else {
                v
            }
        }
    }
}

/// Generate a Spambase-like dataset. Deterministic given the RNG state.
///
/// # Panics
///
/// Panics if `rows == 0`, `spam_fraction` outside `(0, 1)`, or
/// `label_noise` outside `[0, 0.5)`.
///
/// # Example
///
/// ```
/// use poisongame_data::synth::{spambase_like, SpambaseConfig};
/// use poisongame_linalg::Xoshiro256StarStar;
/// use rand::SeedableRng;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let d = spambase_like(&SpambaseConfig::small(200), &mut rng);
/// assert_eq!(d.len(), 200);
/// assert_eq!(d.dim(), 57);
/// ```
pub fn spambase_like(config: &SpambaseConfig, rng: &mut Xoshiro256StarStar) -> Dataset {
    assert!(config.rows > 0, "rows must be positive");
    assert!(
        config.spam_fraction > 0.0 && config.spam_fraction < 1.0,
        "spam_fraction must be in (0,1)"
    );
    assert!(
        (0.0..0.5).contains(&config.label_noise),
        "label_noise must be in [0,0.5)"
    );

    let schema = schema(config.separation);
    let n_spam = ((config.rows as f64) * config.spam_fraction).round() as usize;
    // True generative class per row, then shuffled.
    let mut classes: Vec<usize> = vec![1; n_spam];
    classes.extend(std::iter::repeat(0).take(config.rows - n_spam));
    let order = shuffled_indices(config.rows, rng);
    let classes: Vec<usize> = order.iter().map(|&i| classes[i]).collect();

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(config.rows);
    let mut labels: Vec<Label> = Vec::with_capacity(config.rows);
    for &class in &classes {
        let row: Vec<f64> = schema
            .iter()
            .map(|kind| sample_feature(kind, class, rng))
            .collect();
        let mut label = if class == 1 {
            Label::Positive
        } else {
            Label::Negative
        };
        // Uniform symmetric label noise: the irreducible error that
        // keeps clean accuracy near the real dataset's ~90 %. Noise is
        // independent of a row's position so that filtering far-out
        // rows does not interact with the poison's effectiveness (the
        // paper's payoff is additive in E and Γ).
        if rng.next_f64() < config.label_noise {
            label = label.flipped();
        }
        rows.push(row);
        labels.push(label);
    }
    Dataset::from_rows(rows, labels).expect("generator emits consistent rows")
}

/// Two Gaussian blobs in `dim` dimensions centred at `±offset·1/√dim`
/// with isotropic standard deviation `sigma`; `n` points per class.
///
/// # Panics
///
/// Panics if `n == 0`, `dim == 0`, or `sigma <= 0`.
///
/// # Example
///
/// ```
/// use poisongame_data::synth::gaussian_blobs;
/// use poisongame_linalg::Xoshiro256StarStar;
/// use rand::SeedableRng;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let d = gaussian_blobs(50, 2, 2.0, 0.5, &mut rng);
/// assert_eq!(d.len(), 100);
/// ```
pub fn gaussian_blobs(
    n: usize,
    dim: usize,
    offset: f64,
    sigma: f64,
    rng: &mut Xoshiro256StarStar,
) -> Dataset {
    assert!(n > 0 && dim > 0, "n and dim must be positive");
    assert!(sigma > 0.0, "sigma must be positive");
    let shift = offset / (dim as f64).sqrt();
    let mut rows = Vec::with_capacity(2 * n);
    let mut labels = Vec::with_capacity(2 * n);
    for class in [0usize, 1usize] {
        let sign = if class == 1 { 1.0 } else { -1.0 };
        for _ in 0..n {
            let row: Vec<f64> = (0..dim)
                .map(|_| sign * shift + sigma * poisongame_linalg::rng::standard_normal(rng))
                .collect();
            rows.push(row);
            labels.push(if class == 1 {
                Label::Positive
            } else {
                Label::Negative
            });
        }
    }
    // Shuffle so class blocks are interleaved.
    let order = shuffled_indices(2 * n, rng);
    let rows: Vec<Vec<f64>> = order.iter().map(|&i| rows[i].clone()).collect();
    let labels: Vec<Label> = order.iter().map(|&i| labels[i]).collect();
    Dataset::from_rows(rows, labels).expect("generator emits consistent rows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_matches_uci_shape() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let d = spambase_like(&SpambaseConfig::default(), &mut rng);
        assert_eq!(d.len(), SPAMBASE_ROWS);
        assert_eq!(d.dim(), SPAMBASE_DIM);
        let frac = d.class_fraction(Label::Positive);
        // Label noise moves the fraction slightly; stay within 3 points.
        assert!(
            (frac - SPAMBASE_SPAM_FRACTION).abs() < 0.03,
            "fraction {frac}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = Xoshiro256StarStar::seed_from_u64(7);
        let mut r2 = Xoshiro256StarStar::seed_from_u64(7);
        let a = spambase_like(&SpambaseConfig::small(300), &mut r1);
        let b = spambase_like(&SpambaseConfig::small(300), &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn features_are_non_negative_and_finite() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let d = spambase_like(&SpambaseConfig::small(500), &mut rng);
        for (x, _) in d.iter() {
            assert!(x.iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
    }

    #[test]
    fn capital_run_columns_are_heavy_tailed_and_at_least_one() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let d = spambase_like(&SpambaseConfig::small(2000), &mut rng);
        let summary = d.column_summary();
        for (c, col) in summary.iter().enumerate().take(57).skip(54) {
            assert!(col.min >= 1.0, "column {c} min {}", col.min);
            // Heavy tail: max far above mean.
            assert!(col.max > 5.0 * col.mean, "column {c} not heavy-tailed");
        }
        // Run lengths (longest/total) are integers.
        for c in 55..57 {
            for (x, _) in d.iter() {
                assert_eq!(x[c], x[c].round());
            }
        }
    }

    #[test]
    fn spam_words_separate_classes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let d = spambase_like(
            &SpambaseConfig {
                label_noise: 0.0,
                ..SpambaseConfig::small(3000)
            },
            &mut rng,
        );
        let spam_mean = d.class_mean(Label::Positive).unwrap();
        let ham_mean = d.class_mean(Label::Negative).unwrap();
        // Spam-indicative block (0..20) higher for spam; ham block
        // (20..40) higher for ham; exclamation mark (51) higher for spam.
        let spam_block: f64 = spam_mean[..20].iter().sum();
        let ham_block_spam: f64 = spam_mean[20..40].iter().sum();
        let spam_block_ham: f64 = ham_mean[..20].iter().sum();
        let ham_block: f64 = ham_mean[20..40].iter().sum();
        assert!(
            spam_block > 2.0 * spam_block_ham,
            "{spam_block} vs {spam_block_ham}"
        );
        assert!(
            ham_block > 2.0 * ham_block_spam,
            "{ham_block} vs {ham_block_spam}"
        );
        assert!(spam_mean[51] > 2.0 * ham_mean[51]);
    }

    #[test]
    fn label_noise_flips_recorded_labels() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let noisy = spambase_like(
            &SpambaseConfig {
                label_noise: 0.2,
                ..SpambaseConfig::small(2000)
            },
            &mut rng,
        );
        // Symmetric flips on a 39.4 % positive base rate move the
        // recorded positive fraction toward 0.5.
        let frac = noisy.class_fraction(Label::Positive);
        assert!(frac > SPAMBASE_SPAM_FRACTION + 0.01, "fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "rows must be positive")]
    fn zero_rows_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        spambase_like(&SpambaseConfig::small(0), &mut rng);
    }

    #[test]
    #[should_panic(expected = "spam_fraction")]
    fn bad_fraction_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        spambase_like(
            &SpambaseConfig {
                spam_fraction: 1.5,
                ..SpambaseConfig::small(10)
            },
            &mut rng,
        );
    }

    #[test]
    fn blobs_are_separated() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let d = gaussian_blobs(200, 4, 4.0, 0.5, &mut rng);
        assert_eq!(d.len(), 400);
        assert_eq!(d.class_count(Label::Positive), 200);
        let pos = d.class_mean(Label::Positive).unwrap();
        let neg = d.class_mean(Label::Negative).unwrap();
        let dist = poisongame_linalg::vector::euclidean_distance(&pos, &neg);
        assert!(dist > 3.0, "class means too close: {dist}");
    }

    #[test]
    fn blobs_shuffled_not_blocked() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(19);
        let d = gaussian_blobs(100, 2, 2.0, 1.0, &mut rng);
        // First 100 labels should not all be the same class.
        let first_block_pos = d.labels()[..100]
            .iter()
            .filter(|&&l| l == Label::Positive)
            .count();
        assert!(first_block_pos > 10 && first_block_pos < 90);
    }
}
