//! CSV input/output in the UCI Spambase layout.
//!
//! Each record is `f_1,…,f_d,label` where `label` is `1` (spam) or `0`
//! (ham). No header. This is exactly the format of
//! `spambase.data`, so the real UCI file can be dropped into any
//! experiment in place of the synthetic generator.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::label::Label;

/// Parse Spambase-format CSV text into a dataset.
///
/// Blank lines and lines starting with `#` are skipped. The label is
/// the final column; any finite non-zero value is treated as positive
/// (non-finite labels are rejected, like non-finite features).
///
/// # Errors
///
/// Returns [`DataError::Parse`] (with a 1-based line number) for
/// malformed records, [`DataError::Empty`] if no data lines exist.
///
/// # Example
///
/// ```
/// use poisongame_data::csv::parse_csv;
///
/// let text = "0.1,0.2,1\n0.3,0.4,0\n";
/// let d = parse_csv(text).unwrap();
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.dim(), 2);
/// ```
pub fn parse_csv(text: &str) -> Result<Dataset, DataError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<Label> = Vec::new();
    let mut width: Option<usize> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!("expected at least 2 fields, found {}", fields.len()),
            });
        }
        if let Some(w) = width {
            if fields.len() - 1 != w {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: format!("expected {} feature columns, found {}", w, fields.len() - 1),
                });
            }
        } else {
            width = Some(fields.len() - 1);
        }

        let mut row = Vec::with_capacity(fields.len() - 1);
        for f in &fields[..fields.len() - 1] {
            let v: f64 = f.parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                message: format!("invalid float {f:?}"),
            })?;
            if !v.is_finite() {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: format!("non-finite feature {v}"),
                });
            }
            row.push(v);
        }
        let label_field = fields[fields.len() - 1];
        let label_value: f64 = label_field.parse().map_err(|_| DataError::Parse {
            line: lineno + 1,
            message: format!("invalid label {label_field:?}"),
        })?;
        if !label_value.is_finite() {
            // A literal `nan`/`inf` parses as a float but names no
            // 0/1 class — reject it with the same strictness the
            // feature columns get.
            return Err(DataError::Parse {
                line: lineno + 1,
                message: format!("non-finite label {label_value}"),
            });
        }
        labels.push(if label_value != 0.0 {
            Label::Positive
        } else {
            Label::Negative
        });
        rows.push(row);
    }

    Dataset::from_rows(rows, labels)
}

/// Serialize a dataset back into Spambase-format CSV.
///
/// # Example
///
/// ```
/// use poisongame_data::csv::{parse_csv, to_csv};
///
/// let text = "0.5,1.5,1\n2.5,3.5,0\n";
/// let d = parse_csv(text).unwrap();
/// let round = parse_csv(&to_csv(&d)).unwrap();
/// assert_eq!(round, d);
/// ```
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    for (x, y) in data.iter() {
        let fields: Vec<String> = x.iter().map(|v| format_float(*v)).collect();
        out.push_str(&fields.join(","));
        out.push(',');
        out.push_str(&y.to_bit().to_string());
        out.push('\n');
    }
    out
}

/// Format a float compactly but losslessly enough for round-tripping
/// experiment artifacts (17 significant digits covers f64).
fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.17e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let d = parse_csv("1.5,2.5,1\n0,0,0\n").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.label(0), Label::Positive);
        assert_eq!(d.label(1), Label::Negative);
        assert_eq!(d.point(0), &[1.5, 2.5]);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let d = parse_csv("# header comment\n\n1,2,1\n\n# trailing\n3,4,0\n").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_ragged_rows_with_line_number() {
        let e = parse_csv("1,2,1\n1,2,3,0\n").unwrap_err();
        match e {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_float_and_bad_label() {
        assert!(matches!(
            parse_csv("a,2,1\n").unwrap_err(),
            DataError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            parse_csv("1,2,x\n").unwrap_err(),
            DataError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            parse_csv("inf,2,1\n").unwrap_err(),
            DataError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn rejects_too_few_fields() {
        assert!(matches!(
            parse_csv("42\n").unwrap_err(),
            DataError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(parse_csv("").unwrap_err(), DataError::Empty));
        assert!(matches!(
            parse_csv("# only comments\n").unwrap_err(),
            DataError::Empty
        ));
    }

    #[test]
    fn nonzero_label_is_positive() {
        let d = parse_csv("1,2,0.5\n").unwrap();
        assert_eq!(d.label(0), Label::Positive);
    }

    #[test]
    fn non_finite_label_is_rejected() {
        for bad in ["nan", "NaN", "inf", "-inf"] {
            let text = format!("1,2,{bad}\n");
            assert!(
                matches!(
                    parse_csv(&text).unwrap_err(),
                    DataError::Parse { line: 1, .. }
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn round_trip_preserves_values() {
        let d = parse_csv("0.125,3,1\n7,0.333333333333333314829616256247,0\n").unwrap();
        let back = parse_csv(&to_csv(&d)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn real_spambase_first_record_parses() {
        // Verbatim first record of the UCI spambase.data file.
        let line = "0,0.64,0.64,0,0.32,0,0,0,0,0,0,0.64,0,0,0,0.32,0,1.29,1.93,0,0.96,\
                    0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0.778,\
                    0,0,3.756,61,278,1";
        let d = parse_csv(line).unwrap();
        assert_eq!(d.dim(), 57);
        assert_eq!(d.label(0), Label::Positive);
        assert_eq!(d.point(0)[56], 278.0);
    }
}
