//! File-source requests over the wire: the `--data-dir` allow-list is
//! enforced before admission, resolved paths prep byte-identically to
//! the local pipeline, and absent files fall back to the synthetic
//! generator so a file-source request is always answerable offline.

use poisongame_data::csv::to_csv;
use poisongame_data::synth::{spambase_like, SpambaseConfig};
use poisongame_io::checksum_bytes;
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_serve::client::Client;
use poisongame_serve::protocol::CellRequest;
use poisongame_serve::server::{Server, ServerConfig};
use poisongame_serve::{ErrorCode, ServeError};
use poisongame_sim::pipeline::{DataSource, ExperimentConfig};
use poisongame_sim::scenario::{run_matrix, Scenario};
use rand::SeedableRng;
use std::net::SocketAddr;
use std::path::PathBuf;

fn spawn_server(config: ServerConfig) -> (SocketAddr, poisongame_serve::ServerHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    (addr, server.spawn())
}

/// A data dir holding one small synthetic Spambase CSV.
fn data_dir_with_csv(test: &str) -> (PathBuf, u64) {
    let dir = std::env::temp_dir().join(format!("pg-serve-file-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF1);
    let data = spambase_like(
        &SpambaseConfig {
            rows: 240,
            ..SpambaseConfig::default()
        },
        &mut rng,
    );
    let text = to_csv(&data);
    std::fs::write(dir.join("spam.csv"), &text).unwrap();
    (dir, checksum_bytes(text.as_bytes()))
}

fn file_cell(path: &str, checksum: Option<u64>, chunk_rows: Option<usize>) -> CellRequest {
    CellRequest {
        config: ExperimentConfig {
            seed: 21,
            source: DataSource::File {
                path: path.to_string(),
                checksum,
                format: "spambase".to_string(),
                chunk_rows,
                max_inflight_chunks: None,
            },
            epochs: 15,
            ..ExperimentConfig::paper()
        },
        scenario: Scenario::paper(),
        ..CellRequest::default()
    }
}

#[test]
fn served_file_source_matches_local_pipeline() {
    let (dir, sum) = data_dir_with_csv("match");
    let (addr, handle) = spawn_server(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    // Ground truth: the batch pipeline against the resolved path.
    let resolved = file_cell(
        &dir.join("spam.csv").display().to_string(),
        Some(sum),
        Some(64),
    );
    let expected = run_matrix(&resolved.config, &resolved.as_matrix())
        .expect("batch")
        .to_json_string();

    let mut client = Client::connect(addr).expect("connect");
    // The wire request names the *relative* path; the server resolves
    // it under its data dir. Whole-file and chunked must both match.
    for chunk_rows in [None, Some(64)] {
        let request = file_cell("spam.csv", Some(sum), chunk_rows);
        let got = client.cell(&request).expect("cell");
        assert_eq!(got.to_json_string(), expected, "chunk_rows {chunk_rows:?}");
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn absent_file_is_served_via_fallback() {
    let (dir, _) = data_dir_with_csv("fallback");
    let (addr, handle) = spawn_server(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let request = file_cell("never-downloaded.csv", Some(7), None);
    let via_file = client.cell(&request).expect("cell");
    // Identical to the pure synthetic source at the same seed.
    let synthetic = CellRequest {
        config: ExperimentConfig {
            source: DataSource::SyntheticSpambase { rows: 4601 },
            ..request.config.clone()
        },
        ..request.clone()
    };
    let via_synth = client.cell(&synthetic).expect("cell");
    assert_eq!(via_file.to_json_string(), via_synth.to_json_string());
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ragged_served_file_is_an_error_not_a_crash() {
    let (dir, _) = data_dir_with_csv("ragged");
    // Feature arity flips exactly at a chunk boundary, so with the
    // width-inferring `csv` format every chunk in the parse wave is
    // internally consistent and only the cross-chunk width check can
    // catch it. Before that check, the wider chunk panicked the
    // scatter loop — and worker-pool panics propagate, so one request
    // over a ragged data-dir file could take down the shard.
    std::fs::write(dir.join("ragged.csv"), "1,2,1\n3,4,0\n1,2,3,1\n4,5,6,0\n").unwrap();
    let (addr, handle) = spawn_server(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let mut request = file_cell("ragged.csv", None, Some(2));
    request.config.source = DataSource::File {
        path: "ragged.csv".to_string(),
        checksum: None,
        format: "csv".to_string(),
        chunk_rows: Some(2),
        max_inflight_chunks: Some(4),
    };
    match client.cell(&request).unwrap_err() {
        ServeError::Server { code, message } => {
            assert_eq!(code, ErrorCode::EvalFailed);
            assert!(message.contains("line 3"), "{message}");
        }
        other => panic!("expected structured arity error, got {other:?}"),
    }
    // The shard survived: a good request on the same connection works.
    client
        .cell(&file_cell("spam.csv", None, Some(64)))
        .expect("good request after ragged file");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn allow_list_rejects_escapes_and_undeclared_data_dir() {
    // No data dir: file sources are rejected outright.
    let (addr, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let err = client.cell(&file_cell("spam.csv", None, None)).unwrap_err();
    match err {
        ServeError::Server { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("data-dir"), "{message}");
        }
        other => panic!("expected server rejection, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("join");

    // With a data dir: traversal and absolute paths are rejected, and
    // the file never has to exist for the rejection to fire.
    let (dir, _) = data_dir_with_csv("escape");
    let (addr, handle) = spawn_server(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    for bad in ["../etc/passwd", "/etc/passwd", "a/../../b.csv", ""] {
        let err = client.cell(&file_cell(bad, None, None)).unwrap_err();
        match err {
            ServeError::Server { code, message } => {
                assert_eq!(code, ErrorCode::BadRequest, "{bad}");
                assert!(message.contains("relative"), "{bad}: {message}");
            }
            other => panic!("{bad}: expected server rejection, got {other:?}"),
        }
    }
    // A good request still works on the same connection afterwards.
    client
        .cell(&file_cell("spam.csv", None, None))
        .expect("good request");
    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    std::fs::remove_dir_all(&dir).ok();
}
