//! Cache-blocked dense kernels: multi-RHS matrix products, fused
//! margin evaluation and fused subgradient updates.
//!
//! The scalar loops in [`crate::vector`] stay the semantic reference;
//! everything here is a *blocked re-tiling of the same arithmetic*.
//! Each output entry is accumulated over the shared dimension in the
//! same ascending order as [`vector::dot`]'s sequential fold, and IEEE
//! 754 multiplication is commutative bit-for-bit, so the kernels are
//! bit-identical to the naive per-row dot products — blocking only
//! changes memory traffic, never results. That invariant is what lets
//! the simulation engine batch many cells' margin computations into
//! one multi-RHS product without perturbing golden-path bytes.
//!
//! # Example
//!
//! ```
//! use poisongame_linalg::gemm::{gemm_nt, RowSource};
//! use poisongame_linalg::Matrix;
//!
//! let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let w = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5]]).unwrap();
//! // C[i][j] = dot(x.row(i), w.row(j)) — weights as rows, no transpose.
//! let c = gemm_nt(&x, &w).unwrap();
//! assert_eq!(c.row(0), &[1.0, 1.5]);
//! assert_eq!(c.row(1), &[3.0, 3.5]);
//! ```

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;
use crate::view::MatrixView;

use poisongame_exec::{hardware_threads, WorkerPool};

/// Rows of the left operand processed per cache block: a block of this
/// many feature rows re-reads the packed right-hand panel while it is
/// still resident.
const ROW_BLOCK: usize = 128;

/// Right-hand-side rows (weight vectors) per tile; with the 4-wide
/// register unroll below, one tile keeps at most four accumulator
/// groups live at a time.
const RHS_BLOCK: usize = 16;

/// Anything that exposes equal-length rows of `f64` — the common face
/// of [`Matrix`], [`MatrixView`] and [`RowPanel`] that the blocked
/// kernels tile over.
pub trait RowSource {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Number of columns (every row has this length).
    fn cols(&self) -> usize;
    /// Borrow row `r`.
    fn row(&self, r: usize) -> &[f64];
}

impl RowSource for Matrix {
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }
    fn cols(&self) -> usize {
        Matrix::cols(self)
    }
    fn row(&self, r: usize) -> &[f64] {
        Matrix::row(self, r)
    }
}

impl RowSource for MatrixView<'_> {
    fn rows(&self) -> usize {
        MatrixView::rows(self)
    }
    fn cols(&self) -> usize {
        MatrixView::cols(self)
    }
    fn row(&self, r: usize) -> &[f64] {
        MatrixView::row(self, r)
    }
}

impl<T: RowSource + ?Sized> RowSource for &T {
    fn rows(&self) -> usize {
        (**self).rows()
    }
    fn cols(&self) -> usize {
        (**self).cols()
    }
    fn row(&self, r: usize) -> &[f64] {
        (**self).row(r)
    }
}

/// An owned, contiguous, reusable row panel — the gather target for
/// minibatch training (rows copied out of a [`RowSource`] in shuffle
/// order) and the packing buffer the blocked product reads its
/// right-hand side from.
///
/// Unlike [`Matrix`] it is built to be recycled: [`RowPanel::clear`]
/// keeps the allocation, so a training loop gathers thousands of
/// batches into the same buffer.
#[derive(Debug, Clone, Default)]
pub struct RowPanel {
    cols: usize,
    data: Vec<f64>,
}

impl RowPanel {
    /// An empty panel whose rows will have `cols` entries.
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            data: Vec::new(),
        }
    }

    /// An empty panel with room for `rows` rows pre-allocated.
    pub fn with_capacity(rows: usize, cols: usize) -> Self {
        Self {
            cols,
            data: Vec::with_capacity(rows * cols),
        }
    }

    /// Drop all rows but keep the allocation (and the width).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Number of gathered rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Append one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the panel width.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "RowPanel::push: width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl RowSource for RowPanel {
    fn rows(&self) -> usize {
        RowPanel::rows(self)
    }
    fn cols(&self) -> usize {
        RowPanel::cols(self)
    }
    fn row(&self, r: usize) -> &[f64] {
        RowPanel::row(self, r)
    }
}

/// Pack every row of `src` into one contiguous panel. This is the
/// transposed-panel step of the blocked product: a [`MatrixView`]'s
/// base/tail split (or any other scattered row source) becomes a
/// single linear buffer the inner loops stream through.
pub fn pack_rows(src: &impl RowSource) -> RowPanel {
    let mut panel = RowPanel::with_capacity(src.rows(), src.cols());
    for r in 0..src.rows() {
        panel.push(src.row(r));
    }
    panel
}

/// The macro-kernel: one `ROW_BLOCK`-sized band of the output.
///
/// Computes rows `i0 .. i0 + out.len() / n` of `C = A Bᵀ` into `out`
/// (a flat row-major band, `n` columns per row). Each output entry is
/// accumulated over the shared dimension in ascending order — the
/// bit-identity contract — and the band is written by exactly one
/// caller, so bands can be dispatched to parallel workers without any
/// reduction reordering.
fn gemm_nt_block(
    a: &impl RowSource,
    panel: &RowPanel,
    k: usize,
    n: usize,
    i0: usize,
    out: &mut [f64],
) {
    let band_rows = out.len() / n;
    for j0 in (0..n).step_by(RHS_BLOCK) {
        let j_end = (j0 + RHS_BLOCK).min(n);
        for local_i in 0..band_rows {
            let a_row = &a.row(i0 + local_i)[..k];
            let c_row = &mut out[local_i * n..(local_i + 1) * n];
            let mut j = j0;
            // 4 RHS accumulators share each streamed a_row load.
            while j + 4 <= j_end {
                let b0 = &panel.row(j)[..k];
                let b1 = &panel.row(j + 1)[..k];
                let b2 = &panel.row(j + 2)[..k];
                let b3 = &panel.row(j + 3)[..k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                for (t, &av) in a_row.iter().enumerate() {
                    s0 += av * b0[t];
                    s1 += av * b1[t];
                    s2 += av * b2[t];
                    s3 += av * b3[t];
                }
                c_row[j] = s0;
                c_row[j + 1] = s1;
                c_row[j + 2] = s2;
                c_row[j + 3] = s3;
                j += 4;
            }
            while j < j_end {
                c_row[j] = vector::dot(a_row, panel.row(j));
                j += 1;
            }
        }
    }
}

/// Multiply-accumulate count below which fanning row bands out to the
/// pool costs more than it saves (ticket push + wakeups ≈ a few µs).
const PARALLEL_FLOP_THRESHOLD: usize = 4_000_000;

/// How many threads `gemm_nt` lets work on an `m`-row product with
/// `flops` multiply-accumulates: one (serial) when the product has a
/// single row band or is too small to amortize dispatch, otherwise one
/// per hardware thread, capped by the band count.
fn gemm_participants(m: usize, flops: usize) -> usize {
    if m <= ROW_BLOCK || flops < PARALLEL_FLOP_THRESHOLD {
        return 1;
    }
    hardware_threads().min(m.div_ceil(ROW_BLOCK))
}

/// Blocked multi-RHS product `C = A Bᵀ` over row-major operands:
/// `C[i][j] = dot(a.row(i), b.row(j))`.
///
/// `b`'s rows are the right-hand sides (e.g. one weight vector per
/// simulation cell), so no operand is ever physically transposed. The
/// accumulation over the shared dimension is sequential-ascending per
/// output entry — bit-identical to calling [`vector::dot`] per pair,
/// for any blocking.
///
/// Large products (several `ROW_BLOCK` bands and enough arithmetic to
/// amortize dispatch) fan their output row bands out across the shared
/// worker pool ([`poisongame_exec::WorkerPool::global`]). Each band is
/// written by exactly one task and the per-entry accumulation order
/// never changes, so the parallel result is **bit-identical by
/// construction** at any worker count — see [`gemm_nt_parallel`] to
/// pick the participant count explicitly.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `a.cols() != b.cols()`.
pub fn gemm_nt(a: &(impl RowSource + Sync), b: &impl RowSource) -> Result<Matrix, LinalgError> {
    let flops = a.rows() * b.rows() * a.cols();
    gemm_nt_parallel(a, b, gemm_participants(a.rows(), flops))
}

/// [`gemm_nt`] with an explicit concurrency cap: at most
/// `participants` threads (the caller plus shared-pool workers) build
/// the product, each writing whole output row bands. `participants <= 1`
/// is the serial path; any value yields bit-identical results.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `a.cols() != b.cols()`.
pub fn gemm_nt_parallel(
    a: &(impl RowSource + Sync),
    b: &impl RowSource,
    participants: usize,
) -> Result<Matrix, LinalgError> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            left: a.cols(),
            right: b.cols(),
        });
    }
    let (m, n, k) = (a.rows(), b.rows(), a.cols());
    if m == 0 || n == 0 {
        return Ok(Matrix::zeros(m, n));
    }
    let panel = pack_rows(b);
    let mut data = vec![0.0; m * n];
    if participants <= 1 {
        for (band, out) in data.chunks_mut(ROW_BLOCK * n).enumerate() {
            gemm_nt_block(a, &panel, k, n, band * ROW_BLOCK, out);
        }
    } else {
        WorkerPool::global().for_each_chunk_mut(
            participants,
            &mut data,
            ROW_BLOCK * n,
            |band, out| {
                gemm_nt_block(a, &panel, k, n, band * ROW_BLOCK, out);
            },
        );
    }
    Ok(Matrix::from_vec(m, n, data).expect("band tiling covers exactly m*n entries"))
}

/// Blocked matrix-vector product `a * x` with a 4-row unroll: the
/// right-hand side stays register/cache resident across row groups.
/// Each entry is accumulated in [`vector::dot`] order — bit-identical
/// to the naive per-row loop.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `x.len() != a.cols()`.
pub fn gemv(a: &impl RowSource, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if x.len() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            left: a.cols(),
            right: x.len(),
        });
    }
    let (m, k) = (a.rows(), a.cols());
    let mut out = vec![0.0; m];
    let mut i = 0;
    while i + 4 <= m {
        let r0 = &a.row(i)[..k];
        let r1 = &a.row(i + 1)[..k];
        let r2 = &a.row(i + 2)[..k];
        let r3 = &a.row(i + 3)[..k];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for (t, &xv) in x.iter().enumerate() {
            s0 += r0[t] * xv;
            s1 += r1[t] * xv;
            s2 += r2[t] * xv;
            s3 += r3[t] * xv;
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
        i += 4;
    }
    while i < m {
        out[i] = vector::dot(a.row(i), x);
        i += 1;
    }
    Ok(out)
}

/// Fused margin kernel: `out[i] = labels[i] * (dot(x.row(i), w) + bias)`
/// in one pass over the rows — the hinge/logistic margin `y ⊙ (Xw + b)`
/// without materializing the intermediate product. `out` is cleared and
/// refilled, keeping its allocation across calls.
///
/// Bit-identical to computing `y * (dot(w, x) + b)` per row (IEEE 754
/// products commute bitwise; accumulation order is `vector::dot`'s).
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `labels.len() !=
/// x.rows()` or `w.len() != x.cols()`.
pub fn fused_margins(
    x: &impl RowSource,
    labels: &[f64],
    w: &[f64],
    bias: f64,
    out: &mut Vec<f64>,
) -> Result<(), LinalgError> {
    if labels.len() != x.rows() {
        return Err(LinalgError::DimensionMismatch {
            left: x.rows(),
            right: labels.len(),
        });
    }
    if w.len() != x.cols() {
        return Err(LinalgError::DimensionMismatch {
            left: x.cols(),
            right: w.len(),
        });
    }
    let (m, k) = (x.rows(), x.cols());
    out.clear();
    out.reserve(m);
    let mut i = 0;
    while i + 4 <= m {
        let r0 = &x.row(i)[..k];
        let r1 = &x.row(i + 1)[..k];
        let r2 = &x.row(i + 2)[..k];
        let r3 = &x.row(i + 3)[..k];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for (t, &wv) in w.iter().enumerate() {
            s0 += r0[t] * wv;
            s1 += r1[t] * wv;
            s2 += r2[t] * wv;
            s3 += r3[t] * wv;
        }
        out.push(labels[i] * (s0 + bias));
        out.push(labels[i + 1] * (s1 + bias));
        out.push(labels[i + 2] * (s2 + bias));
        out.push(labels[i + 3] * (s3 + bias));
        i += 4;
    }
    while i < m {
        out.push(labels[i] * (vector::dot(x.row(i), w) + bias));
        i += 1;
    }
    Ok(())
}

/// Fused scale-then-accumulate update
/// `w ← shrink·w + Σ coeffs[p] · x.row(picked[p])`
/// — the aggregated minibatch subgradient step. The scale is folded
/// into the first accumulated row's pass, so a batch with violators
/// touches `w` one fewer time than a separate scale + axpy sequence
/// (same two arithmetic ops per entry, so bit-identical to it: Rust
/// never contracts `a*b + c` into a fused multiply-add).
///
/// With `picked` empty this degrades to a plain scale (a no-op when
/// `shrink == 1.0`). Callers encode "skip the scale" (e.g. the SGD
/// guard against non-positive shrink factors) by passing `1.0`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `picked` and `coeffs`
/// differ in length or `w.len() != x.cols()`.
pub fn scale_accumulate(
    shrink: f64,
    x: &impl RowSource,
    picked: &[usize],
    coeffs: &[f64],
    w: &mut [f64],
) -> Result<(), LinalgError> {
    if picked.len() != coeffs.len() {
        return Err(LinalgError::DimensionMismatch {
            left: picked.len(),
            right: coeffs.len(),
        });
    }
    if w.len() != x.cols() {
        return Err(LinalgError::DimensionMismatch {
            left: x.cols(),
            right: w.len(),
        });
    }
    match picked.split_first() {
        None => {
            if shrink != 1.0 {
                vector::scale(shrink, w);
            }
        }
        Some((&first, rest)) => {
            let c0 = coeffs[0];
            let row0 = &x.row(first)[..w.len()];
            if shrink != 1.0 {
                for (t, wv) in w.iter_mut().enumerate() {
                    *wv = shrink * *wv + c0 * row0[t];
                }
            } else {
                vector::axpy(c0, row0, w);
            }
            for (&r, &c) in rest.iter().zip(&coeffs[1..]) {
                vector::axpy(c, x.row(r), w);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    use rand::SeedableRng;

    fn random_matrix(rows: usize, cols: usize, rng: &mut Xoshiro256StarStar) -> Matrix {
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| rng.next_f64() * 2.0 - 1.0)
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    /// The reference semantics: one `vector::dot` per output entry.
    fn naive_gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                out.set(i, j, vector::dot(a.row(i), b.row(j)));
            }
        }
        out
    }

    #[test]
    fn gemm_nt_is_bit_identical_to_naive_dots_across_block_boundaries() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x6E77);
        // Shapes straddling ROW_BLOCK (128) and RHS_BLOCK (16) edges,
        // plus tile remainders of every size mod 4.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 4, 8),
            (17, 3, 57),
            (127, 15, 10),
            (128, 16, 33),
            (129, 17, 57),
            (150, 19, 37),
            (300, 24, 57),
        ] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(n, k, &mut rng);
            let blocked = gemm_nt(&a, &b).unwrap();
            let naive = naive_gemm_nt(&a, &b);
            assert_eq!(blocked, naive, "bit divergence at {m}x{n}x{k}");
        }
    }

    #[test]
    fn gemm_nt_parallel_is_bit_identical_to_serial() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x9A11);
        // Shapes with 1, 2 and 4 row bands, including ragged last
        // bands, at paper-like widths.
        for &(m, n, k) in &[(100, 8, 57), (256, 24, 57), (300, 5, 123), (513, 16, 33)] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(n, k, &mut rng);
            let serial = gemm_nt_parallel(&a, &b, 1).unwrap();
            for participants in [2, 4, 8] {
                let parallel = gemm_nt_parallel(&a, &b, participants).unwrap();
                for i in 0..m {
                    let serial_bits: Vec<u64> = serial.row(i).iter().map(|v| v.to_bits()).collect();
                    let par_bits: Vec<u64> = parallel.row(i).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        serial_bits, par_bits,
                        "row {i} diverged at {m}x{n}x{k}, {participants} participants"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_participants_thresholds() {
        // One row band or tiny arithmetic → serial, no pool dispatch.
        assert_eq!(gemm_participants(ROW_BLOCK, usize::MAX), 1);
        assert_eq!(gemm_participants(1000, PARALLEL_FLOP_THRESHOLD - 1), 1);
        // Past both thresholds the cap is bands-vs-hardware.
        let p = gemm_participants(ROW_BLOCK * 4, PARALLEL_FLOP_THRESHOLD);
        assert!((1..=4).contains(&p));
    }

    #[test]
    fn gemm_nt_reads_views_like_materialized_matrices() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xB457);
        let base = random_matrix(40, 9, &mut rng);
        let tail = random_matrix(7, 9, &mut rng);
        let view = MatrixView::with_tail(&base, tail).unwrap();
        let rhs = random_matrix(5, 9, &mut rng);
        let via_view = gemm_nt(&view, &rhs).unwrap();
        let via_matrix = gemm_nt(&view.to_matrix(), &rhs).unwrap();
        assert_eq!(via_view, via_matrix);
    }

    #[test]
    fn gemm_nt_handles_empty_operands_and_mismatch() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(4, 3);
        assert_eq!(gemm_nt(&a, &b).unwrap().shape(), (0, 4));
        assert_eq!(gemm_nt(&b, &a).unwrap().shape(), (4, 0));
        let bad = Matrix::zeros(2, 5);
        assert!(matches!(
            gemm_nt(&b, &bad).unwrap_err(),
            LinalgError::DimensionMismatch { left: 3, right: 5 }
        ));
    }

    #[test]
    fn gemv_is_bit_identical_to_per_row_dots() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x6E58);
        for &(m, k) in &[(1, 3), (4, 57), (7, 12), (130, 57)] {
            let a = random_matrix(m, k, &mut rng);
            let x: Vec<f64> = (0..k).map(|_| rng.next_f64() - 0.5).collect();
            let fast = gemv(&a, &x).unwrap();
            let naive: Vec<f64> = a.iter_rows().map(|row| vector::dot(row, &x)).collect();
            assert_eq!(fast, naive, "gemv diverged at {m}x{k}");
        }
        assert!(gemv(&Matrix::zeros(2, 3), &[1.0]).is_err());
    }

    #[test]
    fn fused_margins_matches_scalar_margins_bitwise() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xF05D);
        for &(m, k) in &[(1, 4), (6, 57), (9, 3), (133, 21)] {
            let x = random_matrix(m, k, &mut rng);
            let w: Vec<f64> = (0..k).map(|_| rng.next_f64() - 0.5).collect();
            let labels: Vec<f64> = (0..m)
                .map(|_| if rng.next_f64() < 0.5 { -1.0 } else { 1.0 })
                .collect();
            let bias = rng.next_f64();
            let mut out = Vec::new();
            fused_margins(&x, &labels, &w, bias, &mut out).unwrap();
            // The SGD loop computes dot(w, x): operand order swapped,
            // still bitwise equal (IEEE multiplication commutes).
            let naive: Vec<f64> = (0..m)
                .map(|i| labels[i] * (vector::dot(&w, x.row(i)) + bias))
                .collect();
            assert_eq!(out, naive, "margins diverged at {m}x{k}");
        }
    }

    #[test]
    fn fused_margins_validates_shapes_and_reuses_buffer() {
        let x = Matrix::zeros(3, 2);
        let mut out = vec![9.0; 10];
        assert!(fused_margins(&x, &[1.0; 2], &[0.0; 2], 0.0, &mut out).is_err());
        assert!(fused_margins(&x, &[1.0; 3], &[0.0; 5], 0.0, &mut out).is_err());
        fused_margins(&x, &[1.0; 3], &[0.0; 2], 0.5, &mut out).unwrap();
        assert_eq!(out, vec![0.5; 3]);
    }

    #[test]
    fn scale_accumulate_is_bit_identical_to_scale_then_axpys() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x5CA1E);
        let x = random_matrix(20, 11, &mut rng);
        for (shrink, picked) in [
            (0.97_f64, vec![0usize, 5, 5, 19]),
            (1.0, vec![3, 2]),
            (0.5, vec![]),
            (1.0, vec![]),
        ] {
            let picked: &[usize] = &picked;
            let coeffs: Vec<f64> = picked.iter().map(|_| rng.next_f64() - 0.5).collect();
            let w0: Vec<f64> = (0..11).map(|_| rng.next_f64()).collect();

            let mut fused = w0.clone();
            scale_accumulate(shrink, &x, picked, &coeffs, &mut fused).unwrap();

            let mut reference = w0.clone();
            if shrink != 1.0 {
                vector::scale(shrink, &mut reference);
            }
            for (&r, &c) in picked.iter().zip(&coeffs) {
                vector::axpy(c, x.row(r), &mut reference);
            }
            assert_eq!(fused, reference, "update diverged (shrink {shrink})");
        }
    }

    #[test]
    fn scale_accumulate_validates_shapes() {
        let x = Matrix::zeros(4, 3);
        let mut w = vec![0.0; 3];
        assert!(scale_accumulate(1.0, &x, &[0, 1], &[1.0], &mut w).is_err());
        let mut short = vec![0.0; 2];
        assert!(scale_accumulate(1.0, &x, &[0], &[1.0], &mut short).is_err());
    }

    #[test]
    fn row_panel_gathers_and_recycles() {
        let mut panel = RowPanel::with_capacity(2, 3);
        assert_eq!(panel.rows(), 0);
        panel.push(&[1.0, 2.0, 3.0]);
        panel.push(&[4.0, 5.0, 6.0]);
        assert_eq!(panel.rows(), 2);
        assert_eq!(panel.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(panel.as_slice().len(), 6);
        panel.clear();
        assert_eq!(panel.rows(), 0);
        panel.push(&[7.0, 8.0, 9.0]);
        assert_eq!(panel.row(0), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn pack_rows_linearizes_a_view() {
        let base = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let tail = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let view = MatrixView::with_tail(&base, tail).unwrap();
        let panel = pack_rows(&view);
        assert_eq!(panel.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(panel.rows(), 2);
    }
}
