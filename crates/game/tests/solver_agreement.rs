//! Cross-solver agreement: on a batch of random matrix games, all
//! three `ZeroSumSolver` implementations agree on the game value
//! within tolerance, and each returned strategy's exploitability is
//! below its solver's advertised bound.

use poisongame_linalg::Xoshiro256StarStar;
use poisongame_theory::{
    FictitiousPlay, FictitiousPlayConfig, MatrixGame, MultiplicativeWeights,
    MultiplicativeWeightsConfig, SimplexLp, SolverKind, ZeroSumSolver,
};
use rand::SeedableRng;

const GAMES: usize = 24;

fn random_game(rng: &mut Xoshiro256StarStar) -> MatrixGame {
    let m = 2 + (rng.next_raw() as usize) % 5;
    let n = 2 + (rng.next_raw() as usize) % 5;
    MatrixGame::from_fn(m, n, |_, _| rng.next_f64() * 8.0 - 4.0)
}

/// The roster under test, with iteration budgets generous enough that
/// the iterative solvers converge on every sampled game.
fn roster() -> Vec<Box<dyn ZeroSumSolver>> {
    vec![
        Box::new(SimplexLp),
        Box::new(FictitiousPlay(FictitiousPlayConfig {
            max_iterations: 8_000_000,
            tolerance: 5e-3,
            check_every: 2_000,
        })),
        Box::new(MultiplicativeWeights(MultiplicativeWeightsConfig {
            iterations: 60_000,
            eta: None,
        })),
    ]
}

#[test]
fn all_solvers_agree_on_value_and_meet_their_bounds() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA62EE);
    for case in 0..GAMES {
        let game = random_game(&mut rng);
        let reference = SimplexLp.solve(&game).expect("LP always solves");

        for solver in roster() {
            let sol = solver
                .solve(&game)
                .unwrap_or_else(|e| panic!("case {case}: {} failed: {e}", solver.name()));

            // 1. Exploitability below the solver's advertised bound.
            let expl = game
                .exploitability(&sol.row_strategy, &sol.column_strategy)
                .unwrap();
            let bound = solver.exploitability_bound(&game);
            assert!(
                expl <= bound,
                "case {case}: {} exploitability {expl} above advertised {bound}",
                solver.name()
            );

            // 2. Value agreement with the exact LP. An ε-equilibrium's
            // empirical value sits within ε of the true value, so the
            // advertised bound doubles as the agreement tolerance.
            let tol = bound.max(1e-9) + 1e-9;
            assert!(
                (sol.value - reference.value).abs() <= tol,
                "case {case}: {} value {} vs LP {} (tol {tol})",
                solver.name(),
                sol.value,
                reference.value
            );
        }
    }
}

#[test]
fn solver_kinds_produce_equilibria_end_to_end() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x1D5);
    for _ in 0..8 {
        let game = random_game(&mut rng);
        for kind in SolverKind::ALL {
            // FP's default tolerance is loose enough to converge on
            // small games; MW/LP always return.
            let sol = kind.solve(&game).expect("solver runs");
            let expl = game
                .exploitability(&sol.row_strategy, &sol.column_strategy)
                .unwrap();
            let bound = kind.instantiate(&game).exploitability_bound(&game);
            assert!(expl <= bound, "{kind:?}: {expl} > {bound}");
        }
    }
}
