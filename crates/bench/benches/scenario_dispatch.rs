//! Does the scenario redesign cost anything? The spec path dispatches
//! every cell through boxed `AttackStrategy` / `Filter` / `Classifier`
//! trait objects where the old pipeline called monomorphized concrete
//! types. This bench runs the same small grid both ways: the boxed
//! calls happen once per *cell* while training runs `epochs × n`
//! SGD steps, so the dispatch overhead is noise next to training.

use criterion::{criterion_group, criterion_main, Criterion};
use poisongame_attack::{AttackStrategy, BoundaryAttack, RadiusSpec};
use poisongame_defense::{Filter, FilterStrength, RadiusFilter};
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_ml::svm::LinearSvm;
use poisongame_ml::Classifier;
use poisongame_sim::pipeline::{
    hugging_placement, prepare, run_cell, DataSource, ExperimentConfig, Prepared,
};
use poisongame_sim::scenario::Scenario;
use rand::SeedableRng;
use std::hint::black_box;

const STRENGTHS: [f64; 3] = [0.05, 0.15, 0.30];

fn grid_config() -> ExperimentConfig {
    ExperimentConfig {
        seed: 0xD15B,
        source: DataSource::SyntheticSpambase { rows: 500 },
        epochs: 40,
        ..ExperimentConfig::paper()
    }
}

/// One grid pass through the spec path (boxed trait objects).
fn boxed_grid(prepared: &Prepared, config: &ExperimentConfig) -> f64 {
    let scenario = Scenario::default();
    let mut total = 0.0;
    for (i, &theta) in STRENGTHS.iter().enumerate() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed ^ i as u64);
        let placement = hugging_placement(prepared, theta, 0.01);
        let out = run_cell(
            prepared,
            &scenario,
            placement,
            FilterStrength::RemoveFraction(theta),
            config,
            &mut rng,
        )
        .expect("cell runs");
        total += out.accuracy;
    }
    total
}

/// The same grid with the pre-redesign concrete types, no boxing.
fn monomorphized_grid(prepared: &Prepared, config: &ExperimentConfig) -> f64 {
    let mut total = 0.0;
    for (i, &theta) in STRENGTHS.iter().enumerate() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed ^ i as u64);
        let placement = hugging_placement(prepared, theta, 0.01);
        let attack = BoundaryAttack::new(RadiusSpec::Percentile(placement));
        let (poisoned, _injected) = attack
            .poison(prepared.train(), prepared.n_poison, &mut rng)
            .expect("attack runs");
        let filter = RadiusFilter::new(FilterStrength::RemoveFraction(theta), config.centroid);
        let kept = filter.apply(&poisoned).expect("filter runs");
        let mut svm = LinearSvm::new(config.train_config());
        svm.fit(&kept).expect("svm trains");
        total += svm.accuracy_on(prepared.test());
    }
    total
}

fn bench_dispatch(c: &mut Criterion) {
    let config = grid_config();
    let prepared = prepare(&config).expect("dataset prepares");

    // Identical outputs first: the comparison is only meaningful if
    // both paths compute the same grid.
    assert_eq!(
        boxed_grid(&prepared, &config).to_bits(),
        monomorphized_grid(&prepared, &config).to_bits(),
        "dispatch paths diverged"
    );

    let mut group = c.benchmark_group("scenario_dispatch");
    group.sample_size(10);
    group.bench_function("boxed_run_cell", |b| {
        b.iter(|| black_box(boxed_grid(&prepared, &config)))
    });
    group.bench_function("monomorphized", |b| {
        b.iter(|| black_box(monomorphized_grid(&prepared, &config)))
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
