//! Algorithm 1 of the paper: approximate the defender's mixed-strategy
//! NE with a fixed support size.
//!
//! The algorithm alternates a closed-form step with a numerical one,
//! exactly as in the paper's pseudocode:
//!
//! 1. `findPercentage(Sr)` — given the current support radii, compute
//!    the unique probabilities equalizing the attacker's gain
//!    ([`crate::ne::find_percentage`]).
//! 2. Evaluate the defender's loss
//!    `f(Sr) = N·E(p_min_radius) + Σ_i pdf_i·Γ(p_i)` (the paper uses an
//!    integral; with finite support it is this sum).
//! 3. Move the support by (finite-difference) gradient descent on `f`
//!    and repeat until the improvement falls below the threshold `ε`.
//!
//! The support is kept inside the *profitable zone* (`E(p) > 0`): the
//! paper's proof shows no rational defender mixes mass where the
//! attacker would never place.

use crate::error::CoreError;
use crate::game_model::PoisonGame;
use crate::ne::find_percentage;
use crate::strategy::DefenderMixedStrategy;
use poisongame_linalg::numeric::{projected_gradient_descent, DescentConfig};
use poisongame_theory::SolverKind;
use serde::{Deserialize, Serialize};

/// Configuration for [`Algorithm1`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Algorithm1Config {
    /// Number of filter strengths in the mixed strategy (the paper's
    /// input `n`; Table 1 reports `n = 2` and `n = 3`).
    pub n_radii: usize,
    /// Convergence threshold `ε` on the loss improvement.
    pub tolerance: f64,
    /// Iteration cap for the gradient descent.
    pub max_iterations: usize,
    /// Initial gradient step size (percentile units).
    pub step: f64,
    /// Feasible percentile range for support points.
    pub bounds: (f64, f64),
    /// Minimum separation between adjacent support points.
    pub min_separation: f64,
    /// Matrix-game solver used wherever the algorithm consults the
    /// discretized game (currently the warm start; see
    /// [`Self::warm_start`]).
    #[serde(default)]
    pub solver: SolverKind,
    /// Seed the descent from the discretized game's defender NE
    /// (solved with [`Self::solver`]) instead of an evenly spaced
    /// support — kept only when the objective scores it no worse than
    /// the even spread. Off by default: the even start is the paper's
    /// `chooseInitialRadius(n)`.
    #[serde(default)]
    pub warm_start: bool,
}

impl Default for Algorithm1Config {
    fn default() -> Self {
        Self {
            n_radii: 3,
            tolerance: 1e-8,
            max_iterations: 400,
            step: 0.02,
            bounds: (0.005, 0.5),
            min_separation: 2e-3,
            solver: SolverKind::Auto,
            warm_start: false,
        }
    }
}

/// Output of [`Algorithm1::solve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Algorithm1Result {
    /// The approximate-NE defender strategy `M_d`.
    pub strategy: DefenderMixedStrategy,
    /// The defender's loss `U_d(M_d, ·)` against a best-responding
    /// attacker — the algorithm's second output.
    pub defender_loss: f64,
    /// The attacker's per-point equilibrium gain.
    pub attacker_gain: f64,
    /// Gradient-descent iterations executed.
    pub iterations: usize,
    /// Whether the `ε` threshold was met before the cap.
    pub converged: bool,
    /// Loss after each accepted step (for convergence plots).
    pub trace: Vec<f64>,
}

/// The solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Algorithm1 {
    config: Algorithm1Config,
}

impl Algorithm1 {
    /// New solver with the given configuration.
    pub fn new(config: Algorithm1Config) -> Self {
        Self { config }
    }

    /// New solver with the default configuration and the given support
    /// size.
    pub fn with_support_size(n_radii: usize) -> Self {
        Self::new(Algorithm1Config {
            n_radii,
            ..Algorithm1Config::default()
        })
    }

    /// The configuration.
    pub fn config(&self) -> &Algorithm1Config {
        &self.config
    }

    /// Evenly spaced initial support inside the feasible zone — the
    /// paper's `chooseInitialRadius(n)`.
    fn initial_support(&self, lo: f64, hi: f64) -> Vec<f64> {
        let n = self.config.n_radii;
        (0..n)
            .map(|k| lo + (hi - lo) * (k as f64 + 0.5) / n as f64)
            .collect()
    }

    /// Initial support seeded from the discretized game's defender NE,
    /// solved with the configured [`SolverKind`]. Falls back to `None`
    /// (caller uses the even start) if the discretized solve fails or
    /// cannot fill the requested support size.
    fn warm_start_support(&self, game: &PoisonGame, lo: f64, hi: f64) -> Option<Vec<f64>> {
        let n = self.config.n_radii;
        let sep = self.config.min_separation;
        let resolution = (n * 8).clamp(24, 96);
        // Coarse budget: seeding only needs a rough equilibrium, and a
        // bounded solve keeps a hard game from stalling every cell.
        let sol =
            crate::bridge::solve_discretized_coarse(game, resolution, self.config.solver).ok()?;
        // Keep the n heaviest support points of the grid NE.
        let mut pairs = sol.defender_strategy.support_pairs();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite mass"));
        pairs.truncate(n);
        let mut pts: Vec<f64> = pairs.iter().map(|&(p, _)| p.clamp(lo, hi)).collect();
        pts.sort_by(|a, b| a.partial_cmp(b).expect("finite percentiles"));
        pts.dedup_by(|a, b| (*a - *b).abs() < sep);
        // Pad from the even grid if the grid NE mixes fewer points.
        for candidate in self.initial_support(lo, hi) {
            if pts.len() >= n {
                break;
            }
            if pts.iter().all(|&p| (p - candidate).abs() >= sep) {
                pts.push(candidate);
            }
        }
        pts.sort_by(|a, b| a.partial_cmp(b).expect("finite percentiles"));
        (pts.len() == n).then_some(pts)
    }

    /// Run the algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParameter`] for a zero support size or
    /// an empty feasible zone, and propagates descent failures.
    pub fn solve(&self, game: &PoisonGame) -> Result<Algorithm1Result, CoreError> {
        if self.config.n_radii == 0 {
            return Err(CoreError::BadParameter {
                what: "n_radii",
                value: 0.0,
            });
        }
        let (lo, mut hi) = self.config.bounds;
        if !(0.0 <= lo && lo < hi && hi < 1.0) {
            return Err(CoreError::BadParameter {
                what: "bounds",
                value: hi,
            });
        }
        // Clip the feasible zone to where poisoning is profitable.
        if let Some(threshold) = game.effect().profit_threshold() {
            hi = hi.min(threshold - self.config.min_separation);
        }
        let needed = self.config.min_separation * (self.config.n_radii as f64 + 1.0);
        if hi <= lo + needed {
            // The attacker never profits (or the zone is too thin for
            // the requested support): the defender's NE is "no filter".
            let strategy = DefenderMixedStrategy::pure(0.0)?;
            let attacker_gain = strategy.attacker_gain(game.effect());
            let defender_loss = strategy.defender_loss(game.effect(), game.cost(), game.n_points());
            return Ok(Algorithm1Result {
                strategy,
                defender_loss,
                attacker_gain,
                iterations: 0,
                converged: true,
                trace: vec![defender_loss],
            });
        }

        let sep = self.config.min_separation;
        let effect = game.effect().clone();
        let cost = game.cost().clone();
        let n_points = game.n_points() as f64;

        // Objective: f(Sr) = N·E(p_deepest) + Σ q_i·Γ(p_i) with q from
        // findPercentage. Infeasible supports (outside the profitable
        // zone after projection) are penalized.
        let objective = move |sr: &[f64]| -> f64 {
            match find_percentage(sr, &effect) {
                Ok(q) => {
                    let deepest = *sr.last().expect("non-empty support");
                    let damage = n_points * effect.eval(deepest).max(0.0);
                    let removal_cost: f64 =
                        sr.iter().zip(&q).map(|(&p, &qi)| qi * cost.eval(p)).sum();
                    damage + removal_cost
                }
                Err(_) => f64::INFINITY,
            }
        };

        // Projection: clamp into [lo, hi], sort ascending, and enforce
        // the minimum separation with a forward/backward sweep.
        let project = move |sr: &[f64]| -> Vec<f64> {
            let mut p: Vec<f64> = sr.iter().map(|v| v.clamp(lo, hi)).collect();
            p.sort_by(|a, b| a.partial_cmp(b).expect("finite percentiles"));
            for i in 1..p.len() {
                if p[i] < p[i - 1] + sep {
                    p[i] = p[i - 1] + sep;
                }
            }
            // Backward sweep keeps the deepest point inside `hi`.
            let last = p.len() - 1;
            if p[last] > hi {
                p[last] = hi;
            }
            for i in (0..last).rev() {
                if p[i] > p[i + 1] - sep {
                    p[i] = p[i + 1] - sep;
                }
            }
            p
        };

        let x0 = if self.config.warm_start {
            match self.warm_start_support(game, lo, hi) {
                // Keep whichever seed the objective already prefers:
                // on noisy estimated curves the grid NE can collapse
                // toward a poor basin, and the even spread is the
                // better start.
                Some(warm) => {
                    let even = self.initial_support(lo, hi);
                    if objective(&warm) <= objective(&even) {
                        warm
                    } else {
                        even
                    }
                }
                None => self.initial_support(lo, hi),
            }
        } else {
            self.initial_support(lo, hi)
        };
        let descent = projected_gradient_descent(
            objective,
            project,
            &x0,
            &DescentConfig {
                step: self.config.step,
                tolerance: self.config.tolerance,
                max_iterations: self.config.max_iterations,
                fd_step: 1e-6,
                ..DescentConfig::default()
            },
        )?;

        let support = descent.x;
        let q = find_percentage(&support, game.effect())?;
        let strategy = DefenderMixedStrategy::new(support, q)?;
        let attacker_gain = strategy.attacker_gain(game.effect());
        let defender_loss = strategy.defender_loss(game.effect(), game.cost(), game.n_points());
        Ok(Algorithm1Result {
            strategy,
            defender_loss,
            attacker_gain,
            iterations: descent.iterations,
            converged: descent.converged,
            trace: descent.trace,
        })
    }
}

impl Default for Algorithm1 {
    fn default() -> Self {
        Self::new(Algorithm1Config::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{CostCurve, EffectCurve};
    use crate::ne::diagnose;

    /// Curves with the paper's qualitative shape: steep damage near the
    /// boundary, cost growing with filter strength.
    fn paper_like_game(n_points: usize) -> PoisonGame {
        let effect = EffectCurve::from_samples(&[
            (0.0, 2.0e-4),
            (0.05, 1.4e-4),
            (0.10, 9.0e-5),
            (0.15, 6.0e-5),
            (0.20, 4.0e-5),
            (0.30, 1.5e-5),
            (0.40, 2.0e-6),
            (0.45, -1.0e-6),
        ])
        .unwrap();
        let cost = CostCurve::from_samples(&[
            (0.0, 0.0),
            (0.05, 0.004),
            (0.10, 0.009),
            (0.20, 0.022),
            (0.30, 0.040),
            (0.40, 0.065),
        ])
        .unwrap();
        PoisonGame::new(effect, cost, n_points).unwrap()
    }

    #[test]
    fn output_satisfies_ne_conditions() {
        let game = paper_like_game(644);
        let result = Algorithm1::with_support_size(3).solve(&game).unwrap();
        let d = diagnose(&result.strategy, game.effect(), 1e-6);
        assert!(d.satisfies_ne_conditions(), "{d:?}");
        assert_eq!(result.strategy.support().len(), 3);
    }

    #[test]
    fn loss_never_increases_along_trace() {
        let game = paper_like_game(644);
        let result = Algorithm1::with_support_size(2).solve(&game).unwrap();
        assert!(
            result.trace.windows(2).all(|w| w[1] <= w[0] + 1e-15),
            "trace not monotone: {:?}",
            result.trace
        );
    }

    #[test]
    fn mixed_beats_every_pure_strategy() {
        // The headline claim of Table 1: the mixed defense's loss is
        // lower than the loss of every pure filter strength against its
        // own best-responding attacker.
        let game = paper_like_game(644);
        let result = Algorithm1::with_support_size(3).solve(&game).unwrap();
        for k in 0..=50 {
            let theta = 0.01 * k as f64;
            if theta >= 0.5 {
                break;
            }
            let pure = DefenderMixedStrategy::pure(theta).unwrap();
            let pure_loss = pure.defender_loss(game.effect(), game.cost(), game.n_points());
            assert!(
                result.defender_loss <= pure_loss + 1e-9,
                "pure θ={theta} loss {pure_loss} beats mixed {}",
                result.defender_loss
            );
        }
    }

    #[test]
    fn more_support_points_never_hurt() {
        let game = paper_like_game(644);
        let l1 = Algorithm1::with_support_size(1)
            .solve(&game)
            .unwrap()
            .defender_loss;
        let l2 = Algorithm1::with_support_size(2)
            .solve(&game)
            .unwrap()
            .defender_loss;
        let l3 = Algorithm1::with_support_size(3)
            .solve(&game)
            .unwrap()
            .defender_loss;
        // Small numerical slack: a larger support can always imitate a
        // smaller one.
        assert!(l2 <= l1 + 1e-6, "l1 {l1} l2 {l2}");
        assert!(l3 <= l2 + 1e-4, "l2 {l2} l3 {l3}");
    }

    #[test]
    fn attacker_gain_matches_deepest_effect() {
        let game = paper_like_game(300);
        let result = Algorithm1::with_support_size(2).solve(&game).unwrap();
        let deepest = *result.strategy.support().last().unwrap();
        assert!(
            (result.attacker_gain - game.effect().eval(deepest)).abs() < 1e-9,
            "gain {} vs E(deepest) {}",
            result.attacker_gain,
            game.effect().eval(deepest)
        );
    }

    #[test]
    fn unprofitable_game_returns_no_filter() {
        let effect = EffectCurve::from_samples(&[(0.0, -0.1), (0.5, -0.5)]).unwrap();
        let cost = CostCurve::from_samples(&[(0.0, 0.0), (0.5, 0.1)]).unwrap();
        let game = PoisonGame::new(effect, cost, 100).unwrap();
        let result = Algorithm1::with_support_size(3).solve(&game).unwrap();
        assert_eq!(result.strategy.support(), &[0.0]);
        assert_eq!(result.defender_loss, 0.0);
        assert!(result.converged);
    }

    #[test]
    fn zero_support_size_rejected() {
        let game = paper_like_game(10);
        assert!(matches!(
            Algorithm1::with_support_size(0).solve(&game).unwrap_err(),
            CoreError::BadParameter {
                what: "n_radii",
                ..
            }
        ));
    }

    #[test]
    fn bad_bounds_rejected() {
        let game = paper_like_game(10);
        let solver = Algorithm1::new(Algorithm1Config {
            bounds: (0.4, 0.2),
            ..Algorithm1Config::default()
        });
        assert!(solver.solve(&game).is_err());
    }

    #[test]
    fn support_stays_in_profitable_zone() {
        let game = paper_like_game(644);
        let result = Algorithm1::with_support_size(4).solve(&game).unwrap();
        for &p in result.strategy.support() {
            assert!(
                game.effect().eval(p) > 0.0,
                "support point {p} has E={}",
                game.effect().eval(p)
            );
        }
    }

    #[test]
    fn warm_start_matches_even_start_quality() {
        let game = paper_like_game(644);
        let even = Algorithm1::with_support_size(3).solve(&game).unwrap();
        for solver in [SolverKind::Auto, SolverKind::MultiplicativeWeights] {
            let warm = Algorithm1::new(Algorithm1Config {
                n_radii: 3,
                warm_start: true,
                solver,
                ..Algorithm1Config::default()
            })
            .solve(&game)
            .unwrap();
            assert_eq!(warm.strategy.support().len(), 3);
            let d = diagnose(&warm.strategy, game.effect(), 1e-6);
            assert!(d.satisfies_ne_conditions(), "{solver:?}: {d:?}");
            // Seeding from the grid NE must not land in a worse basin.
            assert!(
                warm.defender_loss <= even.defender_loss + 1e-3,
                "{solver:?}: warm {} vs even {}",
                warm.defender_loss,
                even.defender_loss
            );
        }
    }

    #[test]
    fn deterministic_given_config() {
        let game = paper_like_game(644);
        let a = Algorithm1::with_support_size(2).solve(&game).unwrap();
        let b = Algorithm1::with_support_size(2).solve(&game).unwrap();
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.defender_loss, b.defender_loss);
    }
}
