//! Exact zero-sum solving via a hand-written primal simplex.
//!
//! The minimax theorem reduces a zero-sum game to a pair of dual linear
//! programs. After shifting payoffs so the value is strictly positive,
//! the column player's program becomes
//!
//! ```text
//!   maximize  1ᵀu   subject to  A u ≤ 1,  u ≥ 0        (u = y / v)
//! ```
//!
//! whose slack basis is immediately feasible — no two-phase method is
//! needed. The row player's equilibrium strategy is recovered from the
//! duals of the constraint rows. Bland's rule guards against cycling.

use crate::error::GameError;
use crate::matrix_game::MatrixGame;
use crate::strategy::{MixedStrategy, Solution};

/// Numerical tolerance for simplex pivoting decisions.
const TOL: f64 = 1e-9;

/// Result of the raw simplex routine.
#[derive(Debug, Clone, PartialEq)]
struct SimplexResult {
    /// Primal solution.
    primal: Vec<f64>,
    /// Objective value.
    objective: f64,
    /// Dual values of the `≤` constraints.
    duals: Vec<f64>,
    /// Pivots performed.
    pivots: usize,
}

/// Maximize `cᵀz` subject to `M z ≤ b`, `z ≥ 0` with `b ≥ 0`
/// (slack basis is feasible).
///
/// `m_rows` is given row-by-row. Returns primal, objective and duals.
fn simplex_maximize(c: &[f64], m_rows: &[Vec<f64>], b: &[f64]) -> Result<SimplexResult, GameError> {
    let m = m_rows.len();
    let n = c.len();
    debug_assert!(b.iter().all(|&v| v >= 0.0), "simplex needs b >= 0");

    // Tableau: m constraint rows + 1 objective row.
    // Columns: n structural + m slacks + 1 rhs.
    let width = n + m + 1;
    let mut t = vec![vec![0.0; width]; m + 1];
    for (i, row) in m_rows.iter().enumerate() {
        assert_eq!(row.len(), n, "constraint row width mismatch");
        t[i][..n].copy_from_slice(row);
        t[i][n + i] = 1.0;
        t[i][width - 1] = b[i];
    }
    // Objective row holds reduced costs (c_j - z_j); starts at c.
    t[m][..n].copy_from_slice(c);

    let mut basis: Vec<usize> = (n..n + m).collect();
    let max_pivots = 50 * (n + m).max(16);
    let mut pivots = 0;

    loop {
        // Bland: entering variable = smallest index with positive
        // reduced cost.
        let entering = (0..n + m).find(|&j| t[m][j] > TOL);
        let Some(e) = entering else { break };

        // Ratio test; Bland tie-break on smallest basis variable.
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if t[i][e] > TOL {
                let ratio = t[i][width - 1] / t[i][e];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - TOL || ((ratio - lr).abs() <= TOL && basis[i] < basis[li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = leave else {
            return Err(GameError::InvalidPayoffs {
                message: "LP unbounded — payoff shift failed".into(),
            });
        };

        // Pivot on (r, e).
        let pivot = t[r][e];
        for v in t[r].iter_mut() {
            *v /= pivot;
        }
        for i in 0..=m {
            if i == r {
                continue;
            }
            let factor = t[i][e];
            if factor == 0.0 {
                continue;
            }
            // Row operation: row_i -= factor * row_r.
            let (head, tail) = t.split_at_mut(r.max(i));
            let (row_i, row_r) = if i < r {
                (&mut head[i], &tail[0])
            } else {
                (&mut tail[0], &head[r])
            };
            for (vi, vr) in row_i.iter_mut().zip(row_r.iter()) {
                *vi -= factor * vr;
            }
        }
        basis[r] = e;
        pivots += 1;
        if pivots > max_pivots {
            return Err(GameError::SolverStalled { pivots });
        }
    }

    // Extract primal.
    let mut primal = vec![0.0; n];
    for (i, &bv) in basis.iter().enumerate() {
        if bv < n {
            primal[bv] = t[i][width - 1];
        }
    }
    let objective: f64 = c.iter().zip(&primal).map(|(ci, zi)| ci * zi).sum();
    // Duals: y_i = -reduced cost of slack i (c_slack = 0).
    let duals: Vec<f64> = (0..m).map(|i| -t[m][n + i]).collect();
    Ok(SimplexResult {
        primal,
        objective,
        duals,
        pivots,
    })
}

/// Solve a zero-sum game exactly by linear programming.
///
/// Returns the equilibrium strategies of both players and the game
/// value. This is the reference solver the iterative methods are
/// validated against.
///
/// # Errors
///
/// Returns [`GameError::SolverStalled`] on numerically degenerate
/// inputs (should not occur for finite payoff matrices).
///
/// # Example
///
/// ```
/// use poisongame_theory::{solve_lp, MatrixGame};
///
/// let pennies = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
/// let sol = solve_lp(&pennies).unwrap();
/// assert!(sol.value.abs() < 1e-9);
/// assert!((sol.row_strategy.prob(0) - 0.5).abs() < 1e-9);
/// ```
pub fn solve_lp(game: &MatrixGame) -> Result<Solution, GameError> {
    // Shift so every payoff ≥ 1: the shifted value is then ≥ 1 > 0.
    let shift = 1.0 - game.min_payoff();
    let shifted = game.shifted(shift);
    let (m, n) = shifted.shape();

    // Column player's LP in u-space: max Σu s.t. A u ≤ 1, u ≥ 0.
    let c = vec![1.0; n];
    let rows: Vec<Vec<f64>> = (0..m).map(|i| shifted.payoffs().row(i).to_vec()).collect();
    let b = vec![1.0; m];
    let result = simplex_maximize(&c, &rows, &b)?;

    let sum_u = result.objective;
    if sum_u <= 0.0 {
        return Err(GameError::InvalidPayoffs {
            message: format!("degenerate LP objective {sum_u}"),
        });
    }
    let shifted_value = 1.0 / sum_u;

    // Column strategy y = u * v'.
    let y: Vec<f64> = result
        .primal
        .iter()
        .map(|&u| (u * shifted_value).max(0.0))
        .collect();
    // Row strategy from duals: x = w * v' where w are the constraint
    // duals (strong duality gives Σw = Σu).
    let x: Vec<f64> = result
        .duals
        .iter()
        .map(|&w| (w * shifted_value).max(0.0))
        .collect();

    let row_strategy = MixedStrategy::from_weights(x)?;
    let column_strategy = MixedStrategy::from_weights(y)?;
    let value = shifted_value - shift;

    Ok(Solution {
        row_strategy,
        column_strategy,
        value,
        iterations: result.pivots.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equilibrium(game: &MatrixGame, sol: &Solution, tol: f64) {
        let expl = game
            .exploitability(&sol.row_strategy, &sol.column_strategy)
            .unwrap();
        assert!(expl.abs() < tol, "exploitability {expl}");
        let ev = game
            .expected_payoff(&sol.row_strategy, &sol.column_strategy)
            .unwrap();
        assert!(
            (ev - sol.value).abs() < tol,
            "ev {ev} vs value {}",
            sol.value
        );
    }

    #[test]
    fn matching_pennies_is_uniform() {
        let g = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let sol = solve_lp(&g).unwrap();
        assert!(sol.value.abs() < 1e-9);
        assert!((sol.row_strategy.prob(0) - 0.5).abs() < 1e-9);
        assert!((sol.column_strategy.prob(0) - 0.5).abs() < 1e-9);
        assert_equilibrium(&g, &sol, 1e-9);
    }

    #[test]
    fn rock_paper_scissors_is_uniform() {
        let g = MatrixGame::from_rows(&[
            vec![0.0, -1.0, 1.0],
            vec![1.0, 0.0, -1.0],
            vec![-1.0, 1.0, 0.0],
        ])
        .unwrap();
        let sol = solve_lp(&g).unwrap();
        assert!(sol.value.abs() < 1e-9);
        for p in sol.row_strategy.probabilities() {
            assert!((p - 1.0 / 3.0).abs() < 1e-9);
        }
        assert_equilibrium(&g, &sol, 1e-9);
    }

    #[test]
    fn saddle_point_game_solves_pure() {
        let g = MatrixGame::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        let sol = solve_lp(&g).unwrap();
        assert!((sol.value - 2.0).abs() < 1e-9);
        assert!(sol.row_strategy.is_pure());
        assert!(sol.column_strategy.is_pure());
        assert_equilibrium(&g, &sol, 1e-9);
    }

    #[test]
    fn known_2x2_mixed_value() {
        // Value = (ad - bc) / (a + d - b - c) for no-saddle 2x2 games.
        let (a, b, c, d) = (3.0, -1.0, -2.0, 1.0);
        let g = MatrixGame::from_rows(&[vec![a, b], vec![c, d]]).unwrap();
        let sol = solve_lp(&g).unwrap();
        let expected = (a * d - b * c) / (a + d - b - c);
        assert!((sol.value - expected).abs() < 1e-9, "value {}", sol.value);
        assert_equilibrium(&g, &sol, 1e-9);
    }

    #[test]
    fn rectangular_game() {
        let g = MatrixGame::from_rows(&[vec![2.0, -1.0, 4.0, 0.5], vec![-3.0, 5.0, -2.0, 1.0]])
            .unwrap();
        let sol = solve_lp(&g).unwrap();
        assert_equilibrium(&g, &sol, 1e-9);
    }

    #[test]
    fn negative_payoff_game() {
        let g = MatrixGame::from_rows(&[vec![-5.0, -3.0], vec![-2.0, -7.0]]).unwrap();
        let sol = solve_lp(&g).unwrap();
        assert!(sol.value < 0.0);
        assert_equilibrium(&g, &sol, 1e-9);
    }

    #[test]
    fn value_between_pure_bounds() {
        let g = MatrixGame::from_rows(&[
            vec![0.0, 2.0, -1.0],
            vec![-2.0, 0.0, 3.0],
            vec![1.0, -3.0, 0.0],
        ])
        .unwrap();
        let sol = solve_lp(&g).unwrap();
        assert!(sol.value >= g.pure_maximin() - 1e-9);
        assert!(sol.value <= g.pure_minimax() + 1e-9);
        assert_equilibrium(&g, &sol, 1e-9);
    }

    #[test]
    fn larger_random_game_has_zero_exploitability() {
        use poisongame_linalg::Xoshiro256StarStar;
        use rand::SeedableRng;
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        let g = MatrixGame::from_fn(9, 7, |_, _| rng.next_f64() * 10.0 - 5.0);
        let sol = solve_lp(&g).unwrap();
        assert_equilibrium(&g, &sol, 1e-8);
    }

    #[test]
    fn dominated_strategies_get_zero_probability() {
        // Row 0 strictly dominates row 1.
        let g = MatrixGame::from_rows(&[vec![3.0, 2.0], vec![1.0, 0.0], vec![0.0, 4.0]]).unwrap();
        let sol = solve_lp(&g).unwrap();
        assert!(sol.row_strategy.prob(1) < 1e-9);
        assert_equilibrium(&g, &sol, 1e-9);
    }
}
