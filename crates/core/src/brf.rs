//! Best-response-function analysis — the programmatic form of the
//! paper's Proposition 1 (non-existence of a pure-strategy NE).
//!
//! The paper's argument: the attacker's best response to a pure filter
//! `θ` is to hug it from inside, while the defender's best response to
//! any profitable placement is to tighten just past it — the two
//! best-response functions never intersect (except in the degenerate
//! `T_a = T_d` case). Here we trace both functions on a grid and verify
//! that no pure profile is simultaneously a best response for both.

use crate::game_model::{percentile_grid, PoisonGame};
use serde::{Deserialize, Serialize};

/// Result of tracing both best-response functions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrfAnalysis {
    /// The percentile form of `T_a` (deepest profitable placement).
    pub profit_threshold: Option<f64>,
    /// `(θ, attacker's best placement)` per grid strength; `None`
    /// placement = abstain (no profitable spot).
    pub attacker_best: Vec<(f64, Option<f64>)>,
    /// `(placement, defender's best θ)` per grid placement.
    pub defender_best: Vec<(f64, f64)>,
    /// A grid profile `(placement, θ)` that is a mutual best response,
    /// if any. A placement of `1.0` encodes the attacker abstaining
    /// (possible only in the degenerate never-profitable family the
    /// paper sets aside).
    pub pure_fixed_point: Option<(f64, f64)>,
}

impl BrfAnalysis {
    /// Proposition 1 holds on this instance (no pure equilibrium on
    /// the grid).
    pub fn pure_ne_absent(&self) -> bool {
        self.pure_fixed_point.is_none()
    }
}

/// Trace both best-response functions on a grid of `resolution + 1`
/// strengths and check for a mutual fixed point.
pub fn analyze(game: &PoisonGame, resolution: usize) -> BrfAnalysis {
    let grid = percentile_grid(resolution);

    let attacker_best: Vec<(f64, Option<f64>)> = grid
        .iter()
        .map(|&theta| {
            let br = game.attacker_best_response(theta);
            (theta, br.first().map(|&(p, _)| p))
        })
        .collect();

    let defender_best: Vec<(f64, f64)> = grid
        .iter()
        .map(|&p| {
            let attack = vec![(p, game.n_points())];
            (p, game.defender_best_response(&attack, resolution))
        })
        .collect();

    // A pure profile (attacker action, strength θ*) is a fixed point
    // iff neither side can improve unilaterally. The attacker's pure
    // actions are the grid placements plus abstain (`None`); abstain is
    // what makes the degenerate always-unprofitable family have its
    // pure equilibrium. Check all pairs through payoff comparisons
    // (robust to best-response ties).
    let attack_of = |candidate: Option<f64>| -> Vec<(f64, usize)> {
        candidate
            .map(|p| (p, game.n_points()))
            .into_iter()
            .collect()
    };
    let candidates: Vec<Option<f64>> = grid
        .iter()
        .copied()
        .map(Some)
        .chain(std::iter::once(None))
        .collect();
    let mut pure_fixed_point = None;
    'outer: for &theta in &grid {
        for &candidate in &candidates {
            let attack = attack_of(candidate);
            let u = game.payoff(&attack, theta);
            // Attacker deviation: any other placement or abstain.
            let attacker_can_improve = candidates
                .iter()
                .map(|&c2| game.payoff(&attack_of(c2), theta))
                .any(|u2| u2 > u + 1e-12);
            if attacker_can_improve {
                continue;
            }
            // Defender deviation: any other strength.
            let defender_can_improve = grid.iter().any(|&t2| game.payoff(&attack, t2) < u - 1e-12);
            if defender_can_improve {
                continue;
            }
            pure_fixed_point = Some((candidate.unwrap_or(1.0), theta));
            break 'outer;
        }
    }

    BrfAnalysis {
        profit_threshold: game.profit_threshold(),
        attacker_best,
        defender_best,
        pure_fixed_point,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{CostCurve, EffectCurve};

    fn paper_like_game() -> PoisonGame {
        let effect = EffectCurve::from_samples(&[
            (0.0, 2.0e-4),
            (0.10, 9.0e-5),
            (0.20, 4.0e-5),
            (0.40, 2.0e-6),
            (0.45, -1.0e-6),
        ])
        .unwrap();
        let cost =
            CostCurve::from_samples(&[(0.0, 0.0), (0.10, 0.009), (0.20, 0.022), (0.40, 0.065)])
                .unwrap();
        PoisonGame::new(effect, cost, 644).unwrap()
    }

    #[test]
    fn proposition_1_no_pure_equilibrium() {
        let analysis = analyze(&paper_like_game(), 60);
        assert!(
            analysis.pure_ne_absent(),
            "unexpected pure NE at {:?}",
            analysis.pure_fixed_point
        );
    }

    #[test]
    fn attacker_hugs_profitable_filters() {
        let analysis = analyze(&paper_like_game(), 40);
        for &(theta, placement) in &analysis.attacker_best {
            match placement {
                Some(p) => assert!((p - theta).abs() < 1e-12, "BR at {p} for θ={theta}"),
                None => {
                    // Abstains only past the profit threshold.
                    let t = analysis.profit_threshold.unwrap();
                    assert!(theta >= t - 1e-9, "abstained at θ={theta} < T_a={t}");
                }
            }
        }
    }

    #[test]
    fn defender_chases_profitable_placements() {
        let game = paper_like_game();
        let analysis = analyze(&game, 40);
        for &(p, theta) in &analysis.defender_best {
            if game.effect().eval(p) > 0.0 && game.cost().eval(p) < 0.02 {
                // Cheap-to-chase profitable placements get removed:
                // best response is strictly deeper than the placement.
                assert!(
                    theta > p,
                    "defender does not chase placement {p} (θ={theta})"
                );
            }
        }
    }

    #[test]
    fn degenerate_game_with_pure_ne_is_detected() {
        // If poisoning never pays, (abstain-equivalent deep placement,
        // no filter) is a pure equilibrium — the `T_a = T_d` degenerate
        // family the paper sets aside.
        let effect = EffectCurve::from_samples(&[(0.0, -0.1), (0.5, -0.2)]).unwrap();
        let cost = CostCurve::from_samples(&[(0.0, 0.0), (0.5, 0.1)]).unwrap();
        let game = PoisonGame::new(effect, cost, 100).unwrap();
        let analysis = analyze(&game, 20);
        assert!(analysis.pure_fixed_point.is_some());
        // And it involves no filtering.
        let (_, theta) = analysis.pure_fixed_point.unwrap();
        assert_eq!(theta, 0.0);
    }
}
