//! Piecewise-linear empirical curves and isotonic regression.
//!
//! The poisoning game consumes two curves estimated from experiments:
//! the poison-point effect `E(p)` and the genuine-removal cost `Γ(p)`.
//! Both arrive as noisy samples at a handful of filter strengths; this
//! module turns them into smooth, monotone, integrable functions.

use crate::error::LinalgError;
use serde::{Deserialize, Serialize};

/// A piecewise-linear function defined by sorted knots.
///
/// Evaluation clamps outside the knot range (constant extrapolation),
/// which is the conservative choice for empirically-estimated payoff
/// curves.
///
/// # Example
///
/// ```
/// use poisongame_linalg::PiecewiseLinear;
///
/// let f = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 2.0)]).unwrap();
/// assert_eq!(f.eval(0.5), 1.0);
/// assert_eq!(f.eval(-1.0), 0.0); // clamped
/// assert_eq!(f.eval(2.0), 2.0);  // clamped
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PiecewiseLinear {
    /// Build from `(x, y)` knots. Knots are sorted by `x`; exact
    /// duplicates in `x` are averaged in `y`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::EmptyInput`] if no knots are given and
    /// [`LinalgError::NotFinite`] if any coordinate is NaN/∞.
    pub fn new(knots: Vec<(f64, f64)>) -> Result<Self, LinalgError> {
        if knots.is_empty() {
            return Err(LinalgError::EmptyInput);
        }
        for &(x, y) in &knots {
            if !x.is_finite() {
                return Err(LinalgError::NotFinite { what: "x" });
            }
            if !y.is_finite() {
                return Err(LinalgError::NotFinite { what: "y" });
            }
        }
        let mut sorted = knots;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite by check above"));
        // Collapse duplicate x by averaging y.
        let mut xs: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut ys: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut i = 0;
        while i < sorted.len() {
            let x = sorted[i].0;
            let mut sum = 0.0;
            let mut count = 0usize;
            while i < sorted.len() && sorted[i].0 == x {
                sum += sorted[i].1;
                count += 1;
                i += 1;
            }
            xs.push(x);
            ys.push(sum / count as f64);
        }
        Ok(Self { xs, ys })
    }

    /// Number of knots after dedup.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the curve has a single knot (it is then constant).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees at least one knot
    }

    /// The knot x-coordinates (sorted ascending).
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The knot y-coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Smallest knot x.
    pub fn x_min(&self) -> f64 {
        self.xs[0]
    }

    /// Largest knot x.
    pub fn x_max(&self) -> f64 {
        *self.xs.last().expect("non-empty by construction")
    }

    /// Evaluate at `x` with constant extrapolation outside the knots.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the bracketing interval.
        let idx = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => return self.ys[i],
            Err(i) => i, // xs[i-1] < x < xs[i]
        };
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Exact integral over `[a, b]` (the function is piecewise linear,
    /// so trapezoids over the knots are exact). `a > b` negates.
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        if a == b {
            return 0.0;
        }
        if a > b {
            return -self.integral(b, a);
        }
        // Collect breakpoints inside (a, b).
        let mut points = vec![a];
        for &x in &self.xs {
            if x > a && x < b {
                points.push(x);
            }
        }
        points.push(b);
        let mut total = 0.0;
        for w in points.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            total += 0.5 * (self.eval(lo) + self.eval(hi)) * (hi - lo);
        }
        total
    }

    /// Derivative just after `x` (right derivative); zero outside the
    /// knot range.
    pub fn right_derivative(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if n == 1 || x >= self.xs[n - 1] || x < self.xs[0] {
            return 0.0;
        }
        let idx = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let next = (idx + 1).min(n - 1);
        if next == idx {
            return 0.0;
        }
        (self.ys[next] - self.ys[idx]) / (self.xs[next] - self.xs[idx])
    }

    /// Map `y` values through `f`, keeping knot positions.
    pub fn map_values<F: Fn(f64) -> f64>(&self, f: F) -> PiecewiseLinear {
        PiecewiseLinear {
            xs: self.xs.clone(),
            ys: self.ys.iter().map(|&y| f(y)).collect(),
        }
    }

    /// True if knot values are non-decreasing in x.
    pub fn is_non_decreasing(&self) -> bool {
        self.ys.windows(2).all(|w| w[0] <= w[1] + 1e-12)
    }

    /// True if knot values are non-increasing in x.
    pub fn is_non_increasing(&self) -> bool {
        self.ys.windows(2).all(|w| w[0] + 1e-12 >= w[1])
    }

    /// Return a monotone (non-decreasing) fit of this curve obtained by
    /// isotonic regression on the knot values (pool-adjacent-violators).
    pub fn isotonic_increasing(&self) -> PiecewiseLinear {
        PiecewiseLinear {
            xs: self.xs.clone(),
            ys: isotonic_non_decreasing(&self.ys),
        }
    }

    /// Return a monotone (non-increasing) fit of this curve.
    pub fn isotonic_decreasing(&self) -> PiecewiseLinear {
        let negated: Vec<f64> = self.ys.iter().map(|y| -y).collect();
        let fit = isotonic_non_decreasing(&negated);
        PiecewiseLinear {
            xs: self.xs.clone(),
            ys: fit.into_iter().map(|y| -y).collect(),
        }
    }

    /// Smallest `x` in `[lo, hi]` with `eval(x) <= target`, found by
    /// scanning knots and interpolating; `None` if the curve never drops
    /// to `target` on the interval. Intended for monotone curves.
    pub fn first_crossing_below(&self, target: f64, lo: f64, hi: f64) -> Option<f64> {
        let mut grid: Vec<f64> = vec![lo];
        for &x in &self.xs {
            if x > lo && x < hi {
                grid.push(x);
            }
        }
        grid.push(hi);
        let mut prev_x = grid[0];
        let mut prev_y = self.eval(prev_x);
        if prev_y <= target {
            return Some(prev_x);
        }
        for &x in &grid[1..] {
            let y = self.eval(x);
            if y <= target {
                // Linear interpolation between (prev_x, prev_y) and (x, y).
                if (prev_y - y).abs() < 1e-300 {
                    return Some(x);
                }
                let t = (prev_y - target) / (prev_y - y);
                return Some(prev_x + t * (x - prev_x));
            }
            prev_x = x;
            prev_y = y;
        }
        None
    }
}

/// Pool-adjacent-violators algorithm: the non-decreasing sequence
/// minimizing squared distance to `ys` (unit weights).
pub fn isotonic_non_decreasing(ys: &[f64]) -> Vec<f64> {
    // Each block: (sum, count). Merge backwards while the mean ordering
    // is violated.
    let mut sums: Vec<f64> = Vec::with_capacity(ys.len());
    let mut counts: Vec<usize> = Vec::with_capacity(ys.len());
    for &y in ys {
        sums.push(y);
        counts.push(1);
        while sums.len() > 1 {
            let n = sums.len();
            let mean_last = sums[n - 1] / counts[n - 1] as f64;
            let mean_prev = sums[n - 2] / counts[n - 2] as f64;
            if mean_prev <= mean_last {
                break;
            }
            let s = sums.pop().expect("non-empty");
            let c = counts.pop().expect("non-empty");
            let n = sums.len();
            sums[n - 1] += s;
            counts[n - 1] += c;
        }
    }
    let mut out = Vec::with_capacity(ys.len());
    for (s, c) in sums.iter().zip(&counts) {
        let mean = s / *c as f64;
        out.extend(std::iter::repeat(mean).take(*c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let f = PiecewiseLinear::new(vec![(1.0, 10.0), (0.0, 0.0), (1.0, 20.0)]).unwrap();
        assert_eq!(f.xs(), &[0.0, 1.0]);
        assert_eq!(f.ys(), &[0.0, 15.0]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn construction_rejects_bad_input() {
        assert!(matches!(
            PiecewiseLinear::new(vec![]).unwrap_err(),
            LinalgError::EmptyInput
        ));
        assert!(PiecewiseLinear::new(vec![(f64::NAN, 0.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn eval_interpolates_and_clamps() {
        let f = PiecewiseLinear::new(vec![(0.0, 0.0), (2.0, 4.0), (4.0, 0.0)]).unwrap();
        assert_eq!(f.eval(1.0), 2.0);
        assert_eq!(f.eval(3.0), 2.0);
        assert_eq!(f.eval(2.0), 4.0);
        assert_eq!(f.eval(-5.0), 0.0);
        assert_eq!(f.eval(10.0), 0.0);
    }

    #[test]
    fn single_knot_is_constant() {
        let f = PiecewiseLinear::new(vec![(1.0, 7.0)]).unwrap();
        assert_eq!(f.eval(-100.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
        assert_eq!(f.integral(0.0, 2.0), 14.0);
    }

    #[test]
    fn integral_is_exact_for_triangle() {
        let f = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]).unwrap();
        assert!((f.integral(0.0, 2.0) - 1.0).abs() < 1e-12);
        assert!((f.integral(2.0, 0.0) + 1.0).abs() < 1e-12);
        assert_eq!(f.integral(1.0, 1.0), 0.0);
        // Partial interval.
        assert!((f.integral(0.0, 0.5) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn integral_with_clamped_tails() {
        let f = PiecewiseLinear::new(vec![(0.0, 2.0), (1.0, 2.0)]).unwrap();
        assert!((f.integral(-1.0, 2.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn right_derivative_per_segment() {
        let f = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 0.0)]).unwrap();
        assert_eq!(f.right_derivative(0.5), 2.0);
        assert_eq!(f.right_derivative(0.0), 2.0);
        assert_eq!(f.right_derivative(2.0), -1.0);
        assert_eq!(f.right_derivative(5.0), 0.0);
    }

    #[test]
    fn map_values_applies_function() {
        let f = PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 2.0)]).unwrap();
        let g = f.map_values(|y| 10.0 * y);
        assert_eq!(g.eval(0.5), 15.0);
    }

    #[test]
    fn monotonicity_predicates() {
        let up = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0)]).unwrap();
        let down = PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 0.0)]).unwrap();
        assert!(up.is_non_decreasing());
        assert!(!up.is_non_increasing());
        assert!(down.is_non_increasing());
    }

    #[test]
    fn pava_fixes_violations_minimally() {
        let ys = [1.0, 3.0, 2.0, 4.0];
        let fit = isotonic_non_decreasing(&ys);
        assert_eq!(fit, vec![1.0, 2.5, 2.5, 4.0]);
        // Already monotone input is unchanged.
        let ys2 = [1.0, 2.0, 3.0];
        assert_eq!(isotonic_non_decreasing(&ys2), ys2.to_vec());
    }

    #[test]
    fn pava_all_decreasing_collapses_to_mean() {
        let ys = [3.0, 2.0, 1.0];
        let fit = isotonic_non_decreasing(&ys);
        assert_eq!(fit, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn isotonic_decreasing_mirrors_increasing() {
        let f = PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.0, 0.0)]).unwrap();
        let g = f.isotonic_decreasing();
        assert!(g.is_non_increasing());
        // Sum preserved within pooled blocks.
        let orig: f64 = f.ys().iter().sum();
        let fit: f64 = g.ys().iter().sum();
        assert!((orig - fit).abs() < 1e-12);
    }

    #[test]
    fn first_crossing_below_finds_interpolated_point() {
        let f = PiecewiseLinear::new(vec![(0.0, 10.0), (10.0, 0.0)]).unwrap();
        let x = f.first_crossing_below(5.0, 0.0, 10.0).unwrap();
        assert!((x - 5.0).abs() < 1e-9);
        assert_eq!(f.first_crossing_below(-1.0, 0.0, 10.0), None);
        assert_eq!(f.first_crossing_below(20.0, 0.0, 10.0), Some(0.0));
    }
}
