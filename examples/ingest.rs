//! Ingestion throughput demo: generate an on-disk Spambase-scale CSV
//! from the synthetic source, then prepare it both whole-file and
//! out-of-core (chunked) through the same pipeline and verify the two
//! paths produce bit-identical `PreparedData` (pinned via
//! `content_digest`). Reports rows/s and bytes/s per mode per scale,
//! plus the process-wide `io_*` counters the telemetry layer exposes.
//!
//! ```sh
//! cargo run --release --example ingest                     # scales 1,8,64
//! cargo run --release --example ingest -- --scales 1,4 --rows 600
//! cargo run --release --example ingest -- --json /tmp/ingest.json
//! ```
//!
//! Options: `--scales LIST` (comma-separated Spambase multipliers,
//! default `1,8,64`), `--rows N` (base row count at 1× scale, default
//! 4601 — shrink for smoke runs), `--chunk-rows N` (chunk size for
//! the out-of-core path, default 4096), `--inflight N` (max in-flight
//! chunks, default 4), `--json PATH` (write the machine-readable
//! summary), `--emit PATH` (also write a base-rows fixture CSV to
//! `PATH` and keep it — handy as a `load_test --dataset` input).

use poisongame::data::csv::to_csv;
use poisongame::data::synth::{spambase_like, SpambaseConfig};
use poisongame::io::telemetry::metrics;
use poisongame::io::{checksum_bytes, DEFAULT_CHUNK_ROWS};
use poisongame::linalg::rng::Xoshiro256StarStar;
use poisongame::sim::ingest::DEFAULT_MAX_INFLIGHT_CHUNKS;
use poisongame::sim::jsonio::{self, Json};
use poisongame::sim::pipeline::{prepare_data, DataSource, PreparedData};
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

struct Args {
    scales: Vec<usize>,
    rows: usize,
    chunk_rows: usize,
    inflight: usize,
    json: Option<String>,
    emit: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        scales: vec![1, 8, 64],
        rows: 4601,
        chunk_rows: DEFAULT_CHUNK_ROWS,
        inflight: DEFAULT_MAX_INFLIGHT_CHUNKS,
        json: None,
        emit: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("`{what}` needs a value"));
        match flag.as_str() {
            "--scales" => {
                out.scales = value("--scales")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--scales: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--rows" => {
                out.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--chunk-rows" => {
                out.chunk_rows = value("--chunk-rows")?
                    .parse()
                    .map_err(|e| format!("--chunk-rows: {e}"))?
            }
            "--inflight" => {
                out.inflight = value("--inflight")?
                    .parse()
                    .map_err(|e| format!("--inflight: {e}"))?
            }
            "--json" => out.json = Some(value("--json")?),
            "--emit" => out.emit = Some(value("--emit")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.scales.is_empty() || out.scales.contains(&0) {
        return Err("--scales needs at least one positive multiplier".into());
    }
    if out.rows == 0 || out.chunk_rows == 0 || out.inflight == 0 {
        return Err("--rows, --chunk-rows and --inflight must all be at least 1".into());
    }
    Ok(out)
}

fn file_source(path: &Path, checksum: u64, chunking: Option<(usize, usize)>) -> DataSource {
    DataSource::File {
        path: path.display().to_string(),
        checksum: Some(checksum),
        format: "spambase".to_string(),
        chunk_rows: chunking.map(|(rows, _)| rows),
        max_inflight_chunks: chunking.map(|(_, inflight)| inflight),
    }
}

/// One timed preparation run; returns the result plus throughput.
fn timed_prepare(
    source: &DataSource,
    bytes: usize,
) -> Result<(PreparedData, f64, f64, f64), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let prepared = prepare_data(source, 20190607, 0.3)?;
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    let rows = prepared.train.len() + prepared.test.len();
    Ok((prepared, secs, rows as f64 / secs, bytes as f64 / secs))
}

fn mode_json(secs: f64, rows_per_sec: f64, bytes_per_sec: f64) -> Json {
    Json::obj(vec![
        ("secs", Json::Num(secs)),
        ("rows_per_sec", Json::Num(rows_per_sec)),
        ("bytes_per_sec", Json::Num(bytes_per_sec)),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| {
        eprintln!("usage error: {e} (see the doc comment at the top of examples/ingest.rs)");
        e
    })?;
    let dir = std::env::temp_dir().join(format!("pg-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    println!(
        "ingest: scales {:?} × {} base rows | chunked = {} rows/chunk, ≤{} in flight\n",
        args.scales, args.rows, args.chunk_rows, args.inflight
    );

    if let Some(emit) = &args.emit {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xD5);
        let data = spambase_like(
            &SpambaseConfig {
                rows: args.rows,
                ..SpambaseConfig::default()
            },
            &mut rng,
        );
        let text = to_csv(&data);
        std::fs::write(emit, &text)?;
        println!(
            "fixture: {} rows → {emit} (checksum {})\n",
            args.rows,
            checksum_bytes(text.as_bytes())
        );
    }

    let mut scale_reports = Vec::new();
    for &scale in &args.scales {
        let rows = args.rows * scale;
        // The fixture: a real on-disk CSV at this scale, checksummed.
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xD5 + scale as u64);
        let data = spambase_like(
            &SpambaseConfig {
                rows,
                ..SpambaseConfig::default()
            },
            &mut rng,
        );
        let text = to_csv(&data);
        drop(data);
        let bytes = text.len();
        let checksum = checksum_bytes(text.as_bytes());
        let path = dir.join(format!("spambase-{scale}x.csv"));
        std::fs::write(&path, &text)?;
        drop(text);

        let (whole, whole_secs, whole_rps, whole_bps) =
            timed_prepare(&file_source(&path, checksum, None), bytes)?;
        let (chunked, chunk_secs, chunk_rps, chunk_bps) = timed_prepare(
            &file_source(&path, checksum, Some((args.chunk_rows, args.inflight))),
            bytes,
        )?;
        // The whole point: out-of-core preparation is bit-identical.
        assert_eq!(
            whole.content_digest(),
            chunked.content_digest(),
            "chunked preparation diverged from whole-file at scale {scale}"
        );
        println!(
            "  {scale:>3}× ({rows} rows, {:.1} MiB): whole {:.3}s ({:.0} rows/s) | chunked {:.3}s ({:.0} rows/s) | digests match",
            bytes as f64 / (1024.0 * 1024.0),
            whole_secs,
            whole_rps,
            chunk_secs,
            chunk_rps,
        );
        scale_reports.push(Json::obj(vec![
            ("scale", Json::Num(scale as f64)),
            ("rows", Json::Num(rows as f64)),
            ("bytes", Json::Num(bytes as f64)),
            ("checksum", jsonio::big_u64_to_json(checksum)),
            ("whole", mode_json(whole_secs, whole_rps, whole_bps)),
            ("chunked", mode_json(chunk_secs, chunk_rps, chunk_bps)),
            ("digest_match", Json::Bool(true)),
        ]));
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();

    let io = metrics();
    println!(
        "\nio_* counters: {} rows | {} bytes | {} chunks | {} fallbacks | {} checksum mismatches",
        io.rows.get(),
        io.bytes.get(),
        io.chunks.get(),
        io.fallback.get(),
        io.checksum_mismatch.get(),
    );

    if let Some(path) = &args.json {
        let summary = Json::obj(vec![
            ("base_rows", Json::Num(args.rows as f64)),
            ("chunk_rows", Json::Num(args.chunk_rows as f64)),
            ("max_inflight_chunks", Json::Num(args.inflight as f64)),
            ("scales", Json::Arr(scale_reports)),
            (
                "io_counters",
                Json::obj(vec![
                    ("rows_total", jsonio::big_u64_to_json(io.rows.get())),
                    ("bytes_total", jsonio::big_u64_to_json(io.bytes.get())),
                    ("chunks_total", jsonio::big_u64_to_json(io.chunks.get())),
                    ("fallback_total", jsonio::big_u64_to_json(io.fallback.get())),
                    (
                        "checksum_mismatch_total",
                        jsonio::big_u64_to_json(io.checksum_mismatch.get()),
                    ),
                ]),
            ),
        ]);
        std::fs::write(path, format!("{}\n", summary.render()))?;
        println!("summary written to {path}");
    }
    Ok(())
}
