//! Ingestion telemetry: `io_*` counters, histograms and events.
//!
//! All handles register once (lazily) into the process-wide
//! [`poisongame_obs::Registry::global`], so any host that already
//! exposes the registry — the gateway's `GET /v1/metrics`, the serve
//! `metrics` request — sees ingestion traffic with no extra wiring.
//! The hot path (per-chunk recording) only touches cached atomics.

use poisongame_obs::{Counter, EventLog, FieldValue, Gauge, Histogram, Registry, Severity};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Data rows successfully parsed by the ingestion tier.
pub const IO_ROWS_FAMILY: &str = "poisongame_io_rows_total";
/// Raw bytes consumed from record sources (newlines included).
pub const IO_BYTES_FAMILY: &str = "poisongame_io_bytes_total";
/// Chunks parsed (whole-file and out-of-core paths both count).
pub const IO_CHUNKS_FAMILY: &str = "poisongame_io_chunks_total";
/// Per-chunk parse latency in nanoseconds.
pub const IO_PARSE_FAMILY: &str = "poisongame_io_parse_nanos";
/// Chunks currently admitted to the out-of-core pipeline (the
/// backpressure gauge — never exceeds `max_inflight_chunks`).
pub const IO_INFLIGHT_FAMILY: &str = "poisongame_io_inflight_chunks";
/// File sources whose content failed checksum validation.
pub const IO_CHECKSUM_MISMATCH_FAMILY: &str = "poisongame_io_checksum_mismatch_total";
/// File sources that were absent and fell back to the synthetic
/// generator.
pub const IO_FALLBACK_FAMILY: &str = "poisongame_io_fallback_total";

/// Event kind published when a file source fails checksum validation.
pub const CHECKSUM_MISMATCH_EVENT: &str = "checksum_mismatch";

/// The ingestion tier's cached metric handles.
pub struct IoMetrics {
    /// Rows parsed.
    pub rows: Arc<Counter>,
    /// Raw bytes consumed.
    pub bytes: Arc<Counter>,
    /// Chunks parsed.
    pub chunks: Arc<Counter>,
    /// Per-chunk parse latency.
    pub parse_nanos: Arc<Histogram>,
    /// In-flight out-of-core chunks.
    pub inflight: Arc<Gauge>,
    /// Checksum validation failures.
    pub checksum_mismatch: Arc<Counter>,
    /// Absent-file fallbacks to the synthetic generator.
    pub fallback: Arc<Counter>,
}

/// The process-wide ingestion metric handles (registered on first
/// use).
pub fn metrics() -> &'static IoMetrics {
    static METRICS: OnceLock<IoMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = Registry::global();
        IoMetrics {
            rows: registry.counter(
                IO_ROWS_FAMILY,
                "Data rows parsed by the ingestion tier",
                &[],
            ),
            bytes: registry.counter(
                IO_BYTES_FAMILY,
                "Raw bytes consumed from record sources",
                &[],
            ),
            chunks: registry.counter(IO_CHUNKS_FAMILY, "Chunks parsed", &[]),
            parse_nanos: registry.histogram(
                IO_PARSE_FAMILY,
                "Per-chunk parse latency in nanoseconds",
                &[],
            ),
            inflight: registry.gauge(
                IO_INFLIGHT_FAMILY,
                "Chunks currently admitted to the out-of-core pipeline",
                &[],
            ),
            checksum_mismatch: registry.counter(
                IO_CHECKSUM_MISMATCH_FAMILY,
                "File sources whose content failed checksum validation",
                &[],
            ),
            fallback: registry.counter(
                IO_FALLBACK_FAMILY,
                "Absent file sources served by the synthetic fallback",
                &[],
            ),
        }
    })
}

/// Record one parsed chunk: rows, chunk count, parse latency.
pub fn record_chunk(rows: u64, elapsed: Duration) {
    let m = metrics();
    m.rows.add(rows);
    m.chunks.inc();
    m.parse_nanos.record_duration(elapsed);
}

/// Record an absent-file fallback to the synthetic generator.
pub fn note_fallback(path: &str) {
    metrics().fallback.inc();
    EventLog::global().publish(
        Severity::Info,
        "source_fallback",
        vec![("path".to_string(), FieldValue::Str(path.to_string()))],
    );
}

/// Record a checksum validation failure: counter plus a
/// [`CHECKSUM_MISMATCH_EVENT`] error event carrying the path and both
/// hashes.
pub fn note_checksum_mismatch(source: &str, expected: u64, actual: u64) {
    metrics().checksum_mismatch.inc();
    EventLog::global().publish(
        Severity::Error,
        CHECKSUM_MISMATCH_EVENT,
        vec![
            ("source".to_string(), FieldValue::Str(source.to_string())),
            ("expected".to_string(), FieldValue::U64(expected)),
            ("actual".to_string(), FieldValue::U64(actual)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let before = metrics().rows.get();
        record_chunk(5, Duration::from_micros(10));
        assert!(metrics().rows.get() >= before + 5);
        assert!(metrics().chunks.get() >= 1);
    }

    #[test]
    fn checksum_mismatch_publishes_event() {
        let log = EventLog::global();
        let cursor = log.last_seq();
        note_checksum_mismatch("data/spam.csv", 1, 2);
        let replay = log.since(cursor);
        assert!(replay
            .events
            .iter()
            .any(|e| e.kind == CHECKSUM_MISMATCH_EVENT));
    }
}
