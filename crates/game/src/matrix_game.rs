//! Finite zero-sum games in payoff-matrix form.

use crate::error::GameError;
use crate::strategy::MixedStrategy;
use poisongame_linalg::{vector, Matrix};
use serde::{Deserialize, Serialize};

/// A finite two-player zero-sum game.
///
/// Entry `(i, j)` is the payoff to the **row player (maximizer)** when
/// the row player plays `i` and the column player (minimizer) plays `j`.
///
/// # Example
///
/// ```
/// use poisongame_theory::MatrixGame;
///
/// // Matching pennies.
/// let g = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
/// assert_eq!(g.shape(), (2, 2));
/// assert!(g.saddle_point().is_none()); // no pure equilibrium
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixGame {
    payoffs: Matrix,
}

impl MatrixGame {
    /// Build from a payoff matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidPayoffs`] for an empty matrix or
    /// non-finite entries.
    pub fn new(payoffs: Matrix) -> Result<Self, GameError> {
        if payoffs.rows() == 0 || payoffs.cols() == 0 {
            return Err(GameError::InvalidPayoffs {
                message: "empty payoff matrix".into(),
            });
        }
        if !vector::all_finite(payoffs.as_slice()) {
            return Err(GameError::InvalidPayoffs {
                message: "non-finite payoff entry".into(),
            });
        }
        Ok(Self { payoffs })
    }

    /// Build from row vectors.
    ///
    /// # Errors
    ///
    /// Same as [`MatrixGame::new`], plus an error for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, GameError> {
        let payoffs = Matrix::from_rows(rows).map_err(|e| GameError::InvalidPayoffs {
            message: e.to_string(),
        })?;
        Self::new(payoffs)
    }

    /// Build an `m × n` game from a payoff function.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n == 0`, or if `f` returns a non-finite
    /// payoff.
    pub fn from_fn<F>(m: usize, n: usize, mut f: F) -> Self
    where
        F: FnMut(usize, usize) -> f64,
    {
        assert!(m > 0 && n > 0, "game must have actions for both players");
        let mut payoffs = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let v = f(i, j);
                assert!(v.is_finite(), "payoff ({i},{j}) is not finite");
                payoffs.set(i, j, v);
            }
        }
        Self { payoffs }
    }

    /// `(rows, cols)` — actions for row and column player.
    pub fn shape(&self) -> (usize, usize) {
        self.payoffs.shape()
    }

    /// Number of row-player actions.
    pub fn rows(&self) -> usize {
        self.payoffs.rows()
    }

    /// Number of column-player actions.
    pub fn cols(&self) -> usize {
        self.payoffs.cols()
    }

    /// Payoff entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn payoff(&self, i: usize, j: usize) -> f64 {
        self.payoffs.get(i, j)
    }

    /// Borrow the payoff matrix.
    pub fn payoffs(&self) -> &Matrix {
        &self.payoffs
    }

    /// Expected payoff when row plays `x` and column plays `y`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] on size mismatch.
    pub fn expected_payoff(&self, x: &MixedStrategy, y: &MixedStrategy) -> Result<f64, GameError> {
        self.check_row(x)?;
        self.check_col(y)?;
        let mut total = 0.0;
        for i in 0..self.rows() {
            let xi = x.prob(i);
            if xi == 0.0 {
                continue;
            }
            total += xi * vector::dot(self.payoffs.row(i), y.probabilities());
        }
        Ok(total)
    }

    /// Expected payoff of each row action against column strategy `y`
    /// (the row player's response values).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] on size mismatch.
    pub fn row_values(&self, y: &MixedStrategy) -> Result<Vec<f64>, GameError> {
        self.check_col(y)?;
        Ok(self.payoffs.mul_vec(y.probabilities()))
    }

    /// Expected payoff of each column action against row strategy `x`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] on size mismatch.
    pub fn column_values(&self, x: &MixedStrategy) -> Result<Vec<f64>, GameError> {
        self.check_row(x)?;
        let mut out = vec![0.0; self.cols()];
        for i in 0..self.rows() {
            let xi = x.prob(i);
            if xi == 0.0 {
                continue;
            }
            vector::axpy(xi, self.payoffs.row(i), &mut out);
        }
        Ok(out)
    }

    /// [`MatrixGame::row_values`] against a plain probability slice —
    /// no [`MixedStrategy`] construction or renormalization. The
    /// per-round hot path of repeated-game simulation, where the
    /// opponent's strategy is already a validated learner state.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] on size mismatch.
    pub fn row_values_slice(&self, y: &[f64]) -> Result<Vec<f64>, GameError> {
        if y.len() != self.cols() {
            return Err(GameError::DimensionMismatch {
                expected: self.cols(),
                found: y.len(),
            });
        }
        Ok(self.payoffs.mul_vec(y))
    }

    /// [`MatrixGame::column_values`] against a plain probability slice
    /// (see [`MatrixGame::row_values_slice`]).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] on size mismatch.
    pub fn column_values_slice(&self, x: &[f64]) -> Result<Vec<f64>, GameError> {
        if x.len() != self.rows() {
            return Err(GameError::DimensionMismatch {
                expected: self.rows(),
                found: x.len(),
            });
        }
        let mut out = vec![0.0; self.cols()];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            vector::axpy(xi, self.payoffs.row(i), &mut out);
        }
        Ok(out)
    }

    /// The row player's best pure response to `y`: `(action, value)`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] on size mismatch.
    pub fn best_row_response(&self, y: &MixedStrategy) -> Result<(usize, f64), GameError> {
        let values = self.row_values(y)?;
        let idx = vector::argmax(&values).expect("non-empty game");
        Ok((idx, values[idx]))
    }

    /// The column player's best pure response to `x`: `(action, value)`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] on size mismatch.
    pub fn best_column_response(&self, x: &MixedStrategy) -> Result<(usize, f64), GameError> {
        let values = self.column_values(x)?;
        let idx = vector::argmin(&values).expect("non-empty game");
        Ok((idx, values[idx]))
    }

    /// The maximin value over pure strategies (row player's guaranteed
    /// payoff without mixing).
    pub fn pure_maximin(&self) -> f64 {
        (0..self.rows())
            .map(|i| {
                self.payoffs
                    .row(i)
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The minimax value over pure strategies (column player's
    /// guaranteed cap without mixing).
    pub fn pure_minimax(&self) -> f64 {
        (0..self.cols())
            .map(|j| {
                (0..self.rows())
                    .map(|i| self.payoff(i, j))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// A pure-strategy Nash equilibrium (saddle point), if one exists:
    /// an entry that is simultaneously a row maximum of its column and
    /// a column minimum of its row.
    ///
    /// The paper's Proposition 1 asserts exactly the *absence* of such
    /// a point in the poisoning game; this method is the programmatic
    /// check used by the reproduction.
    pub fn saddle_point(&self) -> Option<(usize, usize)> {
        let tol = 1e-12;
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                let v = self.payoff(i, j);
                let row_min = self
                    .payoffs
                    .row(i)
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                if v > row_min + tol {
                    continue;
                }
                let col_max = (0..self.rows())
                    .map(|r| self.payoff(r, j))
                    .fold(f64::NEG_INFINITY, f64::max);
                if v < col_max - tol {
                    continue;
                }
                return Some((i, j));
            }
        }
        None
    }

    /// Exploitability of a strategy pair: how much each side could gain
    /// by best-responding. Zero exactly at a Nash equilibrium; always
    /// non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::DimensionMismatch`] on size mismatch.
    pub fn exploitability(&self, x: &MixedStrategy, y: &MixedStrategy) -> Result<f64, GameError> {
        let (_, row_br) = self.best_row_response(y)?;
        let (_, col_br) = self.best_column_response(x)?;
        // row_br >= value >= col_br at any pair; gap is the total gain
        // available to the two players.
        Ok(row_br - col_br)
    }

    /// Shift every payoff by a constant (does not change equilibria,
    /// shifts the value).
    pub fn shifted(&self, delta: f64) -> MatrixGame {
        let mut payoffs = self.payoffs.clone();
        for i in 0..payoffs.rows() {
            for v in payoffs.row_mut(i) {
                *v += delta;
            }
        }
        MatrixGame { payoffs }
    }

    /// Smallest payoff entry.
    pub fn min_payoff(&self) -> f64 {
        self.payoffs
            .as_slice()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest payoff entry.
    pub fn max_payoff(&self) -> f64 {
        self.payoffs
            .as_slice()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn check_row(&self, x: &MixedStrategy) -> Result<(), GameError> {
        if x.len() != self.rows() {
            return Err(GameError::DimensionMismatch {
                expected: self.rows(),
                found: x.len(),
            });
        }
        Ok(())
    }

    fn check_col(&self, y: &MixedStrategy) -> Result<(), GameError> {
        if y.len() != self.cols() {
            return Err(GameError::DimensionMismatch {
                expected: self.cols(),
                found: y.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matching_pennies() -> MatrixGame {
        MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap()
    }

    fn with_saddle() -> MatrixGame {
        // Row 1 dominates; column 0 dominates. Saddle at (1, 0) = 2.
        MatrixGame::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(MatrixGame::new(Matrix::zeros(0, 2)).is_err());
        assert!(MatrixGame::from_rows(&[vec![f64::NAN]]).is_err());
        assert!(MatrixGame::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_fn_builds_entries() {
        let g = MatrixGame::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(g.payoff(1, 2), 12.0);
        assert_eq!(g.shape(), (2, 3));
    }

    #[test]
    fn expected_payoff_uniform_pennies_is_zero() {
        let g = matching_pennies();
        let u = MixedStrategy::uniform(2);
        assert!((g.expected_payoff(&u, &u).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn expected_payoff_pure_matches_entry() {
        let g = with_saddle();
        let x = MixedStrategy::pure(1, 2);
        let y = MixedStrategy::pure(0, 2);
        assert_eq!(g.expected_payoff(&x, &y).unwrap(), 2.0);
    }

    #[test]
    fn dimension_checks() {
        let g = matching_pennies();
        let bad = MixedStrategy::uniform(3);
        assert!(g.expected_payoff(&bad, &MixedStrategy::uniform(2)).is_err());
        assert!(g.row_values(&bad).is_err());
        assert!(g.column_values(&bad).is_err());
    }

    #[test]
    fn best_responses() {
        let g = with_saddle();
        let y = MixedStrategy::uniform(2);
        let (i, v) = g.best_row_response(&y).unwrap();
        assert_eq!(i, 1);
        assert_eq!(v, 3.0);
        let x = MixedStrategy::uniform(2);
        let (j, w) = g.best_column_response(&x).unwrap();
        assert_eq!(j, 0);
        assert_eq!(w, 1.5);
    }

    #[test]
    fn slice_values_match_strategy_values() {
        let g = with_saddle();
        let y = MixedStrategy::new(vec![0.3, 0.7]).unwrap();
        let x = MixedStrategy::new(vec![0.6, 0.4]).unwrap();
        assert_eq!(
            g.row_values_slice(y.probabilities()).unwrap(),
            g.row_values(&y).unwrap()
        );
        assert_eq!(
            g.column_values_slice(x.probabilities()).unwrap(),
            g.column_values(&x).unwrap()
        );
        assert!(g.row_values_slice(&[1.0]).is_err());
        assert!(g.column_values_slice(&[1.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn saddle_point_found_when_it_exists() {
        assert_eq!(with_saddle().saddle_point(), Some((1, 0)));
        assert_eq!(matching_pennies().saddle_point(), None);
        assert_eq!(with_saddle().pure_maximin(), 2.0);
        assert_eq!(with_saddle().pure_minimax(), 2.0);
    }

    #[test]
    fn pure_bounds_straddle_for_pennies() {
        let g = matching_pennies();
        assert_eq!(g.pure_maximin(), -1.0);
        assert_eq!(g.pure_minimax(), 1.0);
        assert!(g.pure_maximin() <= g.pure_minimax());
    }

    #[test]
    fn exploitability_zero_at_equilibrium() {
        let g = matching_pennies();
        let u = MixedStrategy::uniform(2);
        assert!(g.exploitability(&u, &u).unwrap().abs() < 1e-12);
        // Pure vs pure in pennies is fully exploitable.
        let p = MixedStrategy::pure(0, 2);
        assert_eq!(g.exploitability(&p, &p).unwrap(), 2.0);
    }

    #[test]
    fn shift_preserves_equilibrium_structure() {
        let g = matching_pennies().shifted(5.0);
        let u = MixedStrategy::uniform(2);
        assert!((g.expected_payoff(&u, &u).unwrap() - 5.0).abs() < 1e-12);
        assert!(g.exploitability(&u, &u).unwrap().abs() < 1e-12);
        assert_eq!(g.min_payoff(), 4.0);
        assert_eq!(g.max_payoff(), 6.0);
    }
}
