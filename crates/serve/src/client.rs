//! The blocking client library.
//!
//! One [`Client`] wraps one connection. The simple surface is the
//! typed calls ([`Client::cell`], [`Client::solve`], …), each a
//! send-and-wait round trip. For pipelining, [`Client::send`] returns
//! the request id immediately and [`Client::wait`] collects responses
//! in any order — the server may answer out of order, and responses
//! for other in-flight ids are buffered transparently.
//!
//! # Example
//!
//! ```no_run
//! use poisongame_serve::client::Client;
//! use poisongame_serve::protocol::{CellRequest, RequestKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut client = Client::connect("127.0.0.1:7979")?;
//! // Pipeline two cells, then collect both.
//! let a = client.send(RequestKind::Cell(CellRequest::default()), None)?;
//! let b = client.send(RequestKind::Cell(CellRequest::default()), None)?;
//! let (ra, rb) = (client.wait(a)?, client.wait(b)?);
//! assert_eq!(ra, rb, "same request, same result");
//! # Ok(())
//! # }
//! ```

use crate::error::ServeError;
use crate::protocol::{
    parse_response_line, read_frame, CellRequest, EstimateRequest, Frame, MatrixRequest,
    OnlineRequest, Request, RequestKind, ResponseBody, ServerStats, SolveRequest, SolveResult,
    DEFAULT_MAX_LINE_BYTES,
};
use poisongame_online::OnlineTrace;
use poisongame_sim::estimate::CurveEstimate;
use poisongame_sim::jsonio::Json;
use poisongame_sim::scenario::MatrixResults;
use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a `poisongame-serve` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Responses read while waiting for a different id.
    pending: HashMap<u64, ResponseBody>,
    max_line_bytes: usize,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 0,
            pending: HashMap::new(),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
        })
    }

    /// Override the response-frame byte cap (default
    /// [`DEFAULT_MAX_LINE_BYTES`]). The server streams results
    /// whole-frame and does not cap its own responses, so a very large
    /// `matrix` sweep can exceed the default — raise this to match the
    /// largest result you expect to read back.
    pub fn max_line_bytes(mut self, max: usize) -> Client {
        self.max_line_bytes = max;
        self
    }

    /// Send a request without waiting; returns the id to [`wait`] on.
    /// Ids are assigned sequentially per connection.
    ///
    /// [`wait`]: Client::wait
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, kind: RequestKind, deadline_ms: Option<u64>) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            deadline_ms,
            kind,
        };
        self.writer.write_all(request.to_line().as_bytes())?;
        Ok(id)
    }

    /// Wait for the response to `id`, buffering responses to other
    /// in-flight ids along the way.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] for a structured error response,
    /// [`ServeError::Protocol`] for unparseable or unattributable
    /// frames, [`ServeError::Io`] for transport failures.
    pub fn wait(&mut self, id: u64) -> Result<Json, ServeError> {
        loop {
            if let Some(body) = self.pending.remove(&id) {
                return match body {
                    ResponseBody::Ok(result) => Ok(result),
                    ResponseBody::Err { code, message } => {
                        Err(ServeError::Server { code, message })
                    }
                };
            }
            let line = match read_frame(&mut self.reader, self.max_line_bytes)? {
                Frame::Line(line) => line,
                Frame::Eof | Frame::Truncated => {
                    return Err(ServeError::Protocol(
                        "connection closed before the response arrived".into(),
                    ))
                }
                Frame::TooLong => {
                    return Err(ServeError::Protocol("oversized response frame".into()))
                }
            };
            let response = parse_response_line(&line)?;
            match response.id {
                Some(rid) => {
                    self.pending.insert(rid, response.body);
                }
                // An unattributable error (the server could not parse
                // some frame): surface it to whoever is waiting.
                None => {
                    return match response.body {
                        ResponseBody::Ok(_) => {
                            Err(ServeError::Protocol("ok response without an id".into()))
                        }
                        ResponseBody::Err { code, message } => {
                            Err(ServeError::Server { code, message })
                        }
                    }
                }
            }
        }
    }

    /// One full round trip: send, then wait.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send`] and [`Client::wait`].
    pub fn call(
        &mut self,
        kind: RequestKind,
        deadline_ms: Option<u64>,
    ) -> Result<Json, ServeError> {
        let id = self.send(kind, deadline_ms)?;
        self.wait(id)
    }

    /// Solve a discretized poisoning game for its equilibrium.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`], plus result-shape errors.
    pub fn solve(&mut self, request: &SolveRequest) -> Result<SolveResult, ServeError> {
        let result = self.call(RequestKind::Solve(request.clone()), None)?;
        SolveResult::from_json(&result)
    }

    /// Evaluate one scenario cell (a 1×1×1 matrix: one cell plus the
    /// shared baseline).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`], plus result-shape errors.
    pub fn cell(&mut self, request: &CellRequest) -> Result<MatrixResults, ServeError> {
        let result = self.call(RequestKind::Cell(request.clone()), None)?;
        MatrixResults::from_json(&result).map_err(|e| ServeError::Protocol(e.to_string()))
    }

    /// Run a scenario-matrix sweep.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`], plus result-shape errors.
    pub fn matrix(&mut self, request: &MatrixRequest) -> Result<MatrixResults, ServeError> {
        let result = self.call(RequestKind::Matrix(request.clone()), None)?;
        MatrixResults::from_json(&result).map_err(|e| ServeError::Protocol(e.to_string()))
    }

    /// Estimate the game curves from sweeps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`], plus result-shape errors.
    pub fn estimate(&mut self, request: &EstimateRequest) -> Result<CurveEstimate, ServeError> {
        let result = self.call(RequestKind::Estimate(request.clone()), None)?;
        CurveEstimate::from_json(&result).map_err(|e| ServeError::Protocol(e.to_string()))
    }

    /// Play a repeated online game server-side and fetch its
    /// convergence trace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`], plus result-shape errors.
    pub fn online(&mut self, request: &OnlineRequest) -> Result<OnlineTrace, ServeError> {
        let result = self.call(RequestKind::Online(request.clone()), None)?;
        OnlineTrace::from_json(&result).map_err(|e| ServeError::Protocol(e.to_string()))
    }

    /// Fetch the server's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`], plus result-shape errors.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        let result = self.call(RequestKind::Stats, None)?;
        ServerStats::from_json(&result)
    }

    /// Fetch the server's full metric registry as a JSON document (the
    /// sparse wire form rendered by
    /// [`crate::telemetry::registry_to_json`]). The gateway renders
    /// this into Prometheus text for `/v1/metrics`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`].
    pub fn metrics(&mut self) -> Result<Json, ServeError> {
        self.call(RequestKind::Metrics, None)
    }

    /// Replay the server's structured event log from (exclusive)
    /// cursor `since`. Pass `0` for everything the bounded buffer
    /// still holds; the returned document carries `last_seq` to use
    /// as the next cursor and `dropped` for events the ring already
    /// discarded.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`].
    pub fn events(&mut self, since: u64) -> Result<Json, ServeError> {
        self.call(RequestKind::Events { since }, None)
    }

    /// Re-split the server's shard pool to `shards` engine shards.
    /// In-flight and queued requests are drained by the old shards;
    /// the new shards start with cold caches.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`] (out-of-range counts are a
    /// structured `bad_request`).
    pub fn resize(&mut self, shards: usize) -> Result<(), ServeError> {
        self.call(RequestKind::Resize { shards }, None).map(|_| ())
    }

    /// Send a raw request envelope — `type` plus caller-provided
    /// fields — without going through the typed [`RequestKind`]
    /// parsers. The id is assigned like [`Client::send`]; `fields`
    /// must not contain `id` or `type`.
    ///
    /// This is the passthrough the HTTP gateway uses: the request
    /// document it received is forwarded untouched, so the server's
    /// validation (and its structured errors) apply verbatim.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_raw(
        &mut self,
        type_name: &str,
        fields: &[(String, Json)],
    ) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut doc: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 2);
        doc.push(("id".into(), Json::Num(id as f64)));
        doc.push(("type".into(), Json::str(type_name)));
        doc.extend(fields.iter().cloned());
        let mut line = Json::Obj(doc).render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(id)
    }

    /// One raw round trip: [`Client::send_raw`], then wait for the
    /// result document.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::send_raw`] and [`Client::wait`].
    pub fn call_raw(
        &mut self,
        type_name: &str,
        fields: &[(String, Json)],
    ) -> Result<Json, ServeError> {
        let id = self.send_raw(type_name, fields)?;
        self.wait(id)
    }

    /// Ask the server to drain and exit. Returns once the server acks
    /// (the drain itself finishes asynchronously; join the server
    /// handle to wait for it).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::call`].
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.call(RequestKind::Shutdown, None).map(|_| ())
    }
}
