//! Streaming dataset ingestion for the poisoning game.
//!
//! The bottom-layer I/O tier: strict chunked CSV reading from any
//! [`std::io::Read`] source, checksummed file sources with a
//! deterministic synthetic fallback, and the structured errors and
//! `io_*` telemetry the rest of the stack builds out-of-core
//! preparation on. std-only, like every crate below the facade.
//!
//! | Module | What it holds |
//! |---|---|
//! | [`chunk`] | [`ChunkReader`], [`parse_chunk`], [`scan`], [`read_dataset`], limits |
//! | [`source`] | [`RecordSource`], [`FileSource`], the [`Format`] registry |
//! | [`error`] | [`IngestError`] — one variant per conformance failure |
//! | [`telemetry`] | `io_*` counters/histograms and the `checksum_mismatch` event |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod error;
pub mod source;
pub mod telemetry;

pub use chunk::{
    checksum_bytes, parse_chunk, read_dataset, scan, ChunkReader, IngestLimits, ParsedChunk,
    RawChunk, ScanSummary, DEFAULT_CHUNK_ROWS, DEFAULT_MAX_LINE_BYTES,
};
pub use error::IngestError;
pub use source::{lookup_format, FileSource, Format, RecordSource, FORMATS, GENERIC_CSV, SPAMBASE};
