//! Validated mixed strategies and solver solutions.

use crate::error::GameError;
use poisongame_linalg::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tolerance for probability-sum validation.
const SUM_TOLERANCE: f64 = 1e-6;

/// A probability distribution over a finite action set.
///
/// Invariants (enforced at construction): every entry is finite and
/// non-negative, and the entries sum to 1 (inputs within `1e-6` of 1
/// are renormalized exactly).
///
/// # Example
///
/// ```
/// use poisongame_theory::MixedStrategy;
///
/// let s = MixedStrategy::new(vec![0.25, 0.75]).unwrap();
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.support(), vec![0, 1]);
/// assert!(MixedStrategy::new(vec![0.5, -0.5]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedStrategy {
    probabilities: Vec<f64>,
}

impl MixedStrategy {
    /// Validate and (lightly) renormalize a probability vector.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidDistribution`] for empty input,
    /// negative/non-finite entries, or a sum farther than `1e-6` from 1.
    pub fn new(probabilities: Vec<f64>) -> Result<Self, GameError> {
        if probabilities.is_empty() {
            return Err(GameError::InvalidDistribution {
                message: "empty probability vector".into(),
            });
        }
        for (i, &p) in probabilities.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(GameError::InvalidDistribution {
                    message: format!("entry {i} is {p}"),
                });
            }
        }
        let sum: f64 = probabilities.iter().sum();
        if (sum - 1.0).abs() > SUM_TOLERANCE {
            return Err(GameError::InvalidDistribution {
                message: format!("probabilities sum to {sum}"),
            });
        }
        let mut normalized = probabilities;
        for p in &mut normalized {
            *p /= sum;
        }
        Ok(Self {
            probabilities: normalized,
        })
    }

    /// Normalize an arbitrary non-negative weight vector into a
    /// strategy.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidDistribution`] if weights are empty,
    /// negative, non-finite, or all zero.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, GameError> {
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            return Err(GameError::InvalidDistribution {
                message: format!("weights sum to {sum}"),
            });
        }
        Self::new(weights.iter().map(|w| w / sum).collect())
    }

    /// The uniform distribution over `n` actions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "uniform strategy needs at least one action");
        Self {
            probabilities: vec![1.0 / n as f64; n],
        }
    }

    /// The pure strategy playing action `index` among `n`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn pure(index: usize, n: usize) -> Self {
        assert!(index < n, "pure strategy index out of range");
        let mut probabilities = vec![0.0; n];
        probabilities[index] = 1.0;
        Self { probabilities }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// A strategy is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of action `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn prob(&self, i: usize) -> f64 {
        self.probabilities[i]
    }

    /// The full probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Indices with probability above `1e-9`.
    pub fn support(&self) -> Vec<usize> {
        self.probabilities
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (p > 1e-9).then_some(i))
            .collect()
    }

    /// True if exactly one action has all the probability mass.
    pub fn is_pure(&self) -> bool {
        self.support().len() == 1
    }

    /// Shannon entropy in nats (`0` for pure strategies).
    pub fn entropy(&self) -> f64 {
        -self
            .probabilities
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// Sample an action index.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        sample_index(&self.probabilities, rng)
    }

    /// Total-variation distance to another strategy of the same size.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn total_variation(&self, other: &MixedStrategy) -> f64 {
        assert_eq!(self.len(), other.len(), "strategy size mismatch");
        0.5 * self
            .probabilities
            .iter()
            .zip(other.probabilities())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }
}

impl fmt::Display for MixedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cells: Vec<String> = self
            .probabilities
            .iter()
            .map(|p| format!("{:.3}", p))
            .collect();
        write!(f, "[{}]", cells.join(", "))
    }
}

/// Sample an index from a probability slice by walking the CDF
/// (falling back to the last index if accumulated rounding leaves the
/// draw above the cumulative sum). The one categorical sampler shared
/// by [`MixedStrategy::sample`] and the online play loop.
///
/// # Panics
///
/// Panics if `probs` is empty.
pub fn sample_index(probs: &[f64], rng: &mut Xoshiro256StarStar) -> usize {
    assert!(!probs.is_empty(), "cannot sample from an empty slice");
    let u = rng.next_f64();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// A solved zero-sum game: both equilibrium strategies and the value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Row (maximizer) equilibrium strategy.
    pub row_strategy: MixedStrategy,
    /// Column (minimizer) equilibrium strategy.
    pub column_strategy: MixedStrategy,
    /// Game value (expected payoff at equilibrium).
    pub value: f64,
    /// Iterations used (1 for exact solvers).
    pub iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn new_validates_and_renormalizes() {
        let s = MixedStrategy::new(vec![0.5, 0.5000001]).unwrap();
        let sum: f64 = s.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
        assert!(MixedStrategy::new(vec![]).is_err());
        assert!(MixedStrategy::new(vec![0.5, 0.6]).is_err());
        assert!(MixedStrategy::new(vec![1.5, -0.5]).is_err());
        assert!(MixedStrategy::new(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn from_weights_normalizes() {
        let s = MixedStrategy::from_weights(vec![2.0, 6.0]).unwrap();
        assert!((s.prob(0) - 0.25).abs() < 1e-15);
        assert!(MixedStrategy::from_weights(vec![0.0, 0.0]).is_err());
        assert!(MixedStrategy::from_weights(vec![-1.0, 2.0]).is_err());
    }

    #[test]
    fn uniform_and_pure() {
        let u = MixedStrategy::uniform(4);
        assert!(u.probabilities().iter().all(|&p| (p - 0.25).abs() < 1e-15));
        let p = MixedStrategy::pure(2, 4);
        assert!(p.is_pure());
        assert_eq!(p.support(), vec![2]);
        assert!(!u.is_pure());
    }

    #[test]
    #[should_panic(expected = "at least one action")]
    fn uniform_zero_panics() {
        MixedStrategy::uniform(0);
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(MixedStrategy::pure(0, 3).entropy(), 0.0);
        let u = MixedStrategy::uniform(3);
        assert!((u.entropy() - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let s = MixedStrategy::new(vec![0.2, 0.8]).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(55);
        let n = 20_000;
        let ones = (0..n).filter(|_| s.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "sampled fraction {frac}");
    }

    #[test]
    fn sampling_pure_always_same() {
        let s = MixedStrategy::pure(1, 3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(56);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn total_variation_properties() {
        let a = MixedStrategy::new(vec![1.0, 0.0]).unwrap();
        let b = MixedStrategy::new(vec![0.0, 1.0]).unwrap();
        assert_eq!(a.total_variation(&b), 1.0);
        assert_eq!(a.total_variation(&a), 0.0);
    }

    #[test]
    fn display_is_compact() {
        let s = MixedStrategy::new(vec![0.5, 0.5]).unwrap();
        assert_eq!(s.to_string(), "[0.500, 0.500]");
    }
}
