//! A minimal blocking HTTP/1.1 client for the gateway's API.
//!
//! One [`HttpClient`] wraps one keep-alive connection. It speaks
//! exactly the subset the gateway serves — content-length framing,
//! JSON bodies — and exists so tests, the CI smoke step and
//! `load_test` can drive the gateway without an external HTTP stack.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// The `Content-Type` header, verbatim (empty when absent).
    pub content_type: String,
    /// The response body, verbatim.
    pub body: String,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

/// A blocking keep-alive connection to a gateway.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connect to a gateway.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HttpClient> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(HttpClient { reader, writer })
    }

    /// Send a `GET` and read the response.
    ///
    /// # Errors
    ///
    /// Propagates transport and framing failures.
    pub fn get(&mut self, target: &str) -> io::Result<HttpResponse> {
        self.send(&format!("GET {target} HTTP/1.1\r\nhost: gateway\r\n\r\n"))?;
        self.read_response()
    }

    /// Send a `POST` with a JSON body and read the response.
    ///
    /// # Errors
    ///
    /// Propagates transport and framing failures.
    pub fn post(&mut self, target: &str, body: &str) -> io::Result<HttpResponse> {
        self.send(&format!(
            "POST {target} HTTP/1.1\r\nhost: gateway\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ))?;
        self.read_response()
    }

    /// Write raw request bytes without reading a response — the
    /// pipelining half; pair with [`HttpClient::read_response`].
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, raw: &str) -> io::Result<()> {
        self.writer.write_all(raw.as_bytes())
    }

    /// Read one response off the connection.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; framing violations surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_response(&mut self) -> io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let mut parts = status_line.split(' ');
        let status = match (parts.next(), parts.next()) {
            (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
                .parse::<u16>()
                .map_err(|_| invalid(format!("bad status line: `{status_line}`")))?,
            _ => return Err(invalid(format!("bad status line: `{status_line}`"))),
        };
        let mut content_length: Option<usize> = None;
        let mut content_type = String::new();
        let mut keep_alive = true;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(invalid(format!("bad header line: `{line}`")));
            };
            let value = value.trim();
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| invalid(format!("bad content-length: `{value}`")))?,
                    );
                }
                "content-type" => content_type = value.to_string(),
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
        let length =
            content_length.ok_or_else(|| invalid("response without content-length".into()))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| invalid("non-UTF-8 body".into()))?;
        Ok(HttpResponse {
            status,
            content_type,
            body,
            keep_alive,
        })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}
