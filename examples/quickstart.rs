//! Quickstart: one poisoning game from data to equilibrium defense.
//!
//! Generates the synthetic Spambase stand-in, estimates the game
//! curves `E(p)` / `Γ(p)`, runs the paper's Algorithm 1, and prints the
//! defender's mixed strategy plus its predicted accuracy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use poisongame::core::ne::diagnose;
use poisongame::core::{Algorithm1, Algorithm1Config};
use poisongame::sim::estimate::{default_placements, default_strengths, estimate_curves};
use poisongame::sim::pipeline::ExperimentConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's protocol at reduced scale so this runs in seconds;
    // swap `.quick()` out for the full 4601-row, 5000-epoch setup.
    let config = ExperimentConfig::paper().quick();
    println!("== poisoning game quickstart ==");
    println!("dataset: synthetic Spambase stand-in, budget 20%, SVM victim\n");

    println!("estimating E(p) and Γ(p) from attack/filter sweeps...");
    let curves = estimate_curves(&config, &default_placements(), &default_strengths())?;
    println!(
        "  baseline accuracy (no attack, no filter): {:.4}",
        curves.baseline_accuracy
    );
    println!("  poison budget N = {}", curves.n_poison);
    for &(p, e) in &curves.effect_samples {
        println!("  E({:>4.0}%) = {:+.3e} per point", p * 100.0, e);
    }
    for &(p, g) in &curves.cost_samples {
        println!("  Γ({:>4.0}%) = {:+.4}", p * 100.0, g);
    }

    let game = curves.game()?;
    println!("\nrunning Algorithm 1 (n = 3 filter radii)...");
    let result = Algorithm1::new(Algorithm1Config {
        n_radii: 3,
        ..Default::default()
    })
    .solve(&game)?;

    println!("  defender NE strategy: {}", result.strategy);
    println!(
        "  converged: {} after {} iterations",
        result.converged, result.iterations
    );
    println!(
        "  attacker's per-point equilibrium gain: {:.3e}",
        result.attacker_gain
    );
    println!("  defender loss: {:.4}", result.defender_loss);
    println!(
        "  predicted accuracy under optimal attack: {:.4}",
        curves.baseline_accuracy - result.defender_loss
    );

    let diag = diagnose(&result.strategy, game.effect(), 1e-6);
    println!(
        "\nNE conditions (§4.2): ≥2 support points: {}, equalized E·cdf products: {} (spread {:.2e})",
        diag.mixes_two_or_more, diag.products_equalized, diag.product_spread
    );
    Ok(())
}
