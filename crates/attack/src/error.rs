//! Error type for attack generation.

use std::error::Error;
use std::fmt;

/// Errors produced while synthesizing poison points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttackError {
    /// Clean dataset was empty or missing a class.
    DegenerateCleanData,
    /// A radius/percentile parameter was out of range.
    BadParameter {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Requested point counts do not sum to the budget.
    BudgetMismatch {
        /// Budget requested.
        requested: usize,
        /// Sum of the per-radius allocations.
        allocated: usize,
    },
    /// Underlying data error.
    Data(poisongame_data::DataError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::DegenerateCleanData => {
                write!(f, "clean data is empty or missing a class")
            }
            AttackError::BadParameter { what, value } => {
                write!(f, "parameter `{what}` out of range: {value}")
            }
            AttackError::BudgetMismatch {
                requested,
                allocated,
            } => write!(
                f,
                "allocations sum to {allocated} but budget is {requested}"
            ),
            AttackError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<poisongame_data::DataError> for AttackError {
    fn from(e: poisongame_data::DataError) -> Self {
        AttackError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(AttackError::DegenerateCleanData
            .to_string()
            .contains("class"));
        assert!(AttackError::BadParameter {
            what: "percentile",
            value: 2.0
        }
        .to_string()
        .contains("percentile"));
        assert!(AttackError::BudgetMismatch {
            requested: 10,
            allocated: 8
        }
        .to_string()
        .contains("8"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
