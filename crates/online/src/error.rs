//! Error type for the repeated-game simulator.

use std::error::Error;
use std::fmt;

/// Errors produced while simulating repeated play.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OnlineError {
    /// A matrix-game operation failed (payoff assembly, reference NE
    /// solve, strategy construction).
    Game(poisongame_theory::GameError),
    /// An empirical payoff evaluation failed (dataset preparation,
    /// attack/filter/training).
    Sim(poisongame_sim::SimError),
    /// A simulation parameter was out of range.
    BadParameter {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A serialized online spec or trace could not be understood.
    Spec(String),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Game(e) => write!(f, "game: {e}"),
            OnlineError::Sim(e) => write!(f, "sim: {e}"),
            OnlineError::BadParameter { what, value } => {
                write!(f, "parameter `{what}` out of range: {value}")
            }
            OnlineError::Spec(message) => write!(f, "spec: {message}"),
        }
    }
}

impl Error for OnlineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OnlineError::Game(e) => Some(e),
            OnlineError::Sim(e) => Some(e),
            OnlineError::BadParameter { .. } | OnlineError::Spec(_) => None,
        }
    }
}

impl From<poisongame_theory::GameError> for OnlineError {
    fn from(e: poisongame_theory::GameError) -> Self {
        OnlineError::Game(e)
    }
}

impl From<poisongame_sim::SimError> for OnlineError {
    fn from(e: poisongame_sim::SimError) -> Self {
        OnlineError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: OnlineError = poisongame_theory::GameError::InvalidPayoffs {
            message: "empty".into(),
        }
        .into();
        assert!(e.to_string().contains("game"));
        assert!(e.source().is_some());
        let e: OnlineError = poisongame_sim::SimError::Spec("bad".into()).into();
        assert!(e.to_string().contains("sim"));
        assert!(e.source().is_some());
        let e = OnlineError::BadParameter {
            what: "rounds",
            value: 0.0,
        };
        assert!(e.to_string().contains("rounds"));
        assert!(e.source().is_none());
        let e = OnlineError::Spec("unknown learner".into());
        assert!(e.to_string().contains("unknown learner"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OnlineError>();
    }
}
