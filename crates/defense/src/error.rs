//! Error type for defense mechanisms.

use std::error::Error;
use std::fmt;

/// Errors produced by filters and centroid estimators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DefenseError {
    /// The dataset to filter was empty.
    EmptyDataset,
    /// One class had no points; per-class filtering needs both.
    MissingClass,
    /// A strength/fraction parameter was out of range.
    BadParameter {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// An iterative estimator (Weiszfeld) failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
    /// Underlying data error.
    Data(poisongame_data::DataError),
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::EmptyDataset => write!(f, "dataset to filter is empty"),
            DefenseError::MissingClass => write!(f, "a class has no points"),
            DefenseError::BadParameter { what, value } => {
                write!(f, "parameter `{what}` out of range: {value}")
            }
            DefenseError::NoConvergence { iterations } => {
                write!(
                    f,
                    "estimator did not converge after {iterations} iterations"
                )
            }
            DefenseError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl Error for DefenseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DefenseError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<poisongame_data::DataError> for DefenseError {
    fn from(e: poisongame_data::DataError) -> Self {
        DefenseError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DefenseError::EmptyDataset.to_string().contains("empty"));
        assert!(DefenseError::MissingClass.to_string().contains("class"));
        assert!(DefenseError::BadParameter {
            what: "fraction",
            value: 2.0
        }
        .to_string()
        .contains("fraction"));
        assert!(DefenseError::NoConvergence { iterations: 9 }
            .to_string()
            .contains("9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DefenseError>();
    }
}
