//! Result rendering: ASCII tables (for terminals and EXPERIMENTS.md)
//! and CSV (for plotting).

use crate::fig1::Fig1Results;
use crate::scaling::ScalingResults;
use crate::scenario::MatrixResults;
use crate::table1::Table1Results;

/// Render a generic ASCII table with a header row.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+\n";
    let mut out = String::new();
    out.push_str(&sep);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&sep);
    out
}

/// Quote a CSV field per RFC 4180 when it contains a separator, a
/// quote or a line break; plain fields (every numeric cell, today's
/// spec labels) pass through untouched. Without this, a future spec
/// name like `trimmed(frac=0.1, k=3)` would silently shear the
/// scenario-label columns of [`matrix_csv`] apart.
fn csv_field(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Render rows as CSV with a header line. Fields containing
/// separators, quotes or line breaks are RFC 4180-quoted; all other
/// cells (every numeric cell) render byte-identically to the
/// historical unquoted output.
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers
        .iter()
        .map(|h| csv_field(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|cell| csv_field(cell))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

/// Figure 1 as an ASCII table.
pub fn fig1_table(results: &Fig1Results) -> String {
    let rows: Vec<Vec<String>> = results
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}%", r.removed_fraction * 100.0),
                format!("{:.4}", r.accuracy_under_attack),
                format!("{:.4}", r.accuracy_clean),
                format!("{:.0}%", r.poison_recall * 100.0),
            ]
        })
        .collect();
    let mut out = format!(
        "Figure 1 — pure strategy defense under optimal attack\n\
         (baseline accuracy {:.4}, N = {} poison points)\n",
        results.baseline_accuracy, results.n_poison
    );
    out.push_str(&render_table(
        &["removed", "acc (attacked)", "acc (clean)", "poison caught"],
        &rows,
    ));
    out
}

/// Figure 1 as CSV.
pub fn fig1_csv(results: &Fig1Results) -> String {
    let rows: Vec<Vec<String>> = results
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.removed_fraction),
                format!("{}", r.accuracy_under_attack),
                format!("{}", r.accuracy_clean),
                format!("{}", r.poison_recall),
            ]
        })
        .collect();
    render_csv(
        &[
            "removed_fraction",
            "accuracy_under_attack",
            "accuracy_clean",
            "poison_recall",
        ],
        &rows,
    )
}

/// Table 1 in the paper's layout (one column block per support size).
pub fn table1_table(results: &Table1Results) -> String {
    let mut out = String::from("Table 1 — mixed strategy defense under optimal attack\n");
    for row in &results.rows {
        out.push_str(&format!("\n# radius = {}\n", row.n_radii));
        let radii: Vec<String> = row
            .support
            .iter()
            .map(|p| format!("{:.1}%", p * 100.0))
            .collect();
        let probs: Vec<String> = row
            .probabilities
            .iter()
            .map(|q| format!("{:.1}%", q * 100.0))
            .collect();
        out.push_str(&render_table(
            &["Radius", "Probability"],
            &radii
                .iter()
                .zip(&probs)
                .map(|(r, p)| vec![r.clone(), p.clone()])
                .collect::<Vec<_>>(),
        ));
        out.push_str(&format!(
            "accuracy: {:.4} empirical / {:.4} predicted (attacker at {:.1}%)\n",
            row.empirical_accuracy,
            row.predicted_accuracy,
            row.attacker_placement * 100.0
        ));
    }
    out.push_str(&format!(
        "\nbest pure accuracy under attack: {:.4} | clean baseline: {:.4}\n",
        results.best_pure_accuracy, results.baseline_accuracy
    ));
    out
}

/// A scenario matrix as a ranked ASCII table: one row per
/// attack × defense × learner cell, best accuracy first.
pub fn matrix_table(results: &MatrixResults) -> String {
    let rows: Vec<Vec<String>> = results
        .ranked()
        .iter()
        .enumerate()
        .map(|(rank, cell)| {
            vec![
                (rank + 1).to_string(),
                cell.scenario.attack.name().to_string(),
                cell.scenario.defense.label(),
                cell.scenario.learner.name().to_string(),
                format!("{:.4}", cell.outcome.accuracy),
                format!("{:.0}%", cell.outcome.accounting.poison_recall() * 100.0),
                format!("{:.1}%", cell.outcome.removed_fraction * 100.0),
            ]
        })
        .collect();
    let mut out = format!(
        "Scenario matrix — {} cells at {:.0}% filter strength\n\
         (clean baseline {:.4}, N = {} poison points)\n",
        results.cells.len(),
        results.strength * 100.0,
        results.baseline_accuracy,
        results.n_poison
    );
    if let Some(stats) = &results.engine {
        out.push_str(&format!(
            "engine: prep cache {} hit{} / {} miss{} | {:.1} cells/s ({:.1} ms total)\n",
            stats.prep_hits,
            if stats.prep_hits == 1 { "" } else { "s" },
            stats.prep_misses,
            if stats.prep_misses == 1 { "" } else { "es" },
            stats.cells_per_sec(),
            stats.elapsed_micros as f64 / 1000.0
        ));
    }
    out.push_str(&render_table(
        &[
            "#",
            "attack",
            "defense",
            "learner",
            "accuracy",
            "poison caught",
            "removed",
        ],
        &rows,
    ));
    out
}

/// A scenario matrix as long-format CSV in grid order (one row per
/// cell, including the cell seed for isolated reproduction).
pub fn matrix_csv(results: &MatrixResults) -> String {
    let rows: Vec<Vec<String>> = results
        .cells
        .iter()
        .map(|cell| {
            vec![
                cell.scenario.attack.name().to_string(),
                cell.scenario.defense.label(),
                cell.scenario.learner.name().to_string(),
                format!("{}", results.strength),
                format!("{}", cell.outcome.accuracy),
                format!("{}", cell.outcome.accounting.poison_recall()),
                format!("{}", cell.outcome.removed_fraction),
                cell.cell_seed.to_string(),
            ]
        })
        .collect();
    render_csv(
        &[
            "attack",
            "defense",
            "learner",
            "strength",
            "accuracy",
            "poison_recall",
            "removed_fraction",
            "cell_seed",
        ],
        &rows,
    )
}

/// Scaling results as an ASCII table.
pub fn scaling_table(results: &ScalingResults) -> String {
    let rows: Vec<Vec<String>> = results
        .rows
        .iter()
        .map(|r| {
            vec![
                r.n_radii.to_string(),
                format!("{:.6}", r.defender_loss),
                format!("{:.4}", r.predicted_accuracy),
                r.iterations.to_string(),
                format!("{:.1} ms", r.solve_micros as f64 / 1000.0),
            ]
        })
        .collect();
    let mut out = String::from("Scaling — Algorithm 1 vs support size n\n");
    out.push_str(&render_table(
        &[
            "n",
            "defender loss",
            "predicted acc",
            "iterations",
            "solve time",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1::Fig1Row;
    use crate::scaling::ScalingRow;
    use crate::table1::Table1Row;

    fn fig1() -> Fig1Results {
        Fig1Results {
            rows: vec![Fig1Row {
                removed_fraction: 0.1,
                accuracy_under_attack: 0.85,
                accuracy_clean: 0.91,
                poison_recall: 0.7,
            }],
            baseline_accuracy: 0.92,
            n_poison: 644,
        }
    }

    #[test]
    fn generic_table_aligns_columns() {
        let out = render_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "y".into()],
                vec!["wide cell".into(), "z".into()],
            ],
        );
        assert!(out.contains("| a         | long header |"));
        assert!(out.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        render_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let out = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(out, "a,b\n1,2\n");
    }

    #[test]
    fn csv_quotes_separators_quotes_and_newlines() {
        let out = render_csv(
            &["label", "x"],
            &[
                vec!["knn(k=5, frac=0.1)".into(), "1".into()],
                vec!["say \"hi\"".into(), "2".into()],
                vec!["two\nlines".into(), "3".into()],
            ],
        );
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("label,x"));
        // Comma-bearing label is quoted, so the row still has 2 fields.
        assert_eq!(lines.next(), Some("\"knn(k=5, frac=0.1)\",1"));
        // Embedded quotes are doubled per RFC 4180.
        assert_eq!(lines.next(), Some("\"say \"\"hi\"\"\",2"));
        // Embedded newline stays inside one quoted field.
        assert!(out.contains("\"two\nlines\",3\n"));
        // Plain cells are byte-identical to the historical output.
        assert_eq!(render_csv(&["a"], &[vec!["0.5".into()]]), "a\n0.5\n");
    }

    #[test]
    fn fig1_renderings_contain_data() {
        let t = fig1_table(&fig1());
        assert!(t.contains("10.0%"));
        assert!(t.contains("0.8500"));
        let c = fig1_csv(&fig1());
        assert!(c.starts_with("removed_fraction"));
        assert!(c.contains("0.85"));
    }

    #[test]
    fn table1_rendering_matches_paper_layout() {
        let t = table1_table(&Table1Results {
            rows: vec![Table1Row {
                n_radii: 2,
                support: vec![0.058, 0.157],
                probabilities: vec![0.512, 0.488],
                predicted_accuracy: 0.856,
                empirical_accuracy: 0.859,
                attacker_placement: 0.058,
            }],
            best_pure_accuracy: 0.84,
            baseline_accuracy: 0.92,
        });
        assert!(t.contains("# radius = 2"));
        assert!(t.contains("5.8%"));
        assert!(t.contains("51.2%"));
    }

    #[test]
    fn matrix_renderings_rank_and_list_cells() {
        use crate::pipeline::EvalOutcome;
        use crate::scenario::{AttackSpec, DefenseSpec, LearnerSpec, MatrixCell, Scenario};
        use poisongame_defense::FilterAccounting;

        let cell = |attack, accuracy| MatrixCell {
            scenario: Scenario {
                attack,
                defense: DefenseSpec::Knn { k: 5 },
                learner: LearnerSpec::LogReg,
            },
            cell_seed: 42,
            outcome: EvalOutcome {
                accuracy,
                accounting: FilterAccounting {
                    poison_removed: 3,
                    poison_kept: 1,
                    genuine_removed: 2,
                    genuine_kept: 10,
                },
                removed_fraction: 0.3125,
            },
        };
        let results = MatrixResults {
            cells: vec![
                cell(AttackSpec::LabelFlip, 0.71),
                cell(AttackSpec::Boundary, 0.88),
            ],
            baseline_accuracy: 0.92,
            n_poison: 64,
            strength: 0.15,
            engine: None,
        };
        let t = matrix_table(&results);
        assert!(!t.contains("engine:"), "no engine line without stats");
        // Ranked: boundary (0.88) first despite grid order.
        let boundary_at = t.find("boundary").unwrap();
        let flip_at = t.find("label_flip").unwrap();
        assert!(boundary_at < flip_at, "{t}");
        assert!(t.contains("knn(k=5)"));
        assert!(t.contains("0.8800"));
        let c = matrix_csv(&results);
        assert!(c.starts_with("attack,defense,learner"));
        // CSV keeps grid order.
        let flip_line = c.lines().nth(1).unwrap();
        assert!(flip_line.starts_with("label_flip"));
        assert!(flip_line.ends_with(",42"));

        // With engine stats attached, the cache/throughput line shows.
        let mut with_stats = results.clone();
        with_stats.engine = Some(crate::scenario::EngineStats {
            prep_hits: 1,
            prep_misses: 1,
            cells: 2,
            elapsed_micros: 2_000_000,
        });
        let t = matrix_table(&with_stats);
        assert!(t.contains("engine: prep cache 1 hit / 1 miss"), "{t}");
        assert!(t.contains("1.0 cells/s"), "{t}");
    }

    #[test]
    fn scaling_rendering_includes_time() {
        let t = scaling_table(&ScalingResults {
            rows: vec![ScalingRow {
                n_radii: 3,
                defender_loss: 0.05,
                predicted_accuracy: 0.87,
                iterations: 42,
                solve_micros: 1500,
            }],
        });
        assert!(t.contains("1.5 ms"));
        assert!(t.contains("42"));
    }
}
