//! The §5 scaling claims: accuracy plateaus for `n ≥ 3` while the
//! computation cost of Algorithm 1 grows with `n`.

use crate::error::SimError;
use crate::estimate::CurveEstimate;
use crate::exec::{try_parallel_map, ExecPolicy};
use poisongame_core::{Algorithm1, Algorithm1Config};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One scaling measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Support size.
    pub n_radii: usize,
    /// Defender loss at the solved strategy.
    pub defender_loss: f64,
    /// Model-predicted accuracy (`baseline − loss`).
    pub predicted_accuracy: f64,
    /// Gradient iterations used.
    pub iterations: usize,
    /// Wall-clock solve time in microseconds.
    pub solve_micros: u128,
}

/// The full scaling experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingResults {
    /// One row per support size, ascending.
    pub rows: Vec<ScalingRow>,
}

impl ScalingResults {
    /// Accuracy gain from the largest support vs `n = plateau_n`
    /// (the paper: "roughly the same after n = 3").
    pub fn plateau_gain(&self, plateau_n: usize) -> Option<f64> {
        let at = self
            .rows
            .iter()
            .find(|r| r.n_radii == plateau_n)?
            .predicted_accuracy;
        let best = self
            .rows
            .iter()
            .map(|r| r.predicted_accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        Some(best - at)
    }
}

/// Solve Algorithm 1 for each support size and record quality + cost.
///
/// Runs sequentially: this experiment's point is the per-cell
/// `solve_micros` wall-clock, and concurrent cells would contend for
/// cores and distort it. Use [`run_scaling_with`] to trade timing
/// fidelity for throughput.
///
/// # Errors
///
/// Returns [`SimError::BadParameter`] for an empty size list and
/// propagates solver failures.
pub fn run_scaling(
    curves: &CurveEstimate,
    support_sizes: &[usize],
) -> Result<ScalingResults, SimError> {
    run_scaling_with(
        curves,
        support_sizes,
        &Algorithm1Config::default(),
        &ExecPolicy::sequential(),
    )
}

/// [`run_scaling`] with an explicit Algorithm 1 template (its
/// `n_radii` is overridden per cell — pass
/// `ExperimentConfig::algorithm1_config(0)` to inherit an
/// experiment's solver / warm-start knobs) and execution policy.
/// Support sizes fan out across the worker pool; all fields except
/// the wall-clock `solve_micros` are bit-identical at any thread
/// count (timing is inherently nondeterministic, sequential or not —
/// but under a parallel policy it additionally includes cross-cell
/// CPU contention, so use [`ExecPolicy::sequential`] when the
/// timings are the measurement).
///
/// # Errors
///
/// Returns [`SimError::BadParameter`] for an empty size list and
/// propagates solver failures.
pub fn run_scaling_with(
    curves: &CurveEstimate,
    support_sizes: &[usize],
    base: &Algorithm1Config,
    policy: &ExecPolicy,
) -> Result<ScalingResults, SimError> {
    if support_sizes.is_empty() {
        return Err(SimError::BadParameter {
            what: "support_sizes",
            value: 0.0,
        });
    }
    let game = curves.game()?;
    let rows = try_parallel_map(
        policy,
        support_sizes,
        |_, &n| -> Result<ScalingRow, SimError> {
            let solver = Algorithm1::new(Algorithm1Config {
                n_radii: n,
                ..base.clone()
            });
            let start = Instant::now();
            let result = solver.solve(&game)?;
            let elapsed = start.elapsed().as_micros();
            Ok(ScalingRow {
                n_radii: n,
                defender_loss: result.defender_loss,
                predicted_accuracy: (curves.baseline_accuracy - result.defender_loss)
                    .clamp(0.0, 1.0),
                iterations: result.iterations,
                solve_micros: elapsed,
            })
        },
    )?;
    Ok(ScalingResults { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_core::{CostCurve, EffectCurve};

    fn synthetic_estimate() -> CurveEstimate {
        let effect = EffectCurve::from_samples(&[
            (0.0, 2.0e-4),
            (0.05, 1.4e-4),
            (0.10, 9.0e-5),
            (0.20, 4.0e-5),
            (0.30, 1.5e-5),
            (0.40, 2.0e-6),
            (0.45, -1.0e-6),
        ])
        .unwrap();
        let cost = CostCurve::from_samples(&[
            (0.0, 0.0),
            (0.05, 0.004),
            (0.10, 0.009),
            (0.20, 0.022),
            (0.30, 0.040),
            (0.40, 0.065),
        ])
        .unwrap();
        CurveEstimate {
            effect_samples: vec![],
            cost_samples: vec![],
            effect,
            cost,
            baseline_accuracy: 0.92,
            n_poison: 644,
        }
    }

    #[test]
    fn losses_weakly_improve_with_support_size() {
        let r = run_scaling(&synthetic_estimate(), &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(r.rows.len(), 5);
        for w in r.rows.windows(2) {
            assert!(
                w[1].defender_loss <= w[0].defender_loss + 1e-4,
                "loss rose from n={} to n={}",
                w[0].n_radii,
                w[1].n_radii
            );
        }
    }

    #[test]
    fn accuracy_plateaus_after_three() {
        let r = run_scaling(&synthetic_estimate(), &[1, 2, 3, 4, 5]).unwrap();
        let gain = r.plateau_gain(3).unwrap();
        assert!(gain < 0.01, "accuracy still improving after n=3 by {gain}");
        assert!(r.plateau_gain(99).is_none());
    }

    #[test]
    fn empty_sizes_rejected() {
        assert!(run_scaling(&synthetic_estimate(), &[]).is_err());
    }

    #[test]
    fn rows_record_time_and_iterations() {
        let r = run_scaling(&synthetic_estimate(), &[2]).unwrap();
        assert!(r.rows[0].iterations > 0);
        // Wall-clock is platform-dependent; just require it recorded.
        assert!(r.rows[0].solve_micros > 0);
    }
}
