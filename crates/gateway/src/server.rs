//! The gateway server: HTTP/1.1 in, NDJSON out.
//!
//! Routing is a fixed table over the backend's request vocabulary:
//!
//! | Route | Backend request |
//! |---|---|
//! | `POST /v1/solve` | `solve` |
//! | `POST /v1/cell` | `cell` |
//! | `POST /v1/matrix` | `matrix` |
//! | `POST /v1/estimate` | `estimate` |
//! | `POST /v1/online` | `online` |
//! | `GET /v1/stats` | `stats` |
//! | `GET /v1/metrics` | `metrics`, rendered as Prometheus text |
//! | `GET /v1/events?since=N` | `events` |
//! | `POST /v1/resize` | `resize` |
//! | `POST /v1/shutdown` | `shutdown`, then the gateway stops |
//!
//! A POST body is the backend request document minus the envelope:
//! the gateway parses it as a JSON object, splices in its own `id`
//! and the route's `type`, and forwards the fields untouched — so
//! the backend's validation and optional envelope fields
//! (`deadline_ms`, per-request `seed` overrides) work over HTTP
//! exactly as over NDJSON, and a `200` body is byte-identical to the
//! NDJSON response's `result` document. The two observability GETs
//! are the exception to the JSON-in/JSON-out rule: `/v1/metrics`
//! fetches the backend's metric registry over NDJSON and renders it
//! as Prometheus text exposition 0.0.4 (so the gateway scrapes
//! correctly even when it fronts a separate server process), and
//! `/v1/events` accepts a `since` cursor as a query parameter rather
//! than a body. Structured backend errors map
//! to HTTP statuses (`busy` → 503, `deadline` → 504, `eval_failed` →
//! 422, `bad_request` → 400, `line_too_long` → 413, `shutting_down` →
//! 503) with the NDJSON `{"error": {code, message}}` object as the
//! body; backend transport failures are a 502.

use crate::http::{
    read_request, write_response, HttpError, HttpRequest, ReadOutcome, JSON_CONTENT_TYPE,
};
use crate::pool::BackendPool;
use poisongame_obs::{render_prometheus, PROMETHEUS_CONTENT_TYPE};
use poisongame_serve::error::ServeError;
use poisongame_serve::protocol::{ErrorCode, DEFAULT_MAX_LINE_BYTES};
use poisongame_serve::telemetry::registry_from_json;
use poisongame_sim::jsonio::{self, Json};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// HTTP bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Backend NDJSON server address.
    pub backend: String,
    /// Idle backend connections kept for reuse (one is borrowed per
    /// in-flight HTTP request; bursts beyond this dial extra
    /// connections that are closed on return).
    pub backend_pool: usize,
    /// Request-body byte cap (bodies become NDJSON frames, so this
    /// should not exceed the backend's line cap).
    pub max_body_bytes: usize,
    /// Response-frame byte cap when reading from the backend.
    pub backend_max_line_bytes: usize,
    /// Socket read-timeout granularity: how often an idle keep-alive
    /// connection polls for gateway shutdown.
    pub poll_interval_ms: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            backend: "127.0.0.1:7979".into(),
            backend_pool: 8,
            max_body_bytes: DEFAULT_MAX_LINE_BYTES,
            backend_max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            poll_interval_ms: 50,
        }
    }
}

struct GatewayInner {
    pool: BackendPool,
    stop: AtomicBool,
    max_body_bytes: usize,
    poll_interval: Duration,
    local_addr: SocketAddr,
}

/// A bound, not-yet-running gateway.
pub struct Gateway {
    listener: TcpListener,
    inner: Arc<GatewayInner>,
}

impl Gateway {
    /// Bind the HTTP listening socket. The backend is dialed lazily,
    /// per pooled connection — binding succeeds even while the
    /// backend is still starting.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(config: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Gateway {
            listener,
            inner: Arc::new(GatewayInner {
                pool: BackendPool::new(
                    config.backend,
                    config.backend_pool,
                    config.backend_max_line_bytes,
                ),
                stop: AtomicBool::new(false),
                max_body_bytes: config.max_body_bytes,
                poll_interval: Duration::from_millis(config.poll_interval_ms.max(1)),
                local_addr,
            }),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Serve until a `POST /v1/shutdown` request stops the gateway
    /// (after forwarding the shutdown to the backend). Joins every
    /// connection thread before returning, so a clean exit implies
    /// every accepted request was answered.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection errors only
    /// close that connection.
    pub fn run(self) -> io::Result<()> {
        let inner = self.inner;
        let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
        for accepted in self.listener.incoming() {
            if inner.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match accepted {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let inner = Arc::clone(&inner);
            let mut workers = workers.lock().expect("worker handles poisoned");
            // Reap finished connection threads so a long-running
            // gateway does not accumulate dead handles.
            workers.retain(|handle| !handle.is_finished());
            workers.push(thread::spawn(move || serve_connection(&inner, stream)));
        }
        for handle in workers.lock().expect("worker handles poisoned").drain(..) {
            let _ = handle.join();
        }
        Ok(())
    }

    /// [`Gateway::run`] on a background thread.
    pub fn spawn(self) -> GatewayHandle {
        GatewayHandle {
            thread: thread::spawn(move || self.run()),
        }
    }
}

/// Handle of a [`Gateway::spawn`]ed gateway.
pub struct GatewayHandle {
    thread: JoinHandle<io::Result<()>>,
}

impl GatewayHandle {
    /// Wait for the gateway to stop.
    ///
    /// # Errors
    ///
    /// Propagates the gateway's exit error (or a panic as an error).
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("gateway thread panicked"))?
    }
}

/// Serve one HTTP connection until it closes, errors, or the gateway
/// stops.
fn serve_connection(inner: &Arc<GatewayInner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.poll_interval));
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let should_stop = || inner.stop.load(Ordering::SeqCst);
    loop {
        let request = match read_request(&mut reader, inner.max_body_bytes, &should_stop) {
            Ok(ReadOutcome::Request(request)) => request,
            Ok(ReadOutcome::Closed) | Ok(ReadOutcome::Stopped) | Err(_) => return,
            Ok(ReadOutcome::Invalid(error)) => {
                let keep = !error.close;
                let _ = write_response(
                    &mut writer,
                    error.status,
                    JSON_CONTENT_TYPE,
                    &error.body(),
                    keep,
                );
                if keep {
                    continue;
                }
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let (status, content_type, body) = handle_request(inner, &request);
        if write_response(&mut writer, status, content_type, &body, keep_alive).is_err()
            || !keep_alive
        {
            return;
        }
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Route one request to the backend; returns
/// `(status, content-type, body)`.
fn handle_request(inner: &GatewayInner, request: &HttpRequest) -> (u16, &'static str, String) {
    let json_error = |error: HttpError| (error.status, JSON_CONTENT_TYPE, error.body());
    let route = match route_of(&request.method, &request.target) {
        Ok(route) => route,
        Err(error) => return json_error(error),
    };
    let fields = match route.takes_body {
        true => match body_fields(&request.body) {
            Ok(fields) => fields,
            Err(error) => return json_error(error),
        },
        false => route.query_fields,
    };
    let outcome = inner.pool.forward(route.type_name, &fields);
    if route.type_name == "shutdown" {
        // Stop the gateway with its backend; the accept loop is woken
        // by a self-connect so the drain cannot hang on `accept`.
        inner.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(inner.local_addr);
    }
    match outcome {
        Ok(result) => match route.rendering {
            Rendering::Json => (200, JSON_CONTENT_TYPE, result.render()),
            // The backend ships its registry as JSON; the gateway owns
            // the Prometheus text rendering so scrapes work across
            // process boundaries.
            Rendering::Prometheus => match registry_from_json(&result) {
                Ok(snapshot) => (200, PROMETHEUS_CONTENT_TYPE, render_prometheus(&snapshot)),
                Err(e) => json_error(HttpError::new(
                    502,
                    "bad_gateway",
                    format!("backend metrics document: {e}"),
                    false,
                )),
            },
        },
        Err(ServeError::Server { code, message }) => json_error(HttpError::new(
            status_of(code),
            code.as_str(),
            message,
            false,
        )),
        Err(e) => json_error(HttpError::new(
            502,
            "bad_gateway",
            format!("backend: {e}"),
            false,
        )),
    }
}

/// How a backend result becomes an HTTP body.
enum Rendering {
    /// Render the NDJSON `result` document verbatim.
    Json,
    /// Decode the result as a metric-registry document and render
    /// Prometheus text exposition format 0.0.4.
    Prometheus,
}

struct Route {
    type_name: &'static str,
    takes_body: bool,
    /// Envelope fields parsed from the query string (GET routes only;
    /// POST routes carry their fields in the body).
    query_fields: Vec<(String, Json)>,
    rendering: Rendering,
}

/// The fixed routing table. Unknown paths are a 404; known paths with
/// the wrong method are a 405. Only `/v1/events` takes a query string
/// (`?since=N`) — a query on any other path is a 404, exactly as
/// before query parsing existed.
fn route_of(method: &str, target: &str) -> Result<Route, HttpError> {
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    };
    let not_found = || {
        Err(HttpError::new(
            404,
            "not_found",
            format!("no route for `{target}`"),
            false,
        ))
    };
    let (expected_method, type_name, takes_body, rendering) = match path {
        "/v1/solve" => ("POST", "solve", true, Rendering::Json),
        "/v1/cell" => ("POST", "cell", true, Rendering::Json),
        "/v1/matrix" => ("POST", "matrix", true, Rendering::Json),
        "/v1/estimate" => ("POST", "estimate", true, Rendering::Json),
        "/v1/online" => ("POST", "online", true, Rendering::Json),
        "/v1/resize" => ("POST", "resize", true, Rendering::Json),
        "/v1/shutdown" => ("POST", "shutdown", false, Rendering::Json),
        "/v1/stats" => ("GET", "stats", false, Rendering::Json),
        "/v1/metrics" => ("GET", "metrics", false, Rendering::Prometheus),
        "/v1/events" => ("GET", "events", false, Rendering::Json),
        _ => return not_found(),
    };
    if query.is_some() && type_name != "events" {
        return not_found();
    }
    if method != expected_method {
        return Err(HttpError::new(
            405,
            "method_not_allowed",
            format!("`{target}` takes {expected_method}, not {method}"),
            false,
        ));
    }
    let query_fields = match type_name {
        "events" => events_query_fields(query)?,
        _ => Vec::new(),
    };
    Ok(Route {
        type_name,
        takes_body,
        query_fields,
        rendering,
    })
}

/// Parse `/v1/events`' query string: `since=N` (decimal u64) is the
/// only recognized parameter; anything else is a 400.
fn events_query_fields(query: Option<&str>) -> Result<Vec<(String, Json)>, HttpError> {
    let bad = |message: String| HttpError::new(400, "bad_request", message, false);
    let Some(query) = query else {
        return Ok(Vec::new());
    };
    let mut fields = Vec::new();
    for pair in query.split('&').filter(|pair| !pair.is_empty()) {
        match pair.split_once('=') {
            Some(("since", value)) => {
                let since = value
                    .parse::<u64>()
                    .map_err(|_| bad(format!("invalid since cursor `{value}`")))?;
                // Rides the NDJSON envelope in the backend's big-u64
                // form (number, or decimal string past 2^53).
                fields.push(("since".to_string(), jsonio::big_u64_to_json(since)));
            }
            _ => return Err(bad(format!("unrecognized query parameter `{pair}`"))),
        }
    }
    Ok(fields)
}

/// Parse a POST body into the forwarded field list: a JSON object
/// whose keys must not collide with the envelope the gateway owns.
fn body_fields(body: &[u8]) -> Result<Vec<(String, Json)>, HttpError> {
    let bad = |message: String| HttpError::new(400, "bad_request", message, false);
    let text =
        std::str::from_utf8(body).map_err(|_| bad("request body is not valid UTF-8".into()))?;
    let value = Json::parse(text).map_err(|e| bad(format!("request body: {e}")))?;
    let Json::Obj(fields) = value else {
        return Err(bad("request body must be a JSON object".into()));
    };
    for (key, _) in &fields {
        if key == "id" || key == "type" {
            return Err(bad(format!(
                "request body must not set `{key}`; the gateway owns the envelope"
            )));
        }
    }
    Ok(fields)
}

/// HTTP status for each structured backend error class.
fn status_of(code: ErrorCode) -> u16 {
    match code {
        ErrorCode::BadRequest => 400,
        ErrorCode::Busy | ErrorCode::ShuttingDown => 503,
        ErrorCode::Deadline => 504,
        ErrorCode::EvalFailed => 422,
        ErrorCode::LineTooLong => 413,
        // ErrorCode is non_exhaustive; surface unknown classes as a
        // gateway-side mapping failure rather than a success.
        _ => 500,
    }
}
