//! Threat model: budget and knowledge assumptions.

use crate::error::AttackError;
use serde::{Deserialize, Serialize};

/// What the attacker knows when choosing a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Knowledge {
    /// Full knowledge of data, model and the defender's (pure)
    /// strategy — the paper's pure-strategy scenario, where the optimal
    /// attack hugs the filter boundary.
    Full,
    /// Knows the defender's *mixed* strategy distribution but not the
    /// sampled realization — the equilibrium scenario.
    DistributionOnly,
    /// No knowledge of the defense (baseline attacks).
    Oblivious,
}

/// The attacker's capability envelope.
///
/// The paper's experiment: "We assumed that the attacker can manipulate
/// 20% of the training data" → `budget_fraction = 0.2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreatModel {
    /// Fraction of the clean training-set size the attacker may inject.
    pub budget_fraction: f64,
    /// Knowledge level.
    pub knowledge: Knowledge,
}

impl ThreatModel {
    /// The paper's experimental threat model (20 % budget, full
    /// knowledge).
    pub fn paper() -> Self {
        Self {
            budget_fraction: 0.2,
            knowledge: Knowledge::Full,
        }
    }

    /// A validated threat model: the budget fraction is checked once
    /// here instead of on every budget query (the removed historical
    /// `poison_count` re-validated per call).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadParameter`] for a fraction outside
    /// `[0, 1]` (or NaN).
    pub fn new(budget_fraction: f64, knowledge: Knowledge) -> Result<Self, AttackError> {
        if !(0.0..=1.0).contains(&budget_fraction) || budget_fraction.is_nan() {
            return Err(AttackError::BadParameter {
                what: "budget_fraction",
                value: budget_fraction,
            });
        }
        Ok(Self {
            budget_fraction,
            knowledge,
        })
    }

    /// Number of poison points for a clean training set of `clean_len`
    /// points (nearest rounding).
    ///
    /// Assumes a valid budget fraction — construct via
    /// [`ThreatModel::new`] to guarantee it. A fraction tampered with
    /// after construction (the fields are public) is clamped to
    /// `[0, 1]` rather than trusted.
    pub fn budget_points(&self, clean_len: usize) -> usize {
        let fraction = if self.budget_fraction.is_nan() {
            0.0
        } else {
            self.budget_fraction.clamp(0.0, 1.0)
        };
        (clean_len as f64 * fraction).round() as usize
    }
}

impl Default for ThreatModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threat_model() {
        let t = ThreatModel::paper();
        assert_eq!(t.budget_fraction, 0.2);
        assert_eq!(t.budget_points(3220), 644);
    }

    #[test]
    fn zero_budget_allows_nothing() {
        let t = ThreatModel::new(0.0, Knowledge::Oblivious).unwrap();
        assert_eq!(t.budget_points(1000), 0);
    }

    #[test]
    fn construction_rejects_invalid_fractions() {
        for bad in [-0.1, 1.5, f64::NAN] {
            assert!(
                ThreatModel::new(bad, Knowledge::Full).is_err(),
                "{bad} accepted"
            );
        }
        assert!(ThreatModel::new(0.0, Knowledge::Full).is_ok());
        assert!(ThreatModel::new(1.0, Knowledge::Full).is_ok());
    }

    #[test]
    fn rounding_is_nearest() {
        let t = ThreatModel::new(0.1, Knowledge::Full).unwrap();
        assert_eq!(t.budget_points(15), 2); // 1.5 rounds to 2
    }

    #[test]
    fn tampered_fractions_are_clamped_not_trusted() {
        // The fields are public: a fraction mutated past validation is
        // clamped by `budget_points` instead of producing a bogus
        // budget (the contract the removed per-call `poison_count`
        // used to enforce with an error).
        let mut t = ThreatModel::paper();
        t.budget_fraction = 1.5;
        assert_eq!(t.budget_points(10), 10);
        t.budget_fraction = f64::NAN;
        assert_eq!(t.budget_points(10), 0);
    }
}
