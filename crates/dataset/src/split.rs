//! Seeded train/test splitting and cross-validation folds.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::label::Label;
use poisongame_linalg::rng::{shuffled_indices, Xoshiro256StarStar};

/// Randomly split into `(train, test)` with the given test fraction.
///
/// The paper's experiment uses `test_fraction = 0.3` on 4601 points
/// (3220 train / 1381 test).
///
/// # Errors
///
/// Returns [`DataError::BadFraction`] for a fraction outside `(0, 1)`
/// and [`DataError::DegenerateSplit`] if either side would be empty.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut Xoshiro256StarStar,
) -> Result<(Dataset, Dataset), DataError> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 || test_fraction.is_nan() {
        return Err(DataError::BadFraction {
            what: "test_fraction",
            value: test_fraction,
        });
    }
    let n = data.len();
    let n_test = (n as f64 * test_fraction).round() as usize;
    if n_test == 0 || n_test == n {
        return Err(DataError::DegenerateSplit);
    }
    let idx = shuffled_indices(n, rng);
    let test_idx = &idx[..n_test];
    let train_idx = &idx[n_test..];
    Ok((data.select(train_idx), data.select(test_idx)))
}

/// Split preserving the class ratio on both sides (stratified holdout).
///
/// # Errors
///
/// Same as [`train_test_split`], plus [`DataError::MissingClass`] if a
/// class is absent, and [`DataError::DegenerateSplit`] if a class is too
/// small to appear on both sides.
pub fn stratified_split(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut Xoshiro256StarStar,
) -> Result<(Dataset, Dataset), DataError> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 || test_fraction.is_nan() {
        return Err(DataError::BadFraction {
            what: "test_fraction",
            value: test_fraction,
        });
    }
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for label in Label::both() {
        let class_idx = data.class_indices(label);
        if class_idx.is_empty() {
            return Err(DataError::MissingClass);
        }
        let order = shuffled_indices(class_idx.len(), rng);
        let n_test = (class_idx.len() as f64 * test_fraction).round() as usize;
        if n_test == 0 || n_test == class_idx.len() {
            return Err(DataError::DegenerateSplit);
        }
        for (k, &o) in order.iter().enumerate() {
            if k < n_test {
                test_idx.push(class_idx[o]);
            } else {
                train_idx.push(class_idx[o]);
            }
        }
    }
    // Shuffle the merged sides so class blocks are not contiguous.
    let train_order = shuffled_indices(train_idx.len(), rng);
    let test_order = shuffled_indices(test_idx.len(), rng);
    let train_final: Vec<usize> = train_order.iter().map(|&i| train_idx[i]).collect();
    let test_final: Vec<usize> = test_order.iter().map(|&i| test_idx[i]).collect();
    Ok((data.select(&train_final), data.select(&test_final)))
}

/// `k`-fold index partition for cross-validation. Folds differ in size
/// by at most one.
///
/// # Errors
///
/// Returns [`DataError::BadFraction`] if `k < 2` or
/// [`DataError::DegenerateSplit`] if `k > data.len()`.
pub fn k_fold_indices(
    data: &Dataset,
    k: usize,
    rng: &mut Xoshiro256StarStar,
) -> Result<Vec<Vec<usize>>, DataError> {
    if k < 2 {
        return Err(DataError::BadFraction {
            what: "k",
            value: k as f64,
        });
    }
    if k > data.len() {
        return Err(DataError::DegenerateSplit);
    }
    let idx = shuffled_indices(data.len(), rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &point) in idx.iter().enumerate() {
        folds[i % k].push(point);
    }
    Ok(folds)
}

/// Train/test datasets for fold `fold` of a `k`-fold partition.
pub fn fold_split(data: &Dataset, folds: &[Vec<usize>], fold: usize) -> (Dataset, Dataset) {
    assert!(fold < folds.len(), "fold index out of range");
    let test_idx = &folds[fold];
    let train_idx: Vec<usize> = folds
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != fold)
        .flat_map(|(_, f)| f.iter().copied())
        .collect();
    (data.select(&train_idx), data.select(test_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let labels: Vec<Label> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    Label::Positive
                } else {
                    Label::Negative
                }
            })
            .collect();
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn split_sizes_match_fraction() {
        let d = toy(100);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let (train, test) = train_test_split(&d, 0.3, &mut rng).unwrap();
        assert_eq!(test.len(), 30);
        assert_eq!(train.len(), 70);
    }

    #[test]
    fn split_is_a_partition() {
        let d = toy(50);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let (train, test) = train_test_split(&d, 0.2, &mut rng).unwrap();
        let mut seen: Vec<f64> = train.iter().chain(test.iter()).map(|(x, _)| x[0]).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let d = toy(10);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        assert!(train_test_split(&d, 0.0, &mut rng).is_err());
        assert!(train_test_split(&d, 1.0, &mut rng).is_err());
        assert!(train_test_split(&d, -0.5, &mut rng).is_err());
        assert!(train_test_split(&d, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn split_rejects_degenerate() {
        let d = toy(3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        assert!(matches!(
            train_test_split(&d, 0.01, &mut rng).unwrap_err(),
            DataError::DegenerateSplit
        ));
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy(40);
        let mut r1 = Xoshiro256StarStar::seed_from_u64(9);
        let mut r2 = Xoshiro256StarStar::seed_from_u64(9);
        let (a, _) = train_test_split(&d, 0.25, &mut r1).unwrap();
        let (b, _) = train_test_split(&d, 0.25, &mut r2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stratified_preserves_ratio() {
        let d = toy(90); // 30 positive, 60 negative
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let (train, test) = stratified_split(&d, 0.3, &mut rng).unwrap();
        assert_eq!(test.class_count(Label::Positive), 9);
        assert_eq!(test.class_count(Label::Negative), 18);
        assert_eq!(train.class_count(Label::Positive), 21);
    }

    #[test]
    fn stratified_needs_both_classes() {
        let d = Dataset::from_rows(
            vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            vec![Label::Negative; 4],
        )
        .unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        assert!(matches!(
            stratified_split(&d, 0.5, &mut rng).unwrap_err(),
            DataError::MissingClass
        ));
    }

    #[test]
    fn k_fold_partitions_everything() {
        let d = toy(23);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let folds = k_fold_indices(&d, 5, &mut rng).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().all(|&s| s == 4 || s == 5));
    }

    #[test]
    fn k_fold_validation() {
        let d = toy(5);
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        assert!(k_fold_indices(&d, 1, &mut rng).is_err());
        assert!(k_fold_indices(&d, 6, &mut rng).is_err());
    }

    #[test]
    fn fold_split_assembles_complement() {
        let d = toy(10);
        let mut rng = Xoshiro256StarStar::seed_from_u64(10);
        let folds = k_fold_indices(&d, 2, &mut rng).unwrap();
        let (train, test) = fold_split(&d, &folds, 0);
        assert_eq!(train.len() + test.len(), 10);
        assert_eq!(test.len(), folds[0].len());
    }
}
