//! Closed-loop load generator for the serving tier: N connections ×
//! (M requests | a wall-clock duration) of a mixed workload (`cell`,
//! `solve`, `estimate`), against either the raw NDJSON port or the
//! HTTP gateway, verifying zero dropped and zero mismatched responses
//! and reporting latency percentiles, per-shard cache hit rates, and
//! a training-time breakdown (prep vs fit vs eval).
//!
//! The workload is a deterministic 20-request cycle (4 kinds × 5
//! seeds), identical on every connection — so every response is
//! comparable against the canonical response for its cycle slot, and
//! any divergence (across connections, shard counts or transports) is
//! a determinism bug that fails the run.
//!
//! ```sh
//! cargo run --release --example load_test                     # in-process server, 4×25
//! cargo run --release --example load_test -- --connections 40 --shards 4
//! cargo run --release --example load_test -- --gateway --duration 10
//! cargo run --release --example load_test -- --addr 127.0.0.1:7979 --shutdown
//! ```
//!
//! Options: `--addr HOST:PORT` (absent: spawn an in-process server —
//! and, with `--gateway`, an in-process gateway — on ephemeral
//! ports), `--gateway` (drive HTTP through the gateway; with
//! `--addr`, the address is the gateway's), `--connections N`,
//! `--requests M`, `--duration SECS` (run until the wall clock
//! instead of a fixed count; overrides `--requests`), `--shards N`
//! (shard count for the in-process server), `--shutdown` (drain the
//! server at the end; implied in-process), `--json PATH` (write the
//! machine-readable summary — the seed of the `BENCH_*.json` perf
//! trajectory), `--dataset REL` (drive the `cell`/`estimate` slots
//! through a `{"type":"file"}` source naming `REL` — a path relative
//! to the server's data dir; absent files fall back to the synthetic
//! generator so the run stays offline-green), `--data-dir DIR` (data
//! root for the in-process server; defaults to `.` when `--dataset`
//! is set).

use poisongame::gateway::client::HttpClient;
use poisongame::gateway::server::{Gateway, GatewayConfig};
use poisongame::serve::client::Client;
use poisongame::serve::protocol::{
    CellRequest, EstimateRequest, Request, RequestKind, ServerStats, SolveRequest,
};
use poisongame::serve::server::{Server, ServerConfig};
use poisongame::sim::jsonio::{self, Json};
use poisongame::sim::pipeline::{DataSource, ExperimentConfig};
use poisongame::sim::scenario::{DefenseSpec, LearnerSpec, Scenario};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Length of the deterministic request cycle: `request_for(i)` depends
/// only on `i % CYCLE` (4 kinds × 5 seeds).
const CYCLE: usize = 20;

fn quick_config(seed: u64, dataset: Option<&str>) -> ExperimentConfig {
    let source = match dataset {
        // File-source workload: the server resolves `path` under its
        // data dir; an absent file falls back to the synthetic
        // generator, so the cycle stays deterministic either way.
        Some(path) => DataSource::File {
            path: path.to_string(),
            checksum: None,
            format: "spambase".to_string(),
            chunk_rows: Some(256),
            max_inflight_chunks: None,
        },
        None => DataSource::SyntheticSpambase { rows: 300 },
    };
    ExperimentConfig {
        seed,
        source,
        epochs: 20,
        ..ExperimentConfig::paper()
    }
}

/// The deterministic mixed workload: request `i` is the same on every
/// connection. Seeds cycle over a handful of values so the shared
/// preparation cache sees both misses and hits.
fn request_for(i: usize, dataset: Option<&str>) -> RequestKind {
    let seed = 100 + (i as u64 % 5);
    match i % 4 {
        0 => RequestKind::Cell(CellRequest {
            config: quick_config(seed, dataset),
            ..CellRequest::default()
        }),
        1 => RequestKind::Solve(SolveRequest {
            effect_samples: vec![(0.0, 2.0e-4), (0.1, 9.0e-5), (0.3, 1.5e-5), (0.45, -1.0e-6)],
            cost_samples: vec![(0.0, 0.0), (0.1, 0.009), (0.3, 0.04)],
            n_points: 644,
            resolution: 40,
            ..SolveRequest::default()
        }),
        2 => RequestKind::Estimate(EstimateRequest {
            config: quick_config(seed, dataset),
            placements: vec![0.05, 0.2],
            strengths: vec![0.0, 0.2],
        }),
        _ => RequestKind::Cell(CellRequest {
            config: quick_config(seed, dataset),
            scenario: Scenario::builder()
                .defense(DefenseSpec::Knn { k: 5 })
                .learner(LearnerSpec::LogReg)
                .build(),
            ..CellRequest::default()
        }),
    }
}

/// One precomputed cycle slot, ready for either transport.
struct Slot {
    kind: RequestKind,
    /// HTTP form: the gateway route and the request document minus
    /// the `id`/`type` envelope the gateway owns.
    route: String,
    body: String,
}

fn build_slots(dataset: Option<&str>) -> Vec<Slot> {
    (0..CYCLE)
        .map(|i| {
            let kind = request_for(i, dataset);
            let route = format!("/v1/{}", kind.type_name());
            let doc = Request {
                id: 0,
                deadline_ms: None,
                kind: kind.clone(),
            }
            .to_line();
            let Json::Obj(fields) = Json::parse(doc.trim_end()).expect("request renders as JSON")
            else {
                unreachable!("request documents are objects")
            };
            let body = Json::Obj(
                fields
                    .into_iter()
                    .filter(|(key, _)| key != "id" && key != "type")
                    .collect(),
            )
            .render();
            Slot { kind, route, body }
        })
        .collect()
}

/// One load connection over either wire format. Both return the
/// response's result document as a rendered string — byte-comparable
/// across transports by construction.
enum Transport {
    Ndjson(Client),
    Http(HttpClient),
}

impl Transport {
    fn connect(addr: &str, gateway: bool) -> Result<Transport, String> {
        Ok(if gateway {
            Transport::Http(HttpClient::connect(addr).map_err(|e| e.to_string())?)
        } else {
            Transport::Ndjson(Client::connect(addr).map_err(|e| e.to_string())?)
        })
    }

    fn call(&mut self, slot: &Slot) -> Result<String, String> {
        match self {
            Transport::Ndjson(client) => client
                .call(slot.kind.clone(), None)
                .map(|result| result.render())
                .map_err(|e| e.to_string()),
            Transport::Http(client) => {
                let response = client
                    .post(&slot.route, &slot.body)
                    .map_err(|e| e.to_string())?;
                if response.status != 200 {
                    return Err(format!("HTTP {}: {}", response.status, response.body));
                }
                Ok(response.body)
            }
        }
    }
}

fn percentile(sorted_micros: &[u128], p: f64) -> u128 {
    let index = ((sorted_micros.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_micros[index]
}

/// The machine-readable run summary `--json` writes: the seed of the
/// `BENCH_*.json` perf trajectory, so successive PRs can chart
/// throughput/latency/cache-rate over time.
fn summary_json(
    args: &Args,
    total: usize,
    elapsed: Duration,
    sorted_micros: &[u128],
    stats: &ServerStats,
) -> Json {
    let ms = |micros: u128| micros as f64 / 1000.0;
    let shards: Vec<Json> = stats
        .shards
        .iter()
        .map(|shard| {
            Json::obj(vec![
                ("index", Json::Num(shard.index as f64)),
                ("completed", jsonio::big_u64_to_json(shard.completed)),
                ("cache_hits", jsonio::big_u64_to_json(shard.cache_hits)),
                ("cache_misses", jsonio::big_u64_to_json(shard.cache_misses)),
                (
                    "cache_evictions",
                    jsonio::big_u64_to_json(shard.cache_evictions),
                ),
                ("cache_hit_rate", Json::Num(shard.cache_hit_rate())),
                ("busy_micros", jsonio::big_u64_to_json(shard.busy_micros)),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "transport",
            Json::str(if args.gateway { "http" } else { "ndjson" }),
        ),
        (
            "dataset",
            args.dataset.as_deref().map_or(Json::Null, Json::str),
        ),
        ("connections", Json::Num(args.connections as f64)),
        (
            "requests_per_connection",
            match args.duration_secs {
                Some(_) => Json::Null,
                None => Json::Num(args.requests as f64),
            },
        ),
        (
            "duration_secs",
            args.duration_secs.map_or(Json::Null, Json::Num),
        ),
        ("total_requests", Json::Num(total as f64)),
        ("elapsed_secs", Json::Num(elapsed.as_secs_f64())),
        (
            "throughput_rps",
            Json::Num(total as f64 / elapsed.as_secs_f64()),
        ),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::Num(ms(percentile(sorted_micros, 50.0)))),
                ("p99", Json::Num(ms(percentile(sorted_micros, 99.0)))),
                ("max", Json::Num(ms(sorted_micros[sorted_micros.len() - 1]))),
            ]),
        ),
        (
            "server",
            Json::obj(vec![
                ("received", jsonio::big_u64_to_json(stats.received)),
                ("completed", jsonio::big_u64_to_json(stats.completed)),
                ("shed", jsonio::big_u64_to_json(stats.shed)),
                ("expired", jsonio::big_u64_to_json(stats.expired)),
                ("failed", jsonio::big_u64_to_json(stats.failed)),
            ]),
        ),
        (
            "prep_cache",
            Json::obj(vec![
                ("hits", jsonio::big_u64_to_json(stats.cache_hits)),
                ("misses", jsonio::big_u64_to_json(stats.cache_misses)),
                ("evictions", jsonio::big_u64_to_json(stats.cache_evictions)),
                ("hit_rate", Json::Num(stats.cache_hit_rate())),
                ("entries", Json::Num(stats.cache_entries as f64)),
            ]),
        ),
        ("shards", Json::Arr(shards)),
        (
            "training",
            Json::obj(vec![
                ("prep_micros", jsonio::big_u64_to_json(stats.prep_micros)),
                ("fit_micros", jsonio::big_u64_to_json(stats.fit_micros)),
                ("eval_micros", jsonio::big_u64_to_json(stats.eval_micros)),
            ]),
        ),
        (
            "pool",
            Json::obj(vec![
                ("tasks", jsonio::big_u64_to_json(stats.pool_tasks)),
                ("inline", jsonio::big_u64_to_json(stats.pool_inline)),
                ("steals", jsonio::big_u64_to_json(stats.pool_steals)),
                ("parks", jsonio::big_u64_to_json(stats.pool_parks)),
                ("batches", jsonio::big_u64_to_json(stats.pool_batches)),
            ]),
        ),
        // Server-side histograms (the telemetry layer's wire form):
        // per-kind duration/queue-wait percentiles, shed and
        // deadline-miss counters, event-log cursors.
        (
            "telemetry",
            stats
                .telemetry
                .as_ref()
                .map_or(Json::Null, |telemetry| telemetry.to_json()),
        ),
    ])
}

struct Args {
    addr: Option<String>,
    connections: usize,
    requests: usize,
    duration_secs: Option<f64>,
    gateway: bool,
    shards: usize,
    shutdown: bool,
    json: Option<String>,
    dataset: Option<String>,
    data_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: None,
        connections: 4,
        requests: 25,
        duration_secs: None,
        gateway: false,
        shards: 1,
        shutdown: false,
        json: None,
        dataset: None,
        data_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("`{what}` needs a value"));
        match flag.as_str() {
            "--addr" => out.addr = Some(value("--addr")?),
            "--connections" => {
                out.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--requests" => {
                out.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--duration" => {
                out.duration_secs = Some(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--gateway" => out.gateway = true,
            "--shards" => {
                out.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--shutdown" => out.shutdown = true,
            "--json" => out.json = Some(value("--json")?),
            "--dataset" => out.dataset = Some(value("--dataset")?),
            "--data-dir" => out.data_dir = Some(value("--data-dir")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.connections == 0 || out.requests == 0 {
        return Err("--connections and --requests must both be at least 1".into());
    }
    if out.duration_secs.is_some_and(|secs| secs <= 0.0) {
        return Err("--duration must be positive".into());
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| {
        eprintln!("usage error: {e} (see the doc comment at the top of examples/load_test.rs)");
        e
    })?;

    // No --addr: bring up an in-process server — and with --gateway,
    // an in-process gateway in front of it — on ephemeral ports.
    let mut server_handle = None;
    let mut gateway_handle = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            // With a file-source workload the in-process server needs
            // a data root; default it to the working directory.
            let data_dir = args
                .data_dir
                .clone()
                .or_else(|| args.dataset.as_ref().map(|_| ".".to_string()))
                .map(std::path::PathBuf::from);
            let server = Server::bind(ServerConfig {
                shards: args.shards,
                data_dir,
                ..ServerConfig::default()
            })?;
            let backend = server.local_addr()?.to_string();
            println!(
                "spawned in-process server on {backend} ({} shard{})",
                args.shards,
                if args.shards == 1 { "" } else { "s" }
            );
            server_handle = Some(server.spawn());
            if args.gateway {
                let gateway = Gateway::bind(GatewayConfig {
                    backend: backend.clone(),
                    backend_pool: args.connections.min(64),
                    ..GatewayConfig::default()
                })?;
                let front = gateway.local_addr().to_string();
                println!("spawned in-process gateway on http://{front}");
                gateway_handle = Some(gateway.spawn());
                front
            } else {
                backend
            }
        }
    };

    match args.duration_secs {
        Some(secs) => println!(
            "load test: {} connections × {secs:.1}s (closed loop, {}) against {addr}\n",
            args.connections,
            if args.gateway { "HTTP" } else { "NDJSON" },
        ),
        None => println!(
            "load test: {} connections × {} requests (closed loop, {}) against {addr}\n",
            args.connections,
            args.requests,
            if args.gateway { "HTTP" } else { "NDJSON" },
        ),
    }
    let slots = Arc::new(build_slots(args.dataset.as_deref()));
    let started = Instant::now();
    let stop_at = args
        .duration_secs
        .map(|secs| started + Duration::from_secs_f64(secs));

    // One closed-loop client per connection: send, wait, repeat.
    let mut threads = Vec::new();
    for _ in 0..args.connections {
        let addr = addr.clone();
        let slots = Arc::clone(&slots);
        let requests = args.requests;
        let gateway = args.gateway;
        threads.push(std::thread::spawn(
            move || -> Result<(Vec<String>, Vec<u128>), String> {
                let mut transport = Transport::connect(&addr, gateway)?;
                let mut results = Vec::with_capacity(requests);
                let mut latencies = Vec::with_capacity(requests);
                let mut i = 0usize;
                loop {
                    match stop_at {
                        Some(at) if Instant::now() >= at => break,
                        Some(_) => {}
                        None if i >= requests => break,
                        None => {}
                    }
                    let t0 = Instant::now();
                    let result = transport
                        .call(&slots[i % CYCLE])
                        .map_err(|e| format!("request {i}: {e}"))?;
                    latencies.push(t0.elapsed().as_micros());
                    results.push(result);
                    i += 1;
                }
                Ok((results, latencies))
            },
        ));
    }

    let mut per_connection: Vec<Vec<String>> = Vec::new();
    let mut all_latencies: Vec<u128> = Vec::new();
    for (c, thread) in threads.into_iter().enumerate() {
        let (results, latencies) = thread
            .join()
            .map_err(|_| "client thread panicked")?
            .map_err(|e| format!("connection {c}: {e}"))?;
        per_connection.push(results);
        all_latencies.extend(latencies);
    }
    let elapsed = started.elapsed();
    let total = all_latencies.len();

    // Zero dropped: in fixed-count mode every connection produced
    // every response (duration mode has no fixed target; a dropped
    // response there surfaces as a thread error above).
    if args.duration_secs.is_none() {
        assert_eq!(total, args.connections * args.requests, "dropped responses");
    }
    // Zero mismatched: every response must equal the canonical
    // response for its cycle slot — across iterations, connections,
    // shard counts and transports.
    let mut canonical: Vec<Option<&String>> = vec![None; CYCLE];
    let mut mismatches = 0usize;
    for (c, results) in per_connection.iter().enumerate() {
        for (i, result) in results.iter().enumerate() {
            match canonical[i % CYCLE] {
                None => canonical[i % CYCLE] = Some(result),
                Some(expected) if expected == result => {}
                Some(_) => {
                    mismatches += 1;
                    eprintln!("MISMATCH on connection {c}, request {i}");
                }
            }
        }
    }

    all_latencies.sort_unstable();
    println!(
        "completed {total} requests in {:.2}s",
        elapsed.as_secs_f64()
    );
    println!(
        "  throughput: {:.1} req/s | latency p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        total as f64 / elapsed.as_secs_f64(),
        percentile(&all_latencies, 50.0) as f64 / 1000.0,
        percentile(&all_latencies, 99.0) as f64 / 1000.0,
        all_latencies[all_latencies.len() - 1] as f64 / 1000.0,
    );

    // Server-side view: admission counters and per-shard cache
    // traffic, over whichever wire the run used.
    let mut stats_client = Transport::connect(&addr, args.gateway)?;
    let stats = match &mut stats_client {
        Transport::Ndjson(client) => client.stats()?,
        Transport::Http(client) => {
            let response = client.get("/v1/stats")?;
            ServerStats::from_json(&Json::parse(&response.body)?)?
        }
    };
    println!(
        "  server: received {} | completed {} | shed {} | expired {} | failed {}",
        stats.received, stats.completed, stats.shed, stats.expired, stats.failed
    );
    println!(
        "  prep cache: {:.0}% hit rate ({} hits / {} misses / {} evictions, {} resident, bound {})",
        stats.cache_hit_rate() * 100.0,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_entries,
        stats
            .cache_capacity
            .map_or("none".to_string(), |c| c.to_string()),
    );
    for shard in &stats.shards {
        println!(
            "  shard {}: completed {} | {:.0}% cache hit rate ({} hits / {} misses / {} evictions) | busy {:.1} ms",
            shard.index,
            shard.completed,
            shard.cache_hit_rate() * 100.0,
            shard.cache_hits,
            shard.cache_misses,
            shard.cache_evictions,
            shard.busy_micros as f64 / 1000.0,
        );
    }
    // Server-side per-kind latency histograms — the measured-inside
    // complement of the client-side percentiles above. The bucketed
    // percentiles must be internally ordered; a violation means the
    // histogram itself regressed, so it fails the run.
    if let Some(telemetry) = &stats.telemetry {
        let ms = |nanos: u64| nanos as f64 / 1e6;
        for kind in telemetry.kinds.iter().filter(|k| k.count > 0) {
            println!(
                "  server latency [{}]: p50 {:.1} ms | p99 {:.1} ms | max {:.1} ms | queue-wait p99 {:.1} ms ({} served)",
                kind.kind,
                ms(kind.duration_p50_nanos),
                ms(kind.duration_p99_nanos),
                ms(kind.duration_max_nanos),
                ms(kind.queue_wait_p99_nanos),
                kind.count,
            );
            assert!(
                kind.duration_p99_nanos >= kind.duration_p50_nanos
                    && kind.duration_max_nanos >= kind.duration_p99_nanos,
                "server-side duration percentiles out of order for `{}`: {kind:?}",
                kind.kind,
            );
            assert!(
                kind.queue_wait_p99_nanos >= kind.queue_wait_p50_nanos,
                "server-side queue-wait percentiles out of order for `{}`: {kind:?}",
                kind.kind,
            );
        }
        println!(
            "  events: {} logged ({} dropped) | shed {} | deadline missed {}",
            telemetry.events_logged,
            telemetry.events_dropped,
            telemetry.shed,
            telemetry.deadline_missed,
        );
    }
    // Where the server spent its training time (process-global
    // counters, so this covers every cell the server has run).
    let total_micros = stats.prep_micros + stats.fit_micros + stats.eval_micros;
    let share = |micros: u64| {
        if total_micros == 0 {
            0.0
        } else {
            micros as f64 / total_micros as f64 * 100.0
        }
    };
    println!(
        "  training time: prep {:.1} ms ({:.0}%) | fit {:.1} ms ({:.0}%) | eval {:.1} ms ({:.0}%)",
        stats.prep_micros as f64 / 1000.0,
        share(stats.prep_micros),
        stats.fit_micros as f64 / 1000.0,
        share(stats.fit_micros),
        stats.eval_micros as f64 / 1000.0,
        share(stats.eval_micros),
    );
    // Shared worker-pool traffic: how the server's batches were
    // actually executed (worker tasks vs inline participation).
    println!(
        "  worker pool: {} batches | {} worker tasks | {} inline | {} steals | {} parks",
        stats.pool_batches,
        stats.pool_tasks,
        stats.pool_inline,
        stats.pool_steals,
        stats.pool_parks,
    );
    if let Some(path) = &args.json {
        let doc = summary_json(&args, total, elapsed, &all_latencies, &stats);
        std::fs::write(path, format!("{}\n", doc.render()))?;
        println!("  wrote JSON summary to {path}");
    }
    if args.shutdown || server_handle.is_some() {
        match &mut stats_client {
            Transport::Ndjson(client) => {
                client.shutdown()?;
            }
            Transport::Http(client) => {
                let response = client.post("/v1/shutdown", "")?;
                assert_eq!(response.status, 200, "shutdown failed: {}", response.body);
            }
        }
        println!("  shutdown requested; server draining");
    }
    if let Some(handle) = gateway_handle {
        handle.join()?;
        println!("  in-process gateway exited cleanly");
    }
    if let Some(handle) = server_handle {
        handle.join()?;
        println!("  in-process server exited cleanly");
    }

    assert_eq!(mismatches, 0, "{mismatches} mismatched responses");
    println!("\nzero dropped, zero mismatched responses — OK");
    Ok(())
}
