//! Per-round payoff providers: how a pure `(attack level, defense)`
//! action pair is scored.
//!
//! Full-information no-regret play needs the payoff of every action
//! pair sooner or later, so a provider's job is *how* (and how fast)
//! entries materialize, not whether:
//!
//! * [`MatrixPayoff`] — a precomputed [`MatrixGame`] (the paper's
//!   discretized game, or anything else): every round is pure
//!   matrix-vector work, so horizons of `T ≥ 10k` rounds run at solver
//!   speed. This is the memoized payoff-matrix mode.
//! * [`EnginePayoff`] — scores entry `(i, j)` by **actually running**
//!   the configured attack × defense × learner cell: poison the
//!   training batch at placement `placements[i]`, sanitize at strength
//!   `strengths[j]`, train, evaluate. Every query goes through the
//!   [`EvalEngine`], so repeated queries for the same dataset hit the
//!   `PrepCache` instead of re-preparing data, and each computed entry
//!   is memoized locally — after the matrix fills once, play runs at
//!   matrix speed.
//!
//! The attacker's payoff for a cell is the **accuracy drop** against
//! the clean unfiltered baseline — exactly the paper's
//! `U = damage + Γ`: poison that survives the filter keeps the drop
//! large, and an aggressive filter pays its own genuine-removal cost
//! even when the poison dies.
//!
//! Determinism: entry `(i, j)` derives its RNG from the experiment's
//! master seed and the cell index alone (the same SplitMix64 scheme as
//! the scenario matrix), so entries are identical whether they are
//! filled lazily one round at a time, prefetched in parallel, or
//! recomputed on another machine.

use crate::error::OnlineError;
use poisongame_linalg::rng::SplitMix64;
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_sim::engine::EvalEngine;
use poisongame_sim::pipeline::{filter_train_eval, run_cell, ExperimentConfig, Prepared};
use poisongame_sim::SimError;
use poisongame_theory::MatrixGame;
use rand::SeedableRng;

use poisongame_defense::FilterStrength;

/// Scores one round of repeated play: the attacker payoff of every
/// pure `(attack level, defense)` action pair.
pub trait RoundPayoff {
    /// `(attacker actions, defender actions)`.
    fn shape(&self) -> (usize, usize);

    /// Attacker payoff of the pure pair `(i, j)` (the defender loses
    /// the same amount — the game is zero-sum). Implementations
    /// memoize: repeated queries are cheap.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (empirical providers only).
    fn entry(&mut self, i: usize, j: usize) -> Result<f64, OnlineError>;

    /// Materialize every entry into a [`MatrixGame`] — the memoized
    /// payoff matrix the play loop and the reference-NE solve run on.
    ///
    /// # Errors
    ///
    /// Propagates entry failures and matrix validation.
    fn matrix(&mut self) -> Result<MatrixGame, OnlineError> {
        let (m, n) = self.shape();
        let mut rows = Vec::with_capacity(m);
        for i in 0..m {
            let mut row = Vec::with_capacity(n);
            for j in 0..n {
                row.push(self.entry(i, j)?);
            }
            rows.push(row);
        }
        Ok(MatrixGame::from_rows(&rows)?)
    }
}

/// A precomputed payoff matrix — the memoized mode, and the adapter
/// for the paper's discretized game
/// ([`poisongame_core::bridge::discretized_game`]).
#[derive(Debug, Clone)]
pub struct MatrixPayoff {
    game: MatrixGame,
}

impl MatrixPayoff {
    /// Wrap a precomputed game.
    pub fn new(game: MatrixGame) -> Self {
        Self { game }
    }

    /// Borrow the wrapped game.
    pub fn game(&self) -> &MatrixGame {
        &self.game
    }
}

impl RoundPayoff for MatrixPayoff {
    fn shape(&self) -> (usize, usize) {
        self.game.shape()
    }

    fn entry(&mut self, i: usize, j: usize) -> Result<f64, OnlineError> {
        Ok(self.game.payoff(i, j))
    }

    fn matrix(&mut self) -> Result<MatrixGame, OnlineError> {
        Ok(self.game.clone())
    }
}

/// The per-cell seeds of an empirical payoff grid, derived from the
/// experiment's master seed in row-major cell order — the same
/// index-only scheme the scenario matrix uses, so any single cell can
/// be reproduced in isolation.
pub fn cell_seeds(config: &ExperimentConfig, n_cells: usize) -> Vec<u64> {
    let mut mix = SplitMix64::new(config.seed ^ 0x6f6e_6c69); // "onli"
    (0..n_cells).map(|_| mix.next()).collect()
}

/// The clean, unfiltered baseline accuracy an empirical grid scores
/// against.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn empirical_baseline(prepared: &Prepared, config: &ExperimentConfig) -> Result<f64, SimError> {
    Ok(filter_train_eval(
        prepared.train(),
        &[],
        prepared.test(),
        FilterStrength::RemoveFraction(0.0),
        config,
    )?
    .accuracy)
}

/// Score one empirical cell: poison at `placement`, filter at
/// `strength`, train, evaluate — through the scenario configured on
/// `config` — and return the attacker payoff
/// `baseline − accuracy`.
///
/// # Errors
///
/// Propagates attack/filter/training failures.
pub fn empirical_entry(
    prepared: &Prepared,
    config: &ExperimentConfig,
    baseline: f64,
    placement: f64,
    strength: f64,
    cell_seed: u64,
) -> Result<f64, SimError> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(cell_seed);
    let outcome = run_cell(
        prepared,
        &config.scenario,
        placement,
        FilterStrength::RemoveFraction(strength),
        config,
        &mut rng,
    )?;
    Ok(baseline - outcome.accuracy)
}

/// Validate an empirical action grid: non-empty, every value finite
/// and in `[0, 1)`.
pub(crate) fn validate_grid(what: &'static str, grid: &[f64]) -> Result<(), OnlineError> {
    if grid.is_empty() {
        return Err(OnlineError::BadParameter { what, value: 0.0 });
    }
    for &v in grid {
        if !(0.0..1.0).contains(&v) || v.is_nan() {
            return Err(OnlineError::BadParameter { what, value: v });
        }
    }
    Ok(())
}

/// The [`EvalEngine`]-backed empirical provider: every entry query
/// prepares the dataset through the engine (a `PrepCache` hit after
/// the first), runs the cell, and memoizes the result locally. Long
/// runs therefore pay `m × n` evaluations once and matrix lookups
/// forever after.
pub struct EnginePayoff<'a> {
    engine: &'a EvalEngine,
    config: &'a ExperimentConfig,
    placements: Vec<f64>,
    strengths: Vec<f64>,
    seeds: Vec<u64>,
    baseline: Option<f64>,
    memo: Vec<Option<f64>>,
}

impl<'a> EnginePayoff<'a> {
    /// An empirical grid over `placements × strengths` scored through
    /// `engine` with `config`'s scenario and budget.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::BadParameter`] for an empty or
    /// out-of-range grid.
    pub fn new(
        engine: &'a EvalEngine,
        config: &'a ExperimentConfig,
        placements: &[f64],
        strengths: &[f64],
    ) -> Result<Self, OnlineError> {
        validate_grid("placements", placements)?;
        validate_grid("strengths", strengths)?;
        let n_cells = placements.len() * strengths.len();
        Ok(Self {
            engine,
            config,
            placements: placements.to_vec(),
            strengths: strengths.to_vec(),
            seeds: cell_seeds(config, n_cells),
            baseline: None,
            memo: vec![None; n_cells],
        })
    }

    /// Entries computed so far (diagnostic).
    pub fn filled(&self) -> usize {
        self.memo.iter().filter(|e| e.is_some()).count()
    }
}

impl RoundPayoff for EnginePayoff<'_> {
    fn shape(&self) -> (usize, usize) {
        (self.placements.len(), self.strengths.len())
    }

    fn entry(&mut self, i: usize, j: usize) -> Result<f64, OnlineError> {
        let idx = i * self.strengths.len() + j;
        if let Some(value) = self.memo[idx] {
            return Ok(value);
        }
        // Every query routes through the engine: the first prepares the
        // dataset, the rest answer from the PrepCache.
        let prepared = self.engine.prepare(self.config)?;
        let baseline = match self.baseline {
            Some(b) => b,
            None => {
                let b = empirical_baseline(&prepared, self.config)?;
                self.baseline = Some(b);
                b
            }
        };
        let value = empirical_entry(
            &prepared,
            self.config,
            baseline,
            self.placements[i],
            self.strengths[j],
            self.seeds[idx],
        )?;
        self.memo[idx] = Some(value);
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_sim::pipeline::DataSource;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            seed: 9,
            source: DataSource::SyntheticSpambase { rows: 300 },
            epochs: 15,
            ..ExperimentConfig::paper()
        }
    }

    #[test]
    fn matrix_payoff_round_trips_the_game() {
        let game = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let mut payoff = MatrixPayoff::new(game.clone());
        assert_eq!(payoff.shape(), (2, 2));
        assert_eq!(payoff.entry(0, 1).unwrap(), -1.0);
        assert_eq!(payoff.matrix().unwrap(), game);
        assert_eq!(payoff.game().shape(), (2, 2));
    }

    #[test]
    fn default_matrix_assembly_walks_every_entry() {
        struct Counting(usize);
        impl RoundPayoff for Counting {
            fn shape(&self) -> (usize, usize) {
                (2, 3)
            }
            fn entry(&mut self, i: usize, j: usize) -> Result<f64, OnlineError> {
                self.0 += 1;
                Ok((i * 10 + j) as f64)
            }
        }
        let mut p = Counting(0);
        let game = p.matrix().unwrap();
        assert_eq!(p.0, 6);
        assert_eq!(game.payoff(1, 2), 12.0);
    }

    #[test]
    fn cell_seeds_depend_only_on_master_seed_and_index() {
        let a = cell_seeds(&quick_config(), 6);
        let b = cell_seeds(&quick_config(), 4);
        assert_eq!(&a[..4], &b[..]);
        let other = cell_seeds(
            &ExperimentConfig {
                seed: 10,
                ..quick_config()
            },
            4,
        );
        assert_ne!(&a[..4], &other[..]);
    }

    #[test]
    fn grid_validation_rejects_bad_axes() {
        assert!(validate_grid("placements", &[]).is_err());
        assert!(validate_grid("placements", &[0.5, 1.0]).is_err());
        assert!(validate_grid("placements", &[-0.1]).is_err());
        assert!(validate_grid("placements", &[f64::NAN]).is_err());
        assert!(validate_grid("placements", &[0.0, 0.3]).is_ok());
    }

    #[test]
    fn engine_payoff_memoizes_and_hits_the_prep_cache() {
        let engine = EvalEngine::new();
        let config = quick_config();
        let mut payoff = EnginePayoff::new(&engine, &config, &[0.02, 0.2], &[0.0, 0.2]).unwrap();
        assert_eq!(payoff.shape(), (2, 2));
        assert_eq!(payoff.filled(), 0);

        let first = payoff.entry(0, 1).unwrap();
        assert_eq!(payoff.filled(), 1);
        // Second query is a memo lookup — no new engine traffic.
        let stats = engine.cache_stats();
        assert_eq!(payoff.entry(0, 1).unwrap(), first);
        assert_eq!(engine.cache_stats(), stats);

        // Filling the rest leaves the cache with more hits than misses.
        let game = payoff.matrix().unwrap();
        assert_eq!(game.shape(), (2, 2));
        assert_eq!(payoff.filled(), 4);
        let stats = engine.cache_stats();
        assert!(
            stats.hits > stats.misses,
            "repeated queries must hit the prep cache: {stats:?}"
        );

        // A shallow attack against no filter must hurt: positive payoff.
        assert!(game.payoff(0, 0) > 0.0, "boundary poison did no damage");

        // Entries are a pure function of (config, grids): a fresh
        // provider reproduces them bit-for-bit.
        let engine2 = EvalEngine::new();
        let mut again = EnginePayoff::new(&engine2, &config, &[0.02, 0.2], &[0.0, 0.2]).unwrap();
        assert_eq!(again.matrix().unwrap(), game);
    }

    #[test]
    fn engine_payoff_picks_up_minibatch_kernel_from_config() {
        // `fit_kernel` flows config → train_config → every cell fit
        // with no payoff-side wiring. The empirical entries stay a
        // deterministic pure function of (config, grids), and the
        // minibatch grid must still show the attack hurting at (0, 0).
        let engine = EvalEngine::new();
        let config = ExperimentConfig {
            fit_kernel: poisongame_sim::FitKernel::Minibatch { batch: 32 },
            ..quick_config()
        };
        let mut payoff = EnginePayoff::new(&engine, &config, &[0.02, 0.2], &[0.0, 0.2]).unwrap();
        let game = payoff.matrix().unwrap();
        assert!(game.payoff(0, 0) > 0.0, "boundary poison did no damage");
        let engine2 = EvalEngine::new();
        let mut again = EnginePayoff::new(&engine2, &config, &[0.02, 0.2], &[0.0, 0.2]).unwrap();
        assert_eq!(again.matrix().unwrap(), game, "minibatch is deterministic");
    }

    #[test]
    fn engine_payoff_rejects_bad_grids() {
        let engine = EvalEngine::new();
        let config = quick_config();
        assert!(EnginePayoff::new(&engine, &config, &[], &[0.1]).is_err());
        assert!(EnginePayoff::new(&engine, &config, &[0.1], &[1.2]).is_err());
    }
}
