//! Render online traces as ASCII tables / CSV, in the house style of
//! [`poisongame_sim::report`].

use crate::play::OnlineTrace;
use poisongame_sim::report::{render_csv, render_table};

/// An online trace as an ASCII table: one row per checkpoint, headed
/// by the matchup and the one-shot reference value.
pub fn online_table(trace: &OnlineTrace) -> String {
    let rows: Vec<Vec<String>> = trace
        .points
        .iter()
        .map(|p| {
            vec![
                p.round.to_string(),
                format!("{:.2e}", p.attacker_regret),
                format!("{:.2e}", p.defender_regret),
                format!("{:.2e}", p.exploitability),
                format!("{:.6}", p.average_value),
                format!("{:.2e}", p.ne_gap),
            ]
        })
        .collect();
    let mut out = format!(
        "Online play — {} (attacker) vs {} (defender), {} rounds, {} feedback\n\
         (one-shot NE value {:.6})\n",
        trace.attacker,
        trace.defender,
        trace.rounds,
        trace.feedback.name(),
        trace.ne_value
    );
    out.push_str(&render_table(
        &[
            "round",
            "att regret",
            "def regret",
            "exploitability",
            "avg value",
            "NE gap",
        ],
        &rows,
    ));
    out
}

/// An online trace as CSV (full float precision, one row per
/// checkpoint).
pub fn online_csv(trace: &OnlineTrace) -> String {
    let rows: Vec<Vec<String>> = trace
        .points
        .iter()
        .map(|p| {
            vec![
                p.round.to_string(),
                format!("{}", p.attacker_regret),
                format!("{}", p.defender_regret),
                format!("{}", p.exploitability),
                format!("{}", p.average_value),
                format!("{}", p.ne_gap),
            ]
        })
        .collect();
    render_csv(
        &[
            "round",
            "attacker_regret",
            "defender_regret",
            "exploitability",
            "average_value",
            "ne_gap",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::MatrixPayoff;
    use crate::play::{play, PlayConfig};
    use poisongame_theory::MatrixGame;

    fn trace() -> OnlineTrace {
        let game = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        play(
            &mut MatrixPayoff::new(game),
            &PlayConfig {
                rounds: 200,
                checkpoint_every: 100,
                ..PlayConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn table_names_the_matchup_and_lists_checkpoints() {
        let t = online_table(&trace());
        assert!(t.contains("regret_matching (attacker) vs regret_matching (defender)"));
        assert!(t.contains("200 rounds"));
        assert!(t.contains("| 100"));
        assert!(t.contains("| 200"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_checkpoint() {
        let c = online_csv(&trace());
        assert!(c.starts_with("round,attacker_regret"));
        assert_eq!(c.lines().count(), 3, "{c}");
    }
}
