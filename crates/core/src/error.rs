//! Error type for the game-model crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the poisoning-game model and Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A curve could not be built or violates a required shape.
    BadCurve {
        /// Explanation.
        message: String,
    },
    /// A percentile/probability argument was out of range.
    BadParameter {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The requested support lies (partly) where the attacker gains
    /// nothing (`E(p) ≤ 0`), so the indifference system has no
    /// solution.
    UnprofitableSupport {
        /// The offending percentile.
        percentile: f64,
    },
    /// Algorithm 1 could not make progress.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
    /// Underlying numerical error.
    Linalg(poisongame_linalg::LinalgError),
    /// Underlying game-theory error.
    Game(poisongame_theory::GameError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadCurve { message } => write!(f, "bad curve: {message}"),
            CoreError::BadParameter { what, value } => {
                write!(f, "parameter `{what}` out of range: {value}")
            }
            CoreError::UnprofitableSupport { percentile } => write!(
                f,
                "support point {percentile} lies where poisoning is unprofitable"
            ),
            CoreError::NoConvergence { iterations } => {
                write!(
                    f,
                    "algorithm 1 made no progress after {iterations} iterations"
                )
            }
            CoreError::Linalg(e) => write!(f, "numerical error: {e}"),
            CoreError::Game(e) => write!(f, "game error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Game(e) => Some(e),
            _ => None,
        }
    }
}

impl From<poisongame_linalg::LinalgError> for CoreError {
    fn from(e: poisongame_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<poisongame_theory::GameError> for CoreError {
    fn from(e: poisongame_theory::GameError) -> Self {
        CoreError::Game(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::BadCurve {
            message: "not monotone".into()
        }
        .to_string()
        .contains("monotone"));
        assert!(CoreError::BadParameter {
            what: "p",
            value: 2.0
        }
        .to_string()
        .contains("p"));
        assert!(CoreError::UnprofitableSupport { percentile: 0.4 }
            .to_string()
            .contains("0.4"));
        assert!(CoreError::NoConvergence { iterations: 3 }
            .to_string()
            .contains("3"));
    }

    #[test]
    fn sources_preserved() {
        let e: CoreError = poisongame_linalg::LinalgError::EmptyInput.into();
        assert!(e.source().is_some());
        let e: CoreError = poisongame_theory::GameError::SolverStalled { pivots: 1 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
