//! Random-noise attack — the weakest baseline: uniformly random
//! feature vectors inside the data's bounding box with random labels.

use crate::error::AttackError;
use crate::AttackStrategy;
use poisongame_data::{Dataset, Label};
use poisongame_linalg::rng::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

/// Uniform random poison generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RandomNoiseAttack;

impl RandomNoiseAttack {
    /// New random-noise attack.
    pub fn new() -> Self {
        Self
    }
}

impl AttackStrategy for RandomNoiseAttack {
    fn generate(
        &self,
        clean: &Dataset,
        n_points: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Result<Dataset, AttackError> {
        if clean.is_empty() {
            return Err(AttackError::DegenerateCleanData);
        }
        let summary = clean.column_summary();
        let mut poison = Dataset::empty(clean.dim());
        for _ in 0..n_points {
            let point: Vec<f64> = summary
                .iter()
                .map(|s| s.min + rng.next_f64() * (s.max - s.min))
                .collect();
            let label = if rng.next_f64() < 0.5 {
                Label::Positive
            } else {
                Label::Negative
            };
            poison.push(&point, label)?;
        }
        Ok(poison)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_data::synth::gaussian_blobs;
    use rand::SeedableRng;

    #[test]
    fn points_stay_in_bounding_box() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let clean = gaussian_blobs(50, 3, 3.0, 0.5, &mut rng);
        let poison = RandomNoiseAttack::new()
            .generate(&clean, 40, &mut rng)
            .unwrap();
        let summary = clean.column_summary();
        for (x, _) in poison.iter() {
            for (c, &v) in x.iter().enumerate() {
                assert!(v >= summary[c].min - 1e-12 && v <= summary[c].max + 1e-12);
            }
        }
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let clean = gaussian_blobs(30, 2, 3.0, 0.5, &mut rng);
        let poison = RandomNoiseAttack::new()
            .generate(&clean, 200, &mut rng)
            .unwrap();
        let pos = poison.class_count(Label::Positive);
        assert!(pos > 60 && pos < 140, "positive count {pos}");
    }

    #[test]
    fn empty_clean_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        assert!(RandomNoiseAttack::new()
            .generate(&Dataset::empty(2), 5, &mut rng)
            .is_err());
    }
}
