//! The persistent execution runtime: a process-wide work-stealing
//! worker pool replacing per-call thread spawn/join.
//!
//! Every parallel path in the workspace — simulation grids
//! (`poisongame-sim`'s `exec` module), blocked GEMM row-block fan-out
//! (`poisongame-linalg`), and the serving tier's per-batch evaluation —
//! used to spawn a fresh `std::thread::scope` pool per call. Under a
//! serving workload that happens once per drained batch per shard, so
//! thread churn sits on the request hot path. This crate provides the
//! replacement: one lazily-initialized [`WorkerPool`]
//! ([`WorkerPool::global`]) whose workers are long-lived, with a
//! global injector queue, per-worker stealable deques and condvar
//! parking.
//!
//! Two properties carry every determinism guarantee upstream:
//!
//! * **Index-addressed tasks.** A batch is `n` tasks addressed by
//!   index; each index runs exactly once and writes its own result
//!   slot ([`OnceSlots`]). Scheduling decides only wall-clock time,
//!   never which task computes what — so results are bit-identical at
//!   any worker count, including zero.
//! * **Participating submitters.** [`WorkerPool::run`] never parks the
//!   submitting thread while claimable work remains: the submitter
//!   claims indices alongside the workers and only sleeps once every
//!   index is claimed and it is waiting for in-flight stragglers. A
//!   task that itself calls `run` (nested parallelism) therefore
//!   cannot deadlock — the inner batch is drained by its own
//!   submitter even if every pool worker is busy or the pool has shut
//!   down.
//!
//! # Example
//!
//! ```
//! use poisongame_exec::{OnceSlots, WorkerPool};
//!
//! let items = [1u64, 2, 3, 4];
//! let slots = OnceSlots::new(items.len());
//! WorkerPool::global().run(items.len(), 4, &|i| slots.set(i, items[i] * 10));
//! let out: Vec<u64> = slots.into_options().into_iter().flatten().collect();
//! assert_eq!(out, vec![10, 20, 30, 40]);
//! ```

#![warn(missing_docs)]
// The only unsafe in the workspace lives here (see `slots`); every
// downstream crate keeps its `#![forbid(unsafe_code)]`.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod pool;
pub mod slots;

pub use pool::{PoolStats, WorkerPool};
pub use slots::OnceSlots;

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Hardware thread count, resolved once per process.
///
/// `std::thread::available_parallelism` is a syscall; callers on hot
/// paths (per-batch policy resolution in the serving tier) read this
/// cached value instead.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_threads_is_cached_and_positive() {
        let first = hardware_threads();
        assert!(first >= 1);
        assert_eq!(hardware_threads(), first);
    }
}
