//! Closed-loop load generator for `poisongame-serve`: N connections ×
//! M requests of a mixed workload (`cell`, `solve`, `estimate`),
//! verifying zero dropped and zero mismatched responses, and
//! reporting latency percentiles, the server's cache hit rate, and a
//! training-time breakdown (prep vs fit vs eval).
//!
//! Every connection issues the *same* deterministic request sequence,
//! so response `i` must be byte-identical across connections — any
//! divergence is a determinism bug and fails the run.
//!
//! ```sh
//! cargo run --release --example load_test                     # in-process server, 4×25
//! cargo run --release --example load_test -- --addr 127.0.0.1:7979 \
//!     --connections 4 --requests 25 --shutdown
//! ```
//!
//! Options: `--addr HOST:PORT` (absent: spawn an in-process server on
//! an ephemeral port), `--connections N`, `--requests M`,
//! `--shutdown` (ask the server to drain at the end; implied for the
//! in-process server), `--json PATH` (additionally write the
//! throughput/latency/cache summary as machine-readable JSON — the
//! seed of the `BENCH_*.json` perf trajectory).

use poisongame::serve::client::Client;
use poisongame::serve::protocol::ServerStats;
use poisongame::serve::protocol::{CellRequest, EstimateRequest, RequestKind, SolveRequest};
use poisongame::serve::server::{Server, ServerConfig};
use poisongame::sim::jsonio::{self, Json};
use poisongame::sim::pipeline::{DataSource, ExperimentConfig};
use poisongame::sim::scenario::{DefenseSpec, LearnerSpec, Scenario};
use std::time::{Duration, Instant};

fn quick_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        source: DataSource::SyntheticSpambase { rows: 300 },
        epochs: 20,
        ..ExperimentConfig::paper()
    }
}

/// The deterministic mixed workload: request `i` is the same on every
/// connection. Seeds cycle over a handful of values so the shared
/// preparation cache sees both misses and hits.
fn request_for(i: usize) -> RequestKind {
    let seed = 100 + (i as u64 % 5);
    match i % 4 {
        0 => RequestKind::Cell(CellRequest {
            config: quick_config(seed),
            ..CellRequest::default()
        }),
        1 => RequestKind::Solve(SolveRequest {
            effect_samples: vec![(0.0, 2.0e-4), (0.1, 9.0e-5), (0.3, 1.5e-5), (0.45, -1.0e-6)],
            cost_samples: vec![(0.0, 0.0), (0.1, 0.009), (0.3, 0.04)],
            n_points: 644,
            resolution: 40,
            ..SolveRequest::default()
        }),
        2 => RequestKind::Estimate(EstimateRequest {
            config: quick_config(seed),
            placements: vec![0.05, 0.2],
            strengths: vec![0.0, 0.2],
        }),
        _ => RequestKind::Cell(CellRequest {
            config: quick_config(seed),
            scenario: Scenario::builder()
                .defense(DefenseSpec::Knn { k: 5 })
                .learner(LearnerSpec::LogReg)
                .build(),
            ..CellRequest::default()
        }),
    }
}

fn percentile(sorted_micros: &[u128], p: f64) -> u128 {
    let index = ((sorted_micros.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_micros[index]
}

/// The machine-readable run summary `--json` writes: the seed of the
/// `BENCH_*.json` perf trajectory, so successive PRs can chart
/// throughput/latency/cache-rate over time.
fn summary_json(
    args: &Args,
    elapsed: Duration,
    sorted_micros: &[u128],
    stats: &ServerStats,
) -> Json {
    let total = args.connections * args.requests;
    let ms = |micros: u128| micros as f64 / 1000.0;
    Json::obj(vec![
        ("connections", Json::Num(args.connections as f64)),
        ("requests_per_connection", Json::Num(args.requests as f64)),
        ("total_requests", Json::Num(total as f64)),
        ("elapsed_secs", Json::Num(elapsed.as_secs_f64())),
        (
            "throughput_rps",
            Json::Num(total as f64 / elapsed.as_secs_f64()),
        ),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::Num(ms(percentile(sorted_micros, 50.0)))),
                ("p99", Json::Num(ms(percentile(sorted_micros, 99.0)))),
                ("max", Json::Num(ms(sorted_micros[sorted_micros.len() - 1]))),
            ]),
        ),
        (
            "server",
            Json::obj(vec![
                ("received", jsonio::big_u64_to_json(stats.received)),
                ("completed", jsonio::big_u64_to_json(stats.completed)),
                ("shed", jsonio::big_u64_to_json(stats.shed)),
                ("expired", jsonio::big_u64_to_json(stats.expired)),
                ("failed", jsonio::big_u64_to_json(stats.failed)),
            ]),
        ),
        (
            "prep_cache",
            Json::obj(vec![
                ("hits", jsonio::big_u64_to_json(stats.cache_hits)),
                ("misses", jsonio::big_u64_to_json(stats.cache_misses)),
                ("evictions", jsonio::big_u64_to_json(stats.cache_evictions)),
                ("hit_rate", Json::Num(stats.cache_hit_rate())),
                ("entries", Json::Num(stats.cache_entries as f64)),
            ]),
        ),
        (
            "training",
            Json::obj(vec![
                ("prep_micros", jsonio::big_u64_to_json(stats.prep_micros)),
                ("fit_micros", jsonio::big_u64_to_json(stats.fit_micros)),
                ("eval_micros", jsonio::big_u64_to_json(stats.eval_micros)),
            ]),
        ),
    ])
}

struct Args {
    addr: Option<String>,
    connections: usize,
    requests: usize,
    shutdown: bool,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: None,
        connections: 4,
        requests: 25,
        shutdown: false,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| format!("`{what}` needs a value"));
        match flag.as_str() {
            "--addr" => out.addr = Some(value("--addr")?),
            "--connections" => {
                out.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--requests" => {
                out.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--shutdown" => out.shutdown = true,
            "--json" => out.json = Some(value("--json")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.connections == 0 || out.requests == 0 {
        return Err("--connections and --requests must both be at least 1".into());
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| {
        eprintln!("usage error: {e} (see the doc comment at the top of examples/load_test.rs)");
        e
    })?;

    // No --addr: bring up an in-process server on an ephemeral port.
    let (addr, in_process) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(ServerConfig::default())?;
            let addr = server.local_addr()?.to_string();
            println!("spawned in-process server on {addr}");
            (addr, Some(server.spawn()))
        }
    };

    println!(
        "load test: {} connections × {} requests (closed loop) against {addr}\n",
        args.connections, args.requests
    );
    let started = Instant::now();

    // One closed-loop client per connection: send, wait, repeat.
    let mut threads = Vec::new();
    for _ in 0..args.connections {
        let addr = addr.clone();
        let requests = args.requests;
        threads.push(std::thread::spawn(
            move || -> Result<(Vec<String>, Vec<u128>), String> {
                let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                let mut results = Vec::with_capacity(requests);
                let mut latencies = Vec::with_capacity(requests);
                for i in 0..requests {
                    let t0 = Instant::now();
                    let result = client
                        .call(request_for(i), None)
                        .map_err(|e| format!("request {i}: {e}"))?;
                    latencies.push(t0.elapsed().as_micros());
                    results.push(result.render());
                }
                Ok((results, latencies))
            },
        ));
    }

    let mut per_connection: Vec<Vec<String>> = Vec::new();
    let mut all_latencies: Vec<u128> = Vec::new();
    for (c, thread) in threads.into_iter().enumerate() {
        let (results, latencies) = thread
            .join()
            .map_err(|_| "client thread panicked")?
            .map_err(|e| format!("connection {c}: {e}"))?;
        per_connection.push(results);
        all_latencies.extend(latencies);
    }
    let elapsed = started.elapsed();

    // Zero dropped: every connection produced every response.
    let total = args.connections * args.requests;
    assert_eq!(all_latencies.len(), total, "dropped responses");
    // Zero mismatched: response i is byte-identical across connections.
    let mut mismatches = 0usize;
    for i in 0..args.requests {
        if !per_connection
            .iter()
            .all(|results| results[i] == per_connection[0][i])
        {
            mismatches += 1;
            eprintln!("MISMATCH on request {i}");
        }
    }

    all_latencies.sort_unstable();
    println!(
        "completed {total} requests in {:.2}s",
        elapsed.as_secs_f64()
    );
    println!(
        "  throughput: {:.1} req/s | latency p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        total as f64 / elapsed.as_secs_f64(),
        percentile(&all_latencies, 50.0) as f64 / 1000.0,
        percentile(&all_latencies, 99.0) as f64 / 1000.0,
        all_latencies[all_latencies.len() - 1] as f64 / 1000.0,
    );

    // Server-side view: cache traffic and admission counters.
    let mut client = Client::connect(&addr)?;
    let stats = client.stats()?;
    println!(
        "  server: received {} | completed {} | shed {} | expired {} | failed {}",
        stats.received, stats.completed, stats.shed, stats.expired, stats.failed
    );
    println!(
        "  prep cache: {:.0}% hit rate ({} hits / {} misses / {} evictions, {} resident, bound {})",
        stats.cache_hit_rate() * 100.0,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_entries,
        stats
            .cache_capacity
            .map_or("none".to_string(), |c| c.to_string()),
    );
    // Where the server spent its training time (process-global
    // counters, so this covers every cell the server has run).
    let total_micros = stats.prep_micros + stats.fit_micros + stats.eval_micros;
    let share = |micros: u64| {
        if total_micros == 0 {
            0.0
        } else {
            micros as f64 / total_micros as f64 * 100.0
        }
    };
    println!(
        "  training time: prep {:.1} ms ({:.0}%) | fit {:.1} ms ({:.0}%) | eval {:.1} ms ({:.0}%)",
        stats.prep_micros as f64 / 1000.0,
        share(stats.prep_micros),
        stats.fit_micros as f64 / 1000.0,
        share(stats.fit_micros),
        stats.eval_micros as f64 / 1000.0,
        share(stats.eval_micros),
    );
    if let Some(path) = &args.json {
        let doc = summary_json(&args, elapsed, &all_latencies, &stats);
        std::fs::write(path, format!("{}\n", doc.render()))?;
        println!("  wrote JSON summary to {path}");
    }
    if args.shutdown || in_process.is_some() {
        client.shutdown()?;
        println!("  shutdown requested; server draining");
    }
    if let Some(handle) = in_process {
        handle.join()?;
        println!("  in-process server exited cleanly");
    }

    assert_eq!(mismatches, 0, "{mismatches} mismatched responses");
    println!("\nzero dropped, zero mismatched responses — OK");
    Ok(())
}
