//! Fictitious play — the classic learning dynamic (Brown 1951,
//! Robinson 1951). In zero-sum games the empirical strategy profile
//! converges to a Nash equilibrium; convergence is slow (`O(1/√t)` in
//! practice) but the method is simple and a useful independent check on
//! the LP solver.

use crate::error::GameError;
use crate::matrix_game::MatrixGame;
use crate::strategy::{MixedStrategy, Solution};
use poisongame_linalg::vector;

/// Configuration for [`solve_fictitious_play`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FictitiousPlayConfig {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Stop once exploitability of the empirical profile falls below
    /// this threshold.
    pub tolerance: f64,
    /// How often (in iterations) to evaluate exploitability.
    pub check_every: usize,
}

impl Default for FictitiousPlayConfig {
    fn default() -> Self {
        Self {
            // FP converges at O(1/√t): reaching 5e-3 exploitability on
            // an adversarial random game can take a few million
            // iterations (each O(m·n) flops), so the cap errs large.
            max_iterations: 4_000_000,
            tolerance: 5e-3,
            check_every: 500,
        }
    }
}

/// Run simultaneous fictitious play until the empirical profile's
/// exploitability drops below `config.tolerance`.
///
/// # Errors
///
/// Returns [`GameError::NoConvergence`] (carrying the final
/// exploitability) if the iteration cap is reached first.
///
/// # Example
///
/// ```
/// use poisongame_theory::{solve_fictitious_play, FictitiousPlayConfig, MatrixGame};
///
/// let pennies = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
/// let sol = solve_fictitious_play(&pennies, &FictitiousPlayConfig::default()).unwrap();
/// assert!(sol.value.abs() < 0.01);
/// ```
pub fn solve_fictitious_play(
    game: &MatrixGame,
    config: &FictitiousPlayConfig,
) -> Result<Solution, GameError> {
    let (m, n) = game.shape();
    // Cumulative payoff each row action has earned against the
    // opponent's historical actions (and vice versa).
    let mut row_cum = vec![0.0; m];
    let mut col_cum = vec![0.0; n];
    let mut row_counts = vec![0.0; m];
    let mut col_counts = vec![0.0; n];

    // Start from action 0 for both players (deterministic).
    let mut row_action = 0usize;
    let mut col_action = 0usize;

    for t in 1..=config.max_iterations {
        row_counts[row_action] += 1.0;
        col_counts[col_action] += 1.0;

        // Update cumulative payoffs given the opponent's latest action.
        for (i, cum) in row_cum.iter_mut().enumerate() {
            *cum += game.payoff(i, col_action);
        }
        for (j, cum) in col_cum.iter_mut().enumerate() {
            *cum += game.payoff(row_action, j);
        }

        // Best responses to the empirical mixture (cumulative payoffs
        // order identically to averages).
        row_action = vector::argmax(&row_cum).expect("non-empty");
        col_action = vector::argmin(&col_cum).expect("non-empty");

        if t % config.check_every == 0 || t == config.max_iterations {
            let x = MixedStrategy::from_weights(row_counts.clone())?;
            let y = MixedStrategy::from_weights(col_counts.clone())?;
            let expl = game.exploitability(&x, &y)?;
            if expl < config.tolerance {
                let value = game.expected_payoff(&x, &y)?;
                return Ok(Solution {
                    row_strategy: x,
                    column_strategy: y,
                    value,
                    iterations: t,
                });
            }
        }
    }

    let x = MixedStrategy::from_weights(row_counts)?;
    let y = MixedStrategy::from_weights(col_counts)?;
    let expl = game.exploitability(&x, &y)?;
    Err(GameError::NoConvergence {
        iterations: config.max_iterations,
        exploitability: expl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve_lp;

    #[test]
    fn pennies_converges_to_uniform() {
        let g = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let sol = solve_fictitious_play(&g, &FictitiousPlayConfig::default()).unwrap();
        assert!(sol.value.abs() < 0.01);
        assert!((sol.row_strategy.prob(0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn saddle_game_converges_fast() {
        let g = MatrixGame::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        let sol = solve_fictitious_play(&g, &FictitiousPlayConfig::default()).unwrap();
        assert!((sol.value - 2.0).abs() < 0.05);
    }

    #[test]
    fn matches_lp_value_on_rps() {
        let g = MatrixGame::from_rows(&[
            vec![0.0, -1.0, 1.0],
            vec![1.0, 0.0, -1.0],
            vec![-1.0, 1.0, 0.0],
        ])
        .unwrap();
        let fp = solve_fictitious_play(&g, &FictitiousPlayConfig::default()).unwrap();
        let lp = solve_lp(&g).unwrap();
        assert!((fp.value - lp.value).abs() < 0.02);
    }

    #[test]
    fn exploitability_bounded_by_tolerance() {
        let g = MatrixGame::from_rows(&[vec![2.0, -1.0, 0.5], vec![-1.0, 3.0, -0.5]]).unwrap();
        let cfg = FictitiousPlayConfig {
            tolerance: 5e-3,
            ..FictitiousPlayConfig::default()
        };
        let sol = solve_fictitious_play(&g, &cfg).unwrap();
        let expl = g
            .exploitability(&sol.row_strategy, &sol.column_strategy)
            .unwrap();
        assert!(expl < 5e-3);
    }

    #[test]
    fn impossible_tolerance_reports_no_convergence() {
        let g = MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap();
        let cfg = FictitiousPlayConfig {
            max_iterations: 50,
            tolerance: 1e-12,
            check_every: 10,
        };
        match solve_fictitious_play(&g, &cfg) {
            Err(GameError::NoConvergence { iterations, .. }) => assert_eq!(iterations, 50),
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }
}
