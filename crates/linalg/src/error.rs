//! Error type for numerical operations.

use std::error::Error;
use std::fmt;

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands were expected to share a dimension but did not.
    DimensionMismatch {
        /// Dimension of the first operand.
        left: usize,
        /// Dimension of the second operand.
        right: usize,
    },
    /// An operand that must be non-empty was empty.
    EmptyInput,
    /// A matrix shape was invalid (e.g. data length not divisible by
    /// the number of columns).
    InvalidShape {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the backing buffer.
        len: usize,
    },
    /// A scalar argument was outside its legal domain.
    DomainError {
        /// Name of the offending argument.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An iterative routine failed to converge within its iteration cap.
    NoConvergence {
        /// Name of the routine.
        what: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A value that must be finite was NaN or infinite.
    NotFinite {
        /// Name of the offending argument.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            LinalgError::EmptyInput => write!(f, "input must be non-empty"),
            LinalgError::InvalidShape { rows, cols, len } => write!(
                f,
                "invalid shape: {rows}x{cols} does not match buffer of length {len}"
            ),
            LinalgError::DomainError { what, value } => {
                write!(f, "argument `{what}` out of domain: {value}")
            }
            LinalgError::NoConvergence { what, iterations } => {
                write!(f, "`{what}` did not converge after {iterations} iterations")
            }
            LinalgError::NotFinite { what } => {
                write!(f, "argument `{what}` must be finite")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::DimensionMismatch { left: 3, right: 4 };
        assert_eq!(e.to_string(), "dimension mismatch: 3 vs 4");
        let e = LinalgError::EmptyInput;
        assert!(e.to_string().contains("non-empty"));
        let e = LinalgError::InvalidShape {
            rows: 2,
            cols: 3,
            len: 5,
        };
        assert!(e.to_string().contains("2x3"));
        let e = LinalgError::DomainError {
            what: "alpha",
            value: -1.0,
        };
        assert!(e.to_string().contains("alpha"));
        let e = LinalgError::NoConvergence {
            what: "weiszfeld",
            iterations: 100,
        };
        assert!(e.to_string().contains("100"));
        let e = LinalgError::NotFinite { what: "x" };
        assert!(e.to_string().contains("finite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
