//! # poisongame
//!
//! A reproduction of **"Mixed Strategy Game Model Against Data
//! Poisoning Attacks"** (Ou & Samavi, DSN Workshops 2019) as a Rust
//! workspace: the poisoning attack/defense game, its equilibrium
//! analysis (no pure NE; mixed NE with equalized `E·cdf` products),
//! the paper's Algorithm 1, and the full experimental pipeline that
//! regenerates Figure 1, Table 1 and the §5 scaling claims.
//!
//! This crate re-exports every subsystem under one roof:
//!
//! | module | contents |
//! |---|---|
//! | [`obs`] | the telemetry layer: lock-free histograms, span timers, event log, Prometheus exposition |
//! | [`exec`] | the execution runtime: persistent work-stealing worker pool, write-once result slots |
//! | [`linalg`] | vectors, statistics, curves, deterministic RNG |
//! | [`data`] | datasets, CSV IO, splits, scalers, the synthetic Spambase generator |
//! | [`io`] | streaming ingestion: chunked CSV reader, checksummed file sources, out-of-core preparation support |
//! | [`ml`] | linear SVM (the paper's victim model), logistic regression, perceptron, metrics |
//! | [`theory`] | finite zero-sum games: simplex LP, fictitious play, multiplicative weights |
//! | [`attack`] | boundary / mixed-radius / label-flip / noise poisoning attacks |
//! | [`defense`] | sphere filter (global & per-class), robust centroids, slab & kNN baselines |
//! | [`core`] | the game model: `E(p)`, `Γ(p)`, BRF analysis, NE conditions, Algorithm 1 |
//! | [`sim`] | the experiment harness: Figure 1, Table 1, scaling, Monte-Carlo validation |
//! | [`online`] | the repeated game: no-regret adaptive attackers/defenders, convergence to the static NE |
//! | [`serve`] | the evaluation service: sharded NDJSON-over-TCP server, admission/load-shedding, client |
//! | [`gateway`] | the HTTP/1.1 front end: `/v1/*` JSON API over pooled backend connections |
//!
//! # Quickstart
//!
//! ```no_run
//! use poisongame::core::{Algorithm1, Algorithm1Config};
//! use poisongame::sim::estimate::{default_placements, default_strengths, estimate_curves};
//! use poisongame::sim::pipeline::ExperimentConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ExperimentConfig::paper().quick();
//! let curves = estimate_curves(&config, &default_placements(), &default_strengths())?;
//! let game = curves.game()?;
//! let defense = Algorithm1::new(Algorithm1Config { n_radii: 3, ..Default::default() })
//!     .solve(&game)?;
//! println!("defender NE strategy: {}", defense.strategy);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end reproductions and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use poisongame_attack as attack;
pub use poisongame_core as core;
pub use poisongame_data as data;
pub use poisongame_defense as defense;
pub use poisongame_exec as exec;
pub use poisongame_gateway as gateway;
pub use poisongame_io as io;
pub use poisongame_linalg as linalg;
pub use poisongame_ml as ml;
pub use poisongame_obs as obs;
pub use poisongame_online as online;
pub use poisongame_serve as serve;
pub use poisongame_sim as sim;
pub use poisongame_theory as theory;
