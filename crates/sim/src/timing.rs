//! Process-global accounting of where evaluation time goes: dataset
//! preparation vs model fitting vs held-out evaluation.
//!
//! The counters are cumulative, monotone values rather than
//! per-request fields for a load-bearing reason: the serving tier
//! asserts that responses to identical requests are *byte-identical*
//! across connections, so wall-clock measurements must never ride on
//! the response path. Callers (the server's `stats` request, the load
//! generator's summary) read one [`snapshot`] at the end of a run and
//! difference it against an earlier one.
//!
//! Since the telemetry layer landed, this module is a thin shim: the
//! backing storage is the `poisongame_phase_micros_total` counter
//! family in [`poisongame_obs::Registry::global`] (one labeled
//! counter per phase), so the same numbers show up on the gateway's
//! `/v1/metrics` without double accounting. The public API —
//! [`record_prep`]/[`record_fit`]/[`record_eval`] and
//! [`TimingSnapshot`] with its wire form — is unchanged.

use poisongame_obs::{Counter, Registry};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The registry family backing the three phase counters.
pub const PHASE_FAMILY: &str = "poisongame_phase_micros_total";

fn phase_counter(cell: &'static OnceLock<Arc<Counter>>, phase: &'static str) -> &'static Counter {
    cell.get_or_init(|| {
        Registry::global().counter(
            PHASE_FAMILY,
            "Cumulative microseconds spent per evaluation phase",
            &[("phase", phase)],
        )
    })
}

fn prep_counter() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    phase_counter(&CELL, "prep")
}

fn fit_counter() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    phase_counter(&CELL, "fit")
}

fn eval_counter() -> &'static Counter {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    phase_counter(&CELL, "eval")
}

fn add(counter: &Counter, elapsed: Duration) {
    counter.add(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
}

/// Credit `elapsed` to dataset preparation (generate → split → scale).
pub fn record_prep(elapsed: Duration) {
    add(prep_counter(), elapsed);
}

/// Credit `elapsed` to model fitting.
pub fn record_fit(elapsed: Duration) {
    add(fit_counter(), elapsed);
}

/// Credit `elapsed` to held-out evaluation.
pub fn record_eval(elapsed: Duration) {
    add(eval_counter(), elapsed);
}

/// A point-in-time reading of the cumulative phase counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingSnapshot {
    /// Microseconds spent preparing datasets since process start.
    pub prep_micros: u64,
    /// Microseconds spent fitting models since process start.
    pub fit_micros: u64,
    /// Microseconds spent evaluating fitted models since process start.
    pub eval_micros: u64,
}

impl TimingSnapshot {
    /// Phase-wise difference against an earlier snapshot (saturating,
    /// so a stale `earlier` cannot underflow).
    pub fn since(&self, earlier: &TimingSnapshot) -> TimingSnapshot {
        TimingSnapshot {
            prep_micros: self.prep_micros.saturating_sub(earlier.prep_micros),
            fit_micros: self.fit_micros.saturating_sub(earlier.fit_micros),
            eval_micros: self.eval_micros.saturating_sub(earlier.eval_micros),
        }
    }
}

/// Read the cumulative counters. Concurrent recorders make this a
/// momentary reading, not a consistent cut — fine for the coarse
/// breakdown it feeds.
pub fn snapshot() -> TimingSnapshot {
    TimingSnapshot {
        prep_micros: prep_counter().get(),
        fit_micros: fit_counter().get(),
        eval_micros: eval_counter().get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_difference() {
        let before = snapshot();
        record_prep(Duration::from_micros(5));
        record_fit(Duration::from_micros(7));
        record_eval(Duration::from_micros(11));
        let delta = snapshot().since(&before);
        // Other tests in the same process may also record; lower bounds
        // are the only safe assertion.
        assert!(delta.prep_micros >= 5);
        assert!(delta.fit_micros >= 7);
        assert!(delta.eval_micros >= 11);
        // Saturating difference never underflows.
        assert_eq!(before.since(&snapshot()).fit_micros, 0);
    }

    #[test]
    fn phase_counters_live_in_the_global_registry() {
        record_fit(Duration::from_micros(3));
        let snap = Registry::global().snapshot();
        let family = snap.find(PHASE_FAMILY).expect("phase family registered");
        assert_eq!(family.metrics.len(), 3, "prep, fit, eval");
        assert!(snap.counter_total(PHASE_FAMILY) >= 3);
    }
}
