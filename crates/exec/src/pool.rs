//! The work-stealing worker pool.
//!
//! Topology: one global injector queue plus one stealable deque per
//! worker. External submitters push participation tickets to the
//! injector; a task running *on* a worker pushes its nested batch's
//! tickets to that worker's own deque (LIFO — the deepest, hottest
//! work first), where siblings can steal them (FIFO — oldest first).
//! Idle workers park on a condvar; submission notifies under the same
//! lock, so no wakeup is ever lost.
//!
//! A **batch** is `n` index-addressed tasks behind a shared claim
//! counter. A **ticket** is an invitation to participate: whoever pops
//! it (worker or thief) loops claiming indices until the counter is
//! exhausted. The submitting thread holds an implicit ticket — it
//! claims indices too, and only waits (on the batch's own condvar)
//! for stragglers after every index is claimed. That participation is
//! what makes nested `run` calls deadlock-free: a waiter only ever
//! waits for indices that some live thread has claimed and is
//! actively executing, and that execution terminates by induction on
//! nesting depth.
//!
//! A panicking task panics the whole `run` call (resumed on the
//! submitting thread, like a scoped spawn would), cancels the batch's
//! unclaimed indices, and leaves the workers alive for the next batch.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use poisongame_obs::{EventLog, FieldValue, Histogram, Registry, Severity};

use crate::hardware_threads;

/// One batch of `n` index-addressed tasks behind a claim counter.
///
/// The closure is type-erased to a raw context pointer plus a
/// monomorphized trampoline so tickets can live in `'static` worker
/// queues while the closure itself borrows the submitter's stack.
struct Batch {
    /// Next unclaimed index; claims at or above `n` are no-ops.
    next: AtomicUsize,
    /// Task count. The batch is complete when `done == n`.
    n: usize,
    /// Indices accounted for: executed, panicked, or cancelled.
    done: AtomicUsize,
    /// `&F` as a raw pointer. Only dereferenced for claims below `n`,
    /// which the submitter outlives by waiting for `done == n`.
    ctx: *const (),
    /// Monomorphized trampoline restoring `ctx` to `&F`.
    call: unsafe fn(*const (), usize),
    /// First panic payload; resumed on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion parking for the submitter.
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `ctx` points at an `F: Fn(usize) + Sync` that the submitting
// `run` frame keeps alive until `done == n`; `call` only produces `&F`
// from it, and `&F` is shareable across threads by the `Sync` bound.
// Every other field is inherently thread-safe.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// True once every index is accounted for.
    fn complete(&self) -> bool {
        // Acquire pairs with the AcqRel `fetch_add` in `account`: once
        // the count reads `n`, every task's writes are visible.
        self.done.load(Ordering::Acquire) >= self.n
    }

    /// Credit `count` indices as finished and wake the submitter on
    /// the last one.
    fn account(&self, count: usize) {
        let prior = self.done.fetch_add(count, Ordering::AcqRel);
        if prior + count >= self.n {
            // Take the lock so the notify cannot slip between the
            // submitter's re-check and its wait.
            let _guard = self.done_lock.lock().expect("batch done lock poisoned");
            self.done_cv.notify_all();
        }
    }

    /// Run index `i` (already uniquely claimed). On panic: record the
    /// payload, cancel all still-unclaimed indices, keep the thread.
    fn execute(&self, i: usize) {
        // SAFETY: `i < n` was claimed from `next` exactly once, so the
        // submitter is still inside `run` and `ctx` is alive.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.ctx, i) }));
        if let Err(payload) = outcome {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            EventLog::global().publish(
                Severity::Error,
                "worker_panic",
                vec![
                    ("message".to_string(), FieldValue::Str(message)),
                    ("task_index".to_string(), FieldValue::U64(i as u64)),
                    ("batch_len".to_string(), FieldValue::U64(self.n as u64)),
                ],
            );
            {
                let mut slot = self.panic.lock().expect("batch panic slot poisoned");
                slot.get_or_insert(payload);
            }
            // Cancel: jump the claim counter to the end and account
            // the indices nobody will ever claim. Claims are totally
            // ordered, so each skipped index is accounted exactly once
            // even with concurrent panics.
            let prev = self.next.swap(self.n, Ordering::Relaxed);
            if prev < self.n {
                self.account(self.n - prev);
            }
        }
        self.account(1);
    }
}

/// A participation ticket: executing it means claiming indices from
/// the batch until exhaustion.
type Ticket = Arc<Batch>;

/// Cumulative pool counters (process lifetime, never reset). Snapshot
/// via [`WorkerPool::stats`]; the serving tier surfaces them through
/// its `stats` request the same way `sim::timing` surfaces phase
/// times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Indices executed by pool workers.
    pub tasks: u64,
    /// Indices executed inline by submitting threads participating in
    /// their own batches.
    pub inline: u64,
    /// Tickets taken from another worker's deque.
    pub steals: u64,
    /// Times a worker parked on the idle condvar.
    pub parks: u64,
    /// Batches that went through the parallel path.
    pub batches: u64,
}

impl PoolStats {
    /// Counter-wise difference against an earlier snapshot
    /// (saturating, so a stale `earlier` cannot underflow).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            inline: self.inline.saturating_sub(earlier.inline),
            steals: self.steals.saturating_sub(earlier.steals),
            parks: self.parks.saturating_sub(earlier.parks),
            batches: self.batches.saturating_sub(earlier.batches),
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    tasks: AtomicU64,
    inline: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    batches: AtomicU64,
}

/// Handles into the process-wide [`Registry`]. The per-pool
/// [`Counters`] stay authoritative for [`WorkerPool::stats`] (tests
/// build private pools and difference them); these mirror the same
/// increments into the global registry, summed across every pool in
/// the process, plus two histograms the flat counters cannot express.
struct PoolObs {
    tasks: Arc<poisongame_obs::Counter>,
    inline: Arc<poisongame_obs::Counter>,
    steals: Arc<poisongame_obs::Counter>,
    parks: Arc<poisongame_obs::Counter>,
    batches: Arc<poisongame_obs::Counter>,
    /// How long workers sleep on the idle condvar, per park.
    park_nanos: Arc<Histogram>,
    /// Task count of every batch that took the parallel path.
    batch_size: Arc<Histogram>,
}

impl PoolObs {
    fn register() -> PoolObs {
        let r = Registry::global();
        PoolObs {
            tasks: r.counter(
                "poisongame_pool_tasks_total",
                "Batch indices executed by pool workers",
                &[],
            ),
            inline: r.counter(
                "poisongame_pool_inline_total",
                "Batch indices executed inline by submitting threads",
                &[],
            ),
            steals: r.counter(
                "poisongame_pool_steals_total",
                "Tickets taken from another worker's deque",
                &[],
            ),
            parks: r.counter(
                "poisongame_pool_parks_total",
                "Times a worker parked on the idle condvar",
                &[],
            ),
            batches: r.counter(
                "poisongame_pool_batches_total",
                "Batches that took the parallel path",
                &[],
            ),
            park_nanos: r.histogram(
                "poisongame_pool_park_nanos",
                "Worker idle-park duration in nanoseconds",
                &[],
            ),
            batch_size: r.histogram(
                "poisongame_pool_batch_size",
                "Tasks per parallel-path batch",
                &[],
            ),
        }
    }
}

struct PoolInner {
    /// External submissions land here.
    injector: Mutex<VecDeque<Ticket>>,
    /// One deque per worker; the owner pops LIFO, thieves steal FIFO.
    deques: Vec<Mutex<VecDeque<Ticket>>>,
    /// Idle parking. Submissions notify under this lock.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    obs: PoolObs,
}

impl PoolInner {
    fn has_queued_work(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.deques
            .iter()
            .any(|d| !d.lock().expect("worker deque poisoned").is_empty())
    }
}

thread_local! {
    /// `(pool identity, worker index)` for pool worker threads, so a
    /// nested submission can target its own deque.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// A persistent pool of worker threads executing index-addressed
/// batches. One process-wide instance lives behind
/// [`WorkerPool::global`]; tests construct private pools with
/// [`WorkerPool::new`] and tear them down with
/// [`WorkerPool::shutdown`].
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn a pool with `workers` long-lived worker threads (`0` is
    /// treated as 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            obs: PoolObs::register(),
        });
        let handles = (0..workers)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("poisongame-pool-{idx}"))
                    .spawn(move || worker_loop(&inner, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide pool, created on first use with one worker per
    /// hardware thread. It is never shut down; its workers park when
    /// idle.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(hardware_threads()))
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.inner.deques.len()
    }

    /// Snapshot the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.inner.counters;
        PoolStats {
            tasks: c.tasks.load(Ordering::Relaxed),
            inline: c.inline.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
        }
    }

    /// Execute `task(i)` for every `i in 0..n`, blocking until all
    /// have finished. At most `participants` threads work on the
    /// batch concurrently: the submitting thread plus up to
    /// `participants - 1` pool workers (fewer if the pool is smaller
    /// or busy — the claim counter self-balances either way).
    ///
    /// Each index runs exactly once; which thread runs it is
    /// unspecified, so `task` must make results index-addressed (write
    /// slot `i`, derive randomness from `i`), never order-dependent.
    /// Nested calls from inside a task are safe at any pool size —
    /// the inner call's submitter participates instead of blocking.
    /// With `participants <= 1`, or on a pool that has shut down, the
    /// whole batch runs inline on the submitting thread.
    ///
    /// # Panics
    ///
    /// If any task panics, the first payload is resumed on the
    /// submitting thread after the batch settles (remaining unclaimed
    /// indices are cancelled). The pool itself survives.
    pub fn run<F>(&self, n: usize, participants: usize, task: &F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if participants <= 1 || n == 1 {
            for i in 0..n {
                task(i);
            }
            return;
        }

        /// Restore the erased context to `&F` and call it.
        unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), i: usize) {
            // SAFETY: `ctx` was produced from `&F` in the enclosing
            // `run` frame, which outlives every sub-`n` claim.
            let f = unsafe { &*ctx.cast::<F>() };
            f(i);
        }

        let batch: Ticket = Arc::new(Batch {
            next: AtomicUsize::new(0),
            n,
            done: AtomicUsize::new(0),
            ctx: (task as *const F).cast::<()>(),
            call: trampoline::<F>,
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        self.inner.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.batches.inc();
        self.inner.obs.batch_size.record(n as u64);
        // One ticket per invited co-worker; the submitter is the final
        // participant. Tickets beyond the claimable work are pointless.
        let tickets = participants.min(n).saturating_sub(1);
        if tickets > 0 && !self.inner.shutdown.load(Ordering::SeqCst) {
            self.submit(&batch, tickets);
        }

        // Participate: claim indices until exhausted.
        let mut claimed = 0u64;
        loop {
            let i = batch.next.fetch_add(1, Ordering::Relaxed);
            if i >= batch.n {
                break;
            }
            batch.execute(i);
            claimed += 1;
        }
        if claimed > 0 {
            self.inner
                .counters
                .inline
                .fetch_add(claimed, Ordering::Relaxed);
            self.inner.obs.inline.add(claimed);
        }
        // Wait for in-flight stragglers claimed by other threads. They
        // are actively executing on live threads, so this terminates.
        if !batch.complete() {
            let mut guard = batch.done_lock.lock().expect("batch done lock poisoned");
            while !batch.complete() {
                guard = batch.done_cv.wait(guard).expect("batch done lock poisoned");
            }
        }
        let payload = batch
            .panic
            .lock()
            .expect("batch panic slot poisoned")
            .take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }

    /// Split `data` into `chunk_len`-sized chunks and run
    /// `f(chunk_index, chunk)` for each through the pool, blocking
    /// until all complete. Each chunk is handed to exactly one task —
    /// disjoint `&mut` access with no copies and no unsafe in the
    /// caller (this is how the blocked GEMM fans its output row blocks
    /// out). Participation semantics match [`WorkerPool::run`].
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`, and propagates task panics like
    /// [`WorkerPool::run`].
    pub fn for_each_chunk_mut<T, F>(
        &self,
        participants: usize,
        data: &mut [T],
        chunk_len: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(
            chunk_len > 0,
            "for_each_chunk_mut: chunk_len must be positive"
        );
        if data.is_empty() {
            return;
        }
        let n_chunks = data.len().div_ceil(chunk_len);
        if participants <= 1 || n_chunks == 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        // Hand each task exclusive ownership of its chunk through a
        // one-shot slot; the lock is uncontended by construction (one
        // taker per slot), so this stays safe without being hot.
        let chunks: Vec<Mutex<Option<&mut [T]>>> = data
            .chunks_mut(chunk_len)
            .map(|chunk| Mutex::new(Some(chunk)))
            .collect();
        self.run(chunks.len(), participants, &|i| {
            let chunk = chunks[i]
                .lock()
                .expect("chunk slot poisoned")
                .take()
                .expect("each chunk is claimed exactly once");
            f(i, chunk);
        });
    }

    /// Push `count` tickets for `batch`: onto this worker's own deque
    /// when called from a pool worker (nested batch), onto the
    /// injector otherwise — then wake parked workers.
    fn submit(&self, batch: &Ticket, count: usize) {
        let own_deque = CURRENT_WORKER
            .with(|c| c.get())
            .and_then(|(pool, idx)| (pool == Arc::as_ptr(&self.inner) as usize).then_some(idx));
        {
            let queue = match own_deque {
                Some(idx) => &self.inner.deques[idx],
                None => &self.inner.injector,
            };
            let mut queue = queue.lock().expect("submission queue poisoned");
            for _ in 0..count {
                queue.push_back(Arc::clone(batch));
            }
        }
        // Notify under the sleep lock: a worker checks the queues
        // while holding it before parking, so this wakeup cannot race
        // past a parking decision.
        let _guard = self.inner.sleep.lock().expect("sleep lock poisoned");
        self.inner.wake.notify_all();
    }

    /// Stop the workers and join them. Queued tickets are drained
    /// first (workers only exit when idle), and `run` keeps working
    /// afterwards — it just executes inline. Intended for tests; the
    /// global pool is never shut down.
    pub fn shutdown(&self) {
        {
            let _guard = self.inner.sleep.lock().expect("sleep lock poisoned");
            self.inner.shutdown.store(true, Ordering::SeqCst);
            self.inner.wake.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = self
            .handles
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker body: drain work, steal when dry, park when idle.
fn worker_loop(inner: &Arc<PoolInner>, idx: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((Arc::as_ptr(inner) as usize, idx))));
    loop {
        if let Some(ticket) = find_work(inner, idx) {
            // Participate until the batch's claim counter is
            // exhausted. A stale ticket (batch already finished)
            // claims nothing and costs one atomic.
            let mut claimed = 0u64;
            loop {
                let i = ticket.next.fetch_add(1, Ordering::Relaxed);
                if i >= ticket.n {
                    break;
                }
                ticket.execute(i);
                claimed += 1;
            }
            if claimed > 0 {
                inner.counters.tasks.fetch_add(claimed, Ordering::Relaxed);
                inner.obs.tasks.add(claimed);
            }
            continue;
        }
        let guard = inner.sleep.lock().expect("sleep lock poisoned");
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Re-check under the lock: a submission between the failed
        // `find_work` and this point already notified (or will notify
        // only after we release the lock in `wait`).
        if inner.has_queued_work() {
            continue;
        }
        inner.counters.parks.fetch_add(1, Ordering::Relaxed);
        inner.obs.parks.inc();
        let parked_at = Instant::now();
        drop(inner.wake.wait(guard).expect("sleep lock poisoned"));
        inner.obs.park_nanos.record_duration(parked_at.elapsed());
    }
}

/// Own deque first (LIFO — deepest nested work), then the injector
/// (FIFO — oldest external batch), then steal round-robin from
/// siblings (FIFO — their coldest end).
fn find_work(inner: &PoolInner, idx: usize) -> Option<Ticket> {
    if let Some(ticket) = inner.deques[idx]
        .lock()
        .expect("worker deque poisoned")
        .pop_back()
    {
        return Some(ticket);
    }
    if let Some(ticket) = inner
        .injector
        .lock()
        .expect("injector poisoned")
        .pop_front()
    {
        return Some(ticket);
    }
    for offset in 1..inner.deques.len() {
        let victim = (idx + offset) % inner.deques.len();
        if let Some(ticket) = inner.deques[victim]
            .lock()
            .expect("worker deque poisoned")
            .pop_front()
        {
            inner.counters.steals.fetch_add(1, Ordering::Relaxed);
            inner.obs.steals.inc();
            return Some(ticket);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OnceSlots;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkerPool::new(2);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), 4, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::SeqCst), 1, "index {i}");
        }
        pool.shutdown();
    }

    #[test]
    fn nested_runs_do_not_deadlock_at_tiny_pool_sizes() {
        for workers in [1, 2] {
            let pool = WorkerPool::new(workers);
            let total = AtomicUsize::new(0);
            // Three levels of nesting, fan-out 3 each: 27 leaf tasks.
            pool.run(3, 4, &|_| {
                pool.run(3, 4, &|_| {
                    pool.run(3, 4, &|_| {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                });
            });
            assert_eq!(total.load(Ordering::SeqCst), 27, "{workers} workers");
            pool.shutdown();
        }
    }

    #[test]
    fn run_works_inline_after_shutdown() {
        let pool = WorkerPool::new(2);
        pool.shutdown();
        let slots = OnceSlots::new(8);
        pool.run(8, 4, &|i| slots.set(i, i * 2));
        let out: Vec<usize> = slots.into_options().into_iter().flatten().collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, 4, &|i| {
                if i == 7 {
                    panic!("cell 7 exploded");
                }
            });
        }));
        let payload = outcome.expect_err("panic must propagate to the submitter");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "cell 7 exploded");
        // The pool still works after a panicking batch.
        let count = AtomicUsize::new(0);
        pool.run(8, 4, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 8);
        pool.shutdown();
    }

    #[test]
    fn counters_account_every_task() {
        let pool = WorkerPool::new(2);
        let before = pool.stats();
        pool.run(64, 4, &|_| {});
        let delta = pool.stats().since(&before);
        assert_eq!(delta.tasks + delta.inline, 64, "every index accounted");
        assert_eq!(delta.batches, 1);
        pool.shutdown();
    }

    #[test]
    fn for_each_chunk_mut_covers_all_chunks_with_remainder() {
        let pool = WorkerPool::new(2);
        let mut data: Vec<usize> = vec![0; 23];
        pool.for_each_chunk_mut(4, &mut data, 5, |chunk_idx, chunk| {
            // 23 / 5 → 4 full chunks + a 3-element remainder.
            assert!(chunk.len() == 5 || (chunk_idx == 4 && chunk.len() == 3));
            for (offset, value) in chunk.iter_mut().enumerate() {
                *value = chunk_idx * 5 + offset;
            }
        });
        let expected: Vec<usize> = (0..23).collect();
        assert_eq!(data, expected);
        pool.shutdown();
    }

    #[test]
    fn zero_and_one_sized_batches_are_trivial() {
        let pool = WorkerPool::new(1);
        pool.run(0, 8, &|_| unreachable!("no tasks in an empty batch"));
        let ran = AtomicUsize::new(0);
        pool.run(1, 8, &|i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn concurrent_external_submitters_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    pool.run(25, 3, &|_| {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("submitter thread");
        }
        assert_eq!(total.load(Ordering::SeqCst), 100);
        pool.shutdown();
    }
}
