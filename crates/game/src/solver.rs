//! The unified solver interface: every zero-sum solver in this crate
//! behind one trait, plus a runtime-selectable [`SolverKind`] with an
//! auto-select heuristic.
//!
//! The three concrete solvers trade exactness for scalability:
//!
//! | solver | exact? | scales to |
//! |---|---|---|
//! | [`SimplexLp`] | yes | small/medium games (LP tableau is `O((m+n)²)`) |
//! | [`FictitiousPlay`] | no (`O(1/√t)`) | large games, anytime |
//! | [`MultiplicativeWeights`] | no (`O(√(ln k / T))`) | large games, parallel-friendly |
//!
//! [`SolverKind::Auto`] picks the exact LP for small games and
//! multiplicative weights beyond [`AUTO_EXACT_LIMIT`] actions, so
//! experiment configs can stay solver-agnostic while sweeps scale.
//!
//! # Example
//!
//! ```
//! use poisongame_theory::{MatrixGame, SolverKind, ZeroSumSolver};
//!
//! let rps = MatrixGame::from_rows(&[
//!     vec![0.0, -1.0, 1.0],
//!     vec![1.0, 0.0, -1.0],
//!     vec![-1.0, 1.0, 0.0],
//! ]).unwrap();
//! for kind in SolverKind::ALL {
//!     let solver = kind.instantiate(&rps);
//!     let sol = solver.solve(&rps).unwrap();
//!     let expl = rps.exploitability(&sol.row_strategy, &sol.column_strategy).unwrap();
//!     assert!(expl <= solver.exploitability_bound(&rps), "{}", solver.name());
//! }
//! ```

use crate::error::GameError;
use crate::fictitious::{solve_fictitious_play, FictitiousPlayConfig};
use crate::matrix_game::MatrixGame;
use crate::multiplicative::{solve_multiplicative_weights, MultiplicativeWeightsConfig};
use crate::simplex::solve_lp;
use crate::strategy::Solution;
use serde::{Deserialize, Serialize};

/// Largest action count for which [`SolverKind::Auto`] still picks the
/// exact LP. Beyond this the tableau work grows cubically and the
/// iterative solvers win.
pub const AUTO_EXACT_LIMIT: usize = 128;

/// A zero-sum matrix-game solver: solve a [`MatrixGame`] into a
/// [`Solution`] and describe its own quality guarantees.
pub trait ZeroSumSolver {
    /// Stable identifier (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Whether returned solutions are exact equilibria (up to floating
    /// point), as opposed to iterative approximations.
    fn is_exact(&self) -> bool;

    /// Advertised upper bound on the exploitability of the profile this
    /// solver returns for `game`. Successful [`solve`](Self::solve)
    /// calls must stay below it.
    fn exploitability_bound(&self, game: &MatrixGame) -> f64;

    /// Solve the game.
    ///
    /// # Errors
    ///
    /// Propagates the underlying solver's failure modes (degenerate
    /// payoffs, iteration caps).
    fn solve(&self, game: &MatrixGame) -> Result<Solution, GameError>;
}

/// The exact primal-simplex LP solver (see [`crate::simplex`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplexLp;

impl ZeroSumSolver for SimplexLp {
    fn name(&self) -> &'static str {
        "simplex_lp"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn exploitability_bound(&self, game: &MatrixGame) -> f64 {
        // Exact up to accumulated pivot round-off, which scales with
        // the payoff magnitude.
        1e-8 * game
            .max_payoff()
            .abs()
            .max(game.min_payoff().abs())
            .max(1.0)
    }

    fn solve(&self, game: &MatrixGame) -> Result<Solution, GameError> {
        solve_lp(game)
    }
}

/// Fictitious play behind the unified interface (see
/// [`crate::fictitious`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FictitiousPlay(pub FictitiousPlayConfig);

impl ZeroSumSolver for FictitiousPlay {
    fn name(&self) -> &'static str {
        "fictitious_play"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn exploitability_bound(&self, _game: &MatrixGame) -> f64 {
        // `solve_fictitious_play` only returns Ok once the measured
        // exploitability is below the configured tolerance.
        self.0.tolerance
    }

    fn solve(&self, game: &MatrixGame) -> Result<Solution, GameError> {
        solve_fictitious_play(game, &self.0)
    }
}

/// Multiplicative weights (Hedge) behind the unified interface (see
/// [`crate::multiplicative`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MultiplicativeWeights(pub MultiplicativeWeightsConfig);

impl ZeroSumSolver for MultiplicativeWeights {
    fn name(&self) -> &'static str {
        "multiplicative_weights"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn exploitability_bound(&self, game: &MatrixGame) -> f64 {
        // Hedge regret: the averaged profile's exploitability is at
        // most the sum of both players' average regrets,
        // range·√(ln k / (2T)) each. A 2× cushion absorbs the
        // non-asymptotic constants at practical iteration counts.
        let (m, n) = game.shape();
        let t = self.0.iterations.max(1) as f64;
        let range = (game.max_payoff() - game.min_payoff()).max(1e-12);
        let reg = |k: usize| range * ((k as f64).ln().max(1.0) / (2.0 * t)).sqrt();
        2.0 * (reg(m) + reg(n))
    }

    fn solve(&self, game: &MatrixGame) -> Result<Solution, GameError> {
        solve_multiplicative_weights(game, &self.0)
    }
}

/// Runtime-selectable solver choice, carried by experiment configs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Exact LP for games up to [`AUTO_EXACT_LIMIT`] actions per side,
    /// multiplicative weights beyond.
    #[default]
    Auto,
    /// Always the exact simplex LP.
    Simplex,
    /// Always fictitious play (default configuration).
    FictitiousPlay,
    /// Always multiplicative weights (default configuration).
    MultiplicativeWeights,
}

impl SolverKind {
    /// The three concrete choices (excludes [`SolverKind::Auto`]) —
    /// handy for benches and cross-solver tests.
    pub const ALL: [SolverKind; 3] = [
        SolverKind::Simplex,
        SolverKind::FictitiousPlay,
        SolverKind::MultiplicativeWeights,
    ];

    /// Resolve `Auto` against a concrete game's size.
    pub fn resolve(self, game: &MatrixGame) -> SolverKind {
        match self {
            SolverKind::Auto => {
                let (m, n) = game.shape();
                if m.max(n) <= AUTO_EXACT_LIMIT {
                    SolverKind::Simplex
                } else {
                    SolverKind::MultiplicativeWeights
                }
            }
            concrete => concrete,
        }
    }

    /// Build the solver this kind denotes for `game`.
    pub fn instantiate(self, game: &MatrixGame) -> Box<dyn ZeroSumSolver> {
        match self.resolve(game) {
            SolverKind::Simplex => Box::new(SimplexLp),
            SolverKind::FictitiousPlay => Box::new(FictitiousPlay::default()),
            SolverKind::MultiplicativeWeights => Box::new(MultiplicativeWeights::default()),
            SolverKind::Auto => unreachable!("resolve never returns Auto"),
        }
    }

    /// Build a cheap, coarse-tolerance variant for seeding work where
    /// a rough equilibrium is enough (e.g. Algorithm 1's warm start).
    /// Iterative budgets are bounded so a hard game cannot stall the
    /// caller for millions of iterations.
    pub fn instantiate_coarse(self, game: &MatrixGame) -> Box<dyn ZeroSumSolver> {
        match self.resolve(game) {
            SolverKind::Simplex => Box::new(SimplexLp),
            SolverKind::FictitiousPlay => Box::new(FictitiousPlay(FictitiousPlayConfig {
                max_iterations: 200_000,
                tolerance: 2e-2,
                check_every: 1_000,
            })),
            SolverKind::MultiplicativeWeights => {
                Box::new(MultiplicativeWeights(MultiplicativeWeightsConfig {
                    iterations: 5_000,
                    eta: None,
                }))
            }
            SolverKind::Auto => unreachable!("resolve never returns Auto"),
        }
    }

    /// Solve `game` with the denoted solver.
    ///
    /// # Errors
    ///
    /// Propagates the underlying solver's failure modes.
    pub fn solve(self, game: &MatrixGame) -> Result<Solution, GameError> {
        self.instantiate(game).solve(game)
    }

    /// The resolved solver's stable name for `game`.
    pub fn name_for(self, game: &MatrixGame) -> &'static str {
        self.instantiate(game).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rps() -> MatrixGame {
        MatrixGame::from_rows(&[
            vec![0.0, -1.0, 1.0],
            vec![1.0, 0.0, -1.0],
            vec![-1.0, 1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn all_solvers_meet_their_advertised_bounds_on_rps() {
        let g = rps();
        for kind in SolverKind::ALL {
            let solver = kind.instantiate(&g);
            let sol = solver.solve(&g).unwrap();
            let expl = g
                .exploitability(&sol.row_strategy, &sol.column_strategy)
                .unwrap();
            assert!(
                expl <= solver.exploitability_bound(&g),
                "{}: exploitability {expl} above bound {}",
                solver.name(),
                solver.exploitability_bound(&g)
            );
        }
    }

    #[test]
    fn auto_picks_lp_for_small_games() {
        let g = rps();
        assert_eq!(SolverKind::Auto.resolve(&g), SolverKind::Simplex);
        assert_eq!(SolverKind::Auto.name_for(&g), "simplex_lp");
    }

    #[test]
    fn auto_picks_iterative_for_large_games() {
        let g = MatrixGame::from_fn(AUTO_EXACT_LIMIT + 1, 4, |i, j| (i + j) as f64 % 3.0);
        assert_eq!(
            SolverKind::Auto.resolve(&g),
            SolverKind::MultiplicativeWeights
        );
    }

    #[test]
    fn concrete_kinds_resolve_to_themselves() {
        let g = rps();
        for kind in SolverKind::ALL {
            assert_eq!(kind.resolve(&g), kind);
        }
    }

    #[test]
    fn exactness_flags() {
        let g = rps();
        assert!(SolverKind::Simplex.instantiate(&g).is_exact());
        assert!(!SolverKind::FictitiousPlay.instantiate(&g).is_exact());
        assert!(!SolverKind::MultiplicativeWeights.instantiate(&g).is_exact());
    }

    #[test]
    fn kind_solve_matches_direct_call() {
        let g = rps();
        let a = SolverKind::Simplex.solve(&g).unwrap();
        let b = solve_lp(&g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn default_kind_is_auto() {
        assert_eq!(SolverKind::default(), SolverKind::Auto);
    }
}
