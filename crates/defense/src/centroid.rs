//! Robust location estimators for the per-class centroid.
//!
//! The paper's defense anchors its sphere filter on the class centroid.
//! Because the attacker contaminates the training data, a robust
//! estimator matters: §3.1 notes the strategy "is justified … as long
//! as the defender uses a good method to find the centroid (i.e. a
//! method less affected by the outliers)". The `centroid_ablation`
//! bench quantifies the choice.

use crate::error::DefenseError;
use poisongame_linalg::{stats, vector};
use serde::{Deserialize, Serialize};

/// Which location estimator anchors the filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CentroidEstimator {
    /// Arithmetic mean — cheapest, 0 % breakdown point.
    Mean,
    /// Coordinate-wise median — 50 % breakdown per coordinate.
    CoordinateMedian,
    /// Coordinate-wise symmetrically trimmed mean.
    TrimmedMean {
        /// Fraction trimmed from each tail, in `[0, 0.5)`.
        trim: f64,
    },
    /// Geometric median via Weiszfeld iteration — the classic
    /// high-breakdown multivariate location estimator.
    GeometricMedian,
}

impl Default for CentroidEstimator {
    /// Coordinate-wise median: robust and deterministic, the estimator
    /// used by the reproduction's experiments.
    fn default() -> Self {
        CentroidEstimator::CoordinateMedian
    }
}

impl CentroidEstimator {
    /// Estimate the centroid of a set of points (rows).
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::EmptyDataset`] for no rows,
    /// [`DefenseError::BadParameter`] for an invalid trim fraction, and
    /// [`DefenseError::NoConvergence`] if Weiszfeld stalls.
    pub fn estimate(&self, points: &[&[f64]]) -> Result<Vec<f64>, DefenseError> {
        let first = points.first().ok_or(DefenseError::EmptyDataset)?;
        let dim = first.len();
        match *self {
            CentroidEstimator::Mean => {
                let mut mean = vec![0.0; dim];
                for p in points {
                    vector::axpy(1.0, p, &mut mean);
                }
                vector::scale(1.0 / points.len() as f64, &mut mean);
                Ok(mean)
            }
            CentroidEstimator::CoordinateMedian => {
                let mut out = Vec::with_capacity(dim);
                let mut column = Vec::with_capacity(points.len());
                for c in 0..dim {
                    column.clear();
                    column.extend(points.iter().map(|p| p[c]));
                    out.push(stats::median(&column));
                }
                Ok(out)
            }
            CentroidEstimator::TrimmedMean { trim } => {
                let mut out = Vec::with_capacity(dim);
                let mut column = Vec::with_capacity(points.len());
                for c in 0..dim {
                    column.clear();
                    column.extend(points.iter().map(|p| p[c]));
                    let m = stats::trimmed_mean(&column, trim).map_err(|_| {
                        DefenseError::BadParameter {
                            what: "trim",
                            value: trim,
                        }
                    })?;
                    out.push(m);
                }
                Ok(out)
            }
            CentroidEstimator::GeometricMedian => geometric_median(points, 200, 1e-9),
        }
    }
}

/// Weiszfeld's algorithm for the geometric median.
///
/// Converges for any starting point not equal to a data point; we start
/// from the coordinate mean and nudge off data points if hit.
///
/// # Errors
///
/// Returns [`DefenseError::EmptyDataset`] for no rows and
/// [`DefenseError::NoConvergence`] if the iteration cap is reached
/// without the step shrinking below `tolerance`.
pub fn geometric_median(
    points: &[&[f64]],
    max_iterations: usize,
    tolerance: f64,
) -> Result<Vec<f64>, DefenseError> {
    let first = points.first().ok_or(DefenseError::EmptyDataset)?;
    let dim = first.len();
    if points.len() == 1 {
        return Ok(first.to_vec());
    }

    // Start at the mean.
    let mut current = vec![0.0; dim];
    for p in points {
        vector::axpy(1.0, p, &mut current);
    }
    vector::scale(1.0 / points.len() as f64, &mut current);

    for _ in 0..max_iterations {
        let mut numerator = vec![0.0; dim];
        let mut denominator = 0.0;
        let mut at_data_point = false;
        for p in points {
            let d = vector::euclidean_distance(p, &current);
            if d < 1e-12 {
                at_data_point = true;
                continue;
            }
            let w = 1.0 / d;
            vector::axpy(w, p, &mut numerator);
            denominator += w;
        }
        if denominator == 0.0 {
            // All points coincide with the iterate — it is the median.
            return Ok(current);
        }
        let mut next: Vec<f64> = numerator.iter().map(|v| v / denominator).collect();
        if at_data_point {
            // Standard Weiszfeld fix: take a damped step when the
            // iterate sits on a data point.
            next = vector::lerp(&current, &next, 0.5);
        }
        let step = vector::euclidean_distance(&next, &current);
        current = next;
        if step < tolerance {
            return Ok(current);
        }
    }
    Err(DefenseError::NoConvergence {
        iterations: max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[Vec<f64>]) -> Vec<&[f64]> {
        data.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn mean_is_arithmetic() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let c = CentroidEstimator::Mean.estimate(&rows(&data)).unwrap();
        assert_eq!(c, vec![1.0, 2.0]);
    }

    #[test]
    fn median_ignores_one_outlier() {
        let data = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![1000.0, -1000.0],
        ];
        let c = CentroidEstimator::CoordinateMedian
            .estimate(&rows(&data))
            .unwrap();
        assert_eq!(c, vec![1.5, 0.5]);
    }

    #[test]
    fn trimmed_mean_between_mean_and_median() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![100.0]];
        let trimmed = CentroidEstimator::TrimmedMean { trim: 0.2 }
            .estimate(&rows(&data))
            .unwrap();
        assert_eq!(trimmed, vec![2.0]);
        assert!(matches!(
            CentroidEstimator::TrimmedMean { trim: 0.7 }
                .estimate(&rows(&data))
                .unwrap_err(),
            DefenseError::BadParameter { .. }
        ));
    }

    #[test]
    fn geometric_median_of_symmetric_points_is_center() {
        let data = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ];
        let c = CentroidEstimator::GeometricMedian
            .estimate(&rows(&data))
            .unwrap();
        assert!(vector::norm2(&c) < 1e-6, "centroid {c:?}");
    }

    #[test]
    fn geometric_median_resists_outlier_better_than_mean() {
        let mut data = vec![vec![0.0, 0.0]; 9];
        data.push(vec![100.0, 0.0]);
        let refs = rows(&data);
        let mean = CentroidEstimator::Mean.estimate(&refs).unwrap();
        let gm = CentroidEstimator::GeometricMedian.estimate(&refs).unwrap();
        assert!((mean[0] - 10.0).abs() < 1e-9);
        assert!(gm[0].abs() < 0.01, "geometric median pulled to {}", gm[0]);
    }

    #[test]
    fn geometric_median_single_point() {
        let data = vec![vec![3.0, 4.0]];
        let c = geometric_median(&rows(&data), 10, 1e-9).unwrap();
        assert_eq!(c, vec![3.0, 4.0]);
    }

    #[test]
    fn geometric_median_identical_points() {
        let data = vec![vec![2.0, 2.0]; 5];
        let c = geometric_median(&rows(&data), 50, 1e-9).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_rejected() {
        let empty: Vec<&[f64]> = vec![];
        for est in [
            CentroidEstimator::Mean,
            CentroidEstimator::CoordinateMedian,
            CentroidEstimator::GeometricMedian,
        ] {
            assert!(matches!(
                est.estimate(&empty).unwrap_err(),
                DefenseError::EmptyDataset
            ));
        }
    }

    #[test]
    fn default_is_coordinate_median() {
        assert_eq!(
            CentroidEstimator::default(),
            CentroidEstimator::CoordinateMedian
        );
    }
}
