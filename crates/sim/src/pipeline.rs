//! Dataset preparation and the shared attack → filter → train →
//! evaluate loop.

use crate::error::SimError;
use poisongame_attack::{AttackStrategy, BoundaryAttack, RadiusSpec, ThreatModel};
use poisongame_core::{Algorithm1Config, SolverKind};
use poisongame_data::scale::StandardScaler;
use poisongame_data::split::train_test_split;
use poisongame_data::synth::{gaussian_blobs, spambase_like, SpambaseConfig};
use poisongame_data::Dataset;
use poisongame_defense::{
    CentroidEstimator, Filter, FilterAccounting, FilterStrength, RadiusFilter,
};
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_ml::svm::LinearSvm;
use poisongame_ml::{Classifier, TrainConfig};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which dataset the experiment runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataSource {
    /// The synthetic Spambase stand-in (see `poisongame-data`).
    SyntheticSpambase {
        /// Number of rows (UCI: 4601).
        rows: usize,
    },
    /// Gaussian blobs — small and fast, for tests and the quickstart.
    Blobs {
        /// Points per class.
        per_class: usize,
        /// Feature dimension.
        dim: usize,
        /// Class-mean separation.
        offset: f64,
        /// Isotropic standard deviation.
        sigma: f64,
    },
    /// A verbatim Spambase-format CSV (drop-in for the real UCI file).
    CsvText {
        /// The file contents.
        text: String,
    },
}

impl Default for DataSource {
    fn default() -> Self {
        DataSource::SyntheticSpambase { rows: 4601 }
    }
}

/// Experiment configuration shared by Figure 1 / Table 1 / scaling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Master seed: every random choice derives from it.
    pub seed: u64,
    /// Dataset source.
    pub source: DataSource,
    /// Held-out fraction (paper: 0.3).
    pub test_fraction: f64,
    /// Attacker budget as a fraction of the clean training set
    /// (paper: 0.2).
    pub budget_fraction: f64,
    /// SVM training epochs (paper: 5000).
    pub epochs: usize,
    /// Centroid estimator anchoring the defense filter.
    pub centroid: CentroidEstimator,
    /// Matrix-game solver for the discretized-game solves an
    /// experiment opts into (`Auto`: exact LP for small games, Hedge
    /// beyond the size limit). With the default
    /// [`Self::warm_start`]` = false` the paper's pipeline solves no
    /// matrix games, so this field has no effect until `warm_start`
    /// (or a direct [`poisongame_core::bridge`] cross-check) uses it.
    #[serde(default)]
    pub solver: SolverKind,
    /// Warm-start Algorithm 1 from the discretized game's NE (solved
    /// with [`Self::solver`] on a bounded seeding budget) instead of
    /// the paper's even `chooseInitialRadius(n)` spread. Off by
    /// default: the paper's behavior is preserved exactly unless
    /// opted in.
    #[serde(default)]
    pub warm_start: bool,
}

impl ExperimentConfig {
    /// The paper's experimental setup: Spambase-scale data, 70/30
    /// split, 20 % budget, 5000-epoch hinge-loss SVM.
    pub fn paper() -> Self {
        Self {
            seed: 20190607, // arXiv submission date of the paper
            source: DataSource::default(),
            test_fraction: 0.3,
            budget_fraction: 0.2,
            epochs: 5000,
            centroid: CentroidEstimator::CoordinateMedian,
            solver: SolverKind::Auto,
            warm_start: false,
        }
    }

    /// Same protocol at reduced scale/epochs — minutes-to-seconds for
    /// CI and examples. The curve *shapes* are preserved.
    pub fn quick(mut self) -> Self {
        self.epochs = 150;
        if let DataSource::SyntheticSpambase { rows } = self.source {
            self.source = DataSource::SyntheticSpambase {
                rows: rows.min(1500),
            };
        }
        self
    }

    /// Training configuration derived from this experiment.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            seed: self.seed ^ 0x7261_696e, // "rain" — decorrelate from data seed
            ..TrainConfig::default()
        }
    }

    /// Algorithm 1 configuration implied by this experiment — the one
    /// place the solver / warm-start knobs translate into an
    /// [`Algorithm1Config`].
    pub fn algorithm1_config(&self, n_radii: usize) -> Algorithm1Config {
        Algorithm1Config {
            n_radii,
            solver: self.solver,
            warm_start: self.warm_start,
            ..Algorithm1Config::default()
        }
    }

    /// The threat model implied by the budget fraction.
    pub fn threat_model(&self) -> ThreatModel {
        ThreatModel {
            budget_fraction: self.budget_fraction,
            ..ThreatModel::paper()
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A prepared experiment: scaled train/test splits plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Prepared {
    /// Scaled training data (clean).
    pub train: Dataset,
    /// Scaled held-out data.
    pub test: Dataset,
    /// The scaler fitted on the raw training split.
    pub scaler: StandardScaler,
    /// Number of poison points the budget allows.
    pub n_poison: usize,
}

/// Generate, split and scale the dataset for an experiment.
///
/// # Errors
///
/// Propagates dataset generation/splitting/scaling failures.
pub fn prepare(config: &ExperimentConfig) -> Result<Prepared, SimError> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed);
    let full = match &config.source {
        DataSource::SyntheticSpambase { rows } => spambase_like(
            &SpambaseConfig {
                rows: *rows,
                ..SpambaseConfig::default()
            },
            &mut rng,
        ),
        DataSource::Blobs {
            per_class,
            dim,
            offset,
            sigma,
        } => gaussian_blobs(*per_class, *dim, *offset, *sigma, &mut rng),
        DataSource::CsvText { text } => poisongame_data::csv::parse_csv(text)?,
    };
    let (train_raw, test_raw) = train_test_split(&full, config.test_fraction, &mut rng)?;
    // Z-scoring (not min-max): it stabilizes SGD while *preserving* the
    // heavy right tails of the capital-run columns, which carry the
    // distance geometry the radius filter and the game model live on.
    let (train, scaler) = StandardScaler::fit_transform(&train_raw)?;
    let test = scaler.transform(&test_raw)?;
    let n_poison = config.threat_model().poison_count(train.len())?;
    Ok(Prepared {
        train,
        test,
        scaler,
        n_poison,
    })
}

/// Result of one attack → filter → train → evaluate run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Held-out accuracy of the model trained on the filtered data.
    pub accuracy: f64,
    /// Ground-truth poison/genuine accounting of the filter.
    pub accounting: FilterAccounting,
    /// Fraction of the (poisoned) training set the filter removed.
    pub removed_fraction: f64,
}

/// Filter a (possibly poisoned) training set, train the SVM on the
/// survivors and evaluate on the held-out split.
///
/// `poison_indices` is the experiment's ground truth for accounting;
/// pass `&[]` for clean runs.
///
/// # Errors
///
/// Propagates filtering and training failures.
pub fn filter_train_eval(
    train: &Dataset,
    poison_indices: &[usize],
    test: &Dataset,
    strength: FilterStrength,
    config: &ExperimentConfig,
) -> Result<EvalOutcome, SimError> {
    let filter = RadiusFilter::new(strength, config.centroid);
    let outcome = filter.split(train)?;
    let kept = outcome.kept_dataset(train);
    let mut svm = LinearSvm::new(config.train_config());
    svm.fit(&kept)?;
    Ok(EvalOutcome {
        accuracy: svm.accuracy_on(test),
        accounting: outcome.account(poison_indices),
        removed_fraction: outcome.removed_fraction(train),
    })
}

/// The placement that "hugs" a strength-`theta` filter from inside,
/// accounting for the attacker's own contamination: the rank-based
/// global filter removes `θ·(n+m)` points of the poisoned training
/// set, so the poison must sit deeper than the `θ·(n+m)/n` quantile of
/// the *genuine* distance distribution (plus `slack` for the centroid
/// shift the poison itself induces). `n` is the clean training size,
/// `m` the poison budget.
pub fn hugging_placement(prepared: &Prepared, theta: f64, slack: f64) -> f64 {
    let n = prepared.train.len() as f64;
    let m = prepared.n_poison as f64;
    (theta * (n + m) / n + slack).min(0.95)
}

/// Poison the clean training set with the optimal boundary attack at
/// `placement` (removal-percentile axis), then filter/train/evaluate.
///
/// # Errors
///
/// Propagates attack, filtering and training failures.
pub fn attack_filter_train_eval(
    prepared: &Prepared,
    placement: f64,
    strength: FilterStrength,
    config: &ExperimentConfig,
    rng: &mut Xoshiro256StarStar,
) -> Result<EvalOutcome, SimError> {
    let attack = BoundaryAttack::new(RadiusSpec::Percentile(placement));
    let (poisoned, injected) = attack.poison(&prepared.train, prepared.n_poison, rng)?;
    filter_train_eval(&poisoned, &injected, &prepared.test, strength, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_blob_config() -> ExperimentConfig {
        ExperimentConfig {
            seed: 7,
            source: DataSource::Blobs {
                per_class: 120,
                dim: 4,
                offset: 3.0,
                sigma: 0.6,
            },
            test_fraction: 0.3,
            budget_fraction: 0.2,
            epochs: 40,
            centroid: CentroidEstimator::CoordinateMedian,
            solver: SolverKind::Auto,
            warm_start: false,
        }
    }

    /// Small synthetic-Spambase config: the geometry the attack is
    /// calibrated for (blobs are too separable for poison to matter).
    fn quick_spam_config() -> ExperimentConfig {
        ExperimentConfig {
            seed: 7,
            source: DataSource::SyntheticSpambase { rows: 600 },
            test_fraction: 0.3,
            budget_fraction: 0.2,
            epochs: 40,
            centroid: CentroidEstimator::CoordinateMedian,
            solver: SolverKind::Auto,
            warm_start: false,
        }
    }

    #[test]
    fn prepare_splits_and_scales() {
        let p = prepare(&quick_blob_config()).unwrap();
        assert_eq!(p.train.len() + p.test.len(), 240);
        assert_eq!(p.n_poison, (p.train.len() as f64 * 0.2).round() as usize);
        // Z-scored: every column of the training split has ~zero mean.
        let sums = p.train.features().column_means().unwrap();
        assert!(sums.iter().all(|m| m.abs() < 1e-9));
    }

    #[test]
    fn clean_baseline_accuracy_is_high() {
        let config = quick_blob_config();
        let p = prepare(&config).unwrap();
        let out = filter_train_eval(
            &p.train,
            &[],
            &p.test,
            FilterStrength::RemoveFraction(0.0),
            &config,
        )
        .unwrap();
        assert!(out.accuracy > 0.95, "clean accuracy {}", out.accuracy);
        assert_eq!(out.accounting.poison_removed, 0);
    }

    #[test]
    fn boundary_attack_hurts_unfiltered_model() {
        let config = quick_spam_config();
        let p = prepare(&config).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let clean = filter_train_eval(
            &p.train,
            &[],
            &p.test,
            FilterStrength::RemoveFraction(0.0),
            &config,
        )
        .unwrap();
        let attacked = attack_filter_train_eval(
            &p,
            0.02,
            FilterStrength::RemoveFraction(0.0),
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(
            attacked.accuracy < clean.accuracy - 0.02,
            "attack did nothing: clean {} vs attacked {}",
            clean.accuracy,
            attacked.accuracy
        );
    }

    #[test]
    fn strong_filter_blunts_shallow_attack() {
        let config = quick_spam_config();
        let p = prepare(&config).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        // Attack right at the boundary; a 30 % filter removes far more
        // points than the poison budget plus genuine tail — the poison
        // dies and accuracy recovers most of the damage.
        let unfiltered = attack_filter_train_eval(
            &p,
            0.01,
            FilterStrength::RemoveFraction(0.0),
            &config,
            &mut rng,
        )
        .unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let filtered = attack_filter_train_eval(
            &p,
            0.01,
            FilterStrength::RemoveFraction(0.30),
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(
            filtered.accounting.poison_recall() > 0.8,
            "filter caught only {:.0}%",
            filtered.accounting.poison_recall() * 100.0
        );
        assert!(
            filtered.accuracy > unfiltered.accuracy + 0.05,
            "filtering did not recover accuracy: {} vs {}",
            filtered.accuracy,
            unfiltered.accuracy
        );
    }

    #[test]
    fn deep_attack_survives_weak_filter() {
        let config = quick_spam_config();
        let p = prepare(&config).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        // Attack deep (30th percentile), filter only removes 5 %.
        let out = attack_filter_train_eval(
            &p,
            0.30,
            FilterStrength::RemoveFraction(0.05),
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(
            out.accounting.poison_recall() < 0.2,
            "deep poison should survive, recall {:.2}",
            out.accounting.poison_recall()
        );
    }

    #[test]
    fn paper_config_values() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.test_fraction, 0.3);
        assert_eq!(c.budget_fraction, 0.2);
        assert_eq!(c.epochs, 5000);
        let q = c.quick();
        assert!(q.epochs < 5000);
    }

    #[test]
    fn csv_source_round_trips() {
        let config = ExperimentConfig {
            seed: 5,
            source: DataSource::CsvText {
                text: (0..60)
                    .map(|i| {
                        let y = i % 2;
                        let base = if y == 1 { 5.0 } else { 0.0 };
                        format!("{},{},{}\n", base + (i % 7) as f64 * 0.1, base, y)
                    })
                    .collect::<String>(),
            },
            test_fraction: 0.3,
            budget_fraction: 0.1,
            epochs: 20,
            centroid: CentroidEstimator::Mean,
            solver: SolverKind::Auto,
            warm_start: false,
        };
        let p = prepare(&config).unwrap();
        assert_eq!(p.train.len() + p.test.len(), 60);
        assert_eq!(p.train.dim(), 2);
    }
}
