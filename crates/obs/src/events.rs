//! Bounded ring-buffer structured event log.
//!
//! Events are small JSON objects with a process-monotonic sequence
//! number, a wall-clock timestamp, a severity, a kind string (e.g.
//! `"shed"`, `"deadline_missed"`, `"cache_eviction"`,
//! `"shard_resize"`, `"worker_panic"`, `"slow_request"`) and typed
//! fields. The buffer keeps the most recent `capacity` events; when
//! full it drops the oldest and counts the drop, so readers paging
//! with [`EventLog::since`] can tell when their cursor fell behind.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Capacity of the process-wide [`EventLog::global`] buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Expected operational signal.
    Info,
    /// Degraded but handled (shed, deadline miss, slow request).
    Warn,
    /// Something broke (worker panic).
    Error,
}

impl Severity {
    /// Lowercase wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parse the wire name back. Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as JSON `null`).
    F64(f64),
    /// String.
    Str(String),
}

/// One structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Process-monotonic sequence number, starting at 1.
    pub seq: u64,
    /// Wall-clock microseconds since the Unix epoch at publish time.
    pub unix_micros: u64,
    /// Severity.
    pub severity: Severity,
    /// Event kind, e.g. `"shed"` or `"deadline_missed"`.
    pub kind: String,
    /// Typed fields, in publish order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Render as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"unix_micros\":");
        out.push_str(&self.unix_micros.to_string());
        out.push_str(",\"severity\":\"");
        out.push_str(self.severity.as_str());
        out.push_str("\",\"kind\":\"");
        push_escaped(&mut out, &self.kind);
        out.push_str("\",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            push_escaped(&mut out, key);
            out.push_str("\":");
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::I64(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) => {
                    if v.is_finite() {
                        out.push_str(&v.to_string());
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Str(s) => {
                    out.push('"');
                    push_escaped(&mut out, s);
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
        out
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

struct State {
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<Event>,
}

/// Result of an [`EventLog::since`] replay.
#[derive(Clone, Debug, PartialEq)]
pub struct EventReplay {
    /// Events with `seq > cursor`, oldest first.
    pub events: Vec<Event>,
    /// Total events ever evicted from the buffer. If this grew past
    /// the reader's cursor, the reader missed events.
    pub dropped: u64,
    /// Highest sequence number ever published (0 if none).
    pub last_seq: u64,
}

/// A bounded, thread-safe ring buffer of [`Event`]s.
pub struct EventLog {
    capacity: usize,
    state: Mutex<State>,
}

impl EventLog {
    /// Create an empty log holding at most `capacity` events
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventLog {
            capacity,
            state: Mutex::new(State {
                next_seq: 1,
                dropped: 0,
                ring: VecDeque::with_capacity(capacity),
            }),
        }
    }

    /// The process-wide event log every tier publishes into.
    pub fn global() -> &'static EventLog {
        static GLOBAL: OnceLock<EventLog> = OnceLock::new();
        GLOBAL.get_or_init(|| EventLog::with_capacity(DEFAULT_EVENT_CAPACITY))
    }

    /// Publish an event; returns its sequence number (0 under the
    /// `noop` feature, which publishes nothing).
    pub fn publish(
        &self,
        severity: Severity,
        kind: &str,
        fields: Vec<(String, FieldValue)>,
    ) -> u64 {
        if cfg!(feature = "noop") {
            return 0;
        }
        let unix_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(Event {
            seq,
            unix_micros,
            severity,
            kind: kind.to_string(),
            fields,
        });
        seq
    }

    /// Replay every buffered event with `seq > cursor`, oldest first.
    pub fn since(&self, cursor: u64) -> EventReplay {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        EventReplay {
            events: state
                .ring
                .iter()
                .filter(|e| e.seq > cursor)
                .cloned()
                .collect(),
            dropped: state.dropped,
            last_seq: state.next_seq - 1,
        }
    }

    /// Highest sequence number ever published (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_seq
            - 1
    }
}

// Value-asserting tests are meaningless with recording compiled out.
#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn kinds(replay: &EventReplay) -> Vec<u64> {
        replay.events.iter().map(|e| e.seq).collect()
    }

    #[test]
    fn sequence_is_monotonic_from_one() {
        let log = EventLog::with_capacity(8);
        assert_eq!(log.publish(Severity::Info, "a", vec![]), 1);
        assert_eq!(log.publish(Severity::Warn, "b", vec![]), 2);
        assert_eq!(log.publish(Severity::Error, "c", vec![]), 3);
        assert_eq!(log.last_seq(), 3);
        assert_eq!(kinds(&log.since(0)), vec![1, 2, 3]);
        assert_eq!(kinds(&log.since(2)), vec![3]);
        assert_eq!(kinds(&log.since(3)), Vec::<u64>::new());
    }

    #[test]
    fn full_buffer_drops_oldest() {
        let log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.publish(Severity::Info, &format!("e{i}"), vec![]);
        }
        let replay = log.since(0);
        assert_eq!(kinds(&replay), vec![3, 4, 5]);
        assert_eq!(replay.dropped, 2);
        assert_eq!(replay.last_seq, 5);
    }

    #[test]
    fn json_shape_and_escaping() {
        let event = Event {
            seq: 7,
            unix_micros: 123,
            severity: Severity::Warn,
            kind: "slow_request".to_string(),
            fields: vec![
                ("elapsed_nanos".to_string(), FieldValue::U64(42)),
                ("delta".to_string(), FieldValue::I64(-5)),
                ("ratio".to_string(), FieldValue::F64(0.5)),
                (
                    "note".to_string(),
                    FieldValue::Str("a\"b\\c\nd".to_string()),
                ),
                ("bad".to_string(), FieldValue::F64(f64::NAN)),
            ],
        };
        assert_eq!(
            event.to_json(),
            "{\"seq\":7,\"unix_micros\":123,\"severity\":\"warn\",\
             \"kind\":\"slow_request\",\"fields\":{\"elapsed_nanos\":42,\
             \"delta\":-5,\"ratio\":0.5,\"note\":\"a\\\"b\\\\c\\nd\",\"bad\":null}}"
        );
    }
}
