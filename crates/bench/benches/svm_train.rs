//! Bench: the victim model — hinge-loss SVM training at various epoch
//! budgets (the paper trains 5000 epochs; the sweep shows cost is
//! linear in epochs, which justifies the reduced-epoch quick mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poisongame_bench::bench_dataset;
use poisongame_ml::svm::LinearSvm;
use poisongame_ml::{Classifier, TrainConfig};
use std::hint::black_box;

fn bench_svm(c: &mut Criterion) {
    let data = bench_dataset(1200);
    let mut group = c.benchmark_group("svm_train");
    group.sample_size(10);

    for epochs in [50usize, 200, 1000] {
        group.bench_with_input(BenchmarkId::new("epochs", epochs), &epochs, |b, &epochs| {
            b.iter(|| {
                let mut svm = LinearSvm::new(TrainConfig {
                    epochs,
                    ..TrainConfig::default()
                });
                svm.fit(black_box(&data)).expect("training succeeds");
                black_box(svm.bias())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svm);
criterion_main!(benches);
