//! Out-of-core file-source preparation.
//!
//! The [`crate::pipeline::DataSource::File`] arm of `prepare_data`
//! lands here. Three outcomes:
//!
//! * **Absent file** → deterministic fallback to the synthetic
//!   Spambase generator (CI stays green offline; the caller consumes
//!   the *same* rng stream the `SyntheticSpambase` arm would).
//! * **Whole-file mode** (`chunk_rows` unset) → stream the file once
//!   through the strict reader into a `Dataset`, validate the
//!   checksum, then hand back to the classic split/scale path.
//! * **Chunked mode** (`chunk_rows` set) → two streaming passes. Pass
//!   1 counts rows and pins the checksum; the split permutation is
//!   then computed *up front* from the row count alone, so pass 2 can
//!   scatter each parsed chunk directly into its final train/test
//!   position and drop it. Peak extra memory is bounded by
//!   `max_inflight_chunks × chunk_rows` raw rows — the backpressure
//!   budget — while the destination matrices are exactly the
//!   preparation's output, so a dataset ~100× the resident Spambase
//!   size preps in bounded space.
//!
//! **Bit-identity.** Chunked mode reproduces whole-file preparation
//! exactly: the same `shuffled_indices` draw from the same rng state
//! decides the split, scattering row `idx[j]` to position `j`
//! reproduces `Dataset::select`'s row order, and the in-place scaler
//! applies the same per-element arithmetic as the copying transform.
//! `tests/ingest.rs` pins this with `to_bits` comparisons.

use crate::error::SimError;
use crate::exec::{try_parallel_map, ExecPolicy};
use crate::pipeline::PreparedData;
use poisongame_data::scale::StandardScaler;
use poisongame_data::{DataError, Dataset, Label};
use poisongame_io::{
    parse_chunk, read_dataset, FileSource, IngestError, IngestLimits, RecordSource,
};
use poisongame_linalg::rng::{shuffled_indices, Xoshiro256StarStar};
use poisongame_linalg::Matrix;
use std::io::BufReader;

/// Default bound on chunks admitted to the parse fan-out at once —
/// the out-of-core memory budget in units of `chunk_rows` raw rows.
pub const DEFAULT_MAX_INFLIGHT_CHUNKS: usize = 4;

/// What a file source resolved to.
pub(crate) enum Loaded {
    /// Chunked mode ran to completion — the preparation is already
    /// split and scaled.
    Prepared(PreparedData),
    /// Whole-file mode — the caller splits and scales as usual.
    Full(Dataset),
    /// The file is absent — generate this many synthetic rows.
    Fallback(usize),
}

/// Resolve a file source (see the module docs for the three
/// outcomes). `rng` is consumed only by the chunked path's split
/// draw, mirroring `train_test_split` exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn load_file(
    path: &str,
    checksum: Option<u64>,
    format_name: &str,
    chunk_rows: Option<usize>,
    max_inflight_chunks: Option<usize>,
    test_fraction: f64,
    rng: &mut Xoshiro256StarStar,
) -> Result<Loaded, SimError> {
    if chunk_rows == Some(0) {
        return Err(IngestError::ZeroChunkRows.into());
    }
    if max_inflight_chunks == Some(0) {
        return Err(IngestError::ZeroInflightChunks.into());
    }
    let format = poisongame_io::lookup_format(format_name)?;
    let source = FileSource::new(path, checksum, format);
    let limits = IngestLimits::default();
    let Some(per_chunk) = chunk_rows else {
        // Whole-file mode: one streaming pass, checksum validated
        // against what that pass actually read.
        let Some(reader) = source.open()? else {
            poisongame_io::telemetry::note_fallback(path);
            return Ok(Loaded::Fallback(format.fallback_rows));
        };
        let (dataset, summary) =
            read_dataset(BufReader::new(reader), format.feature_columns, &limits)?;
        source.verify(summary.checksum)?;
        return Ok(Loaded::Full(dataset));
    };
    // Chunked mode, pass 1: rows + checksum without materializing
    // anything.
    let Some(scan) = source.scan_verified(&limits)? else {
        poisongame_io::telemetry::note_fallback(path);
        return Ok(Loaded::Fallback(format.fallback_rows));
    };
    let n = scan.rows;
    if n == 0 {
        return Err(IngestError::Empty.into());
    }
    // Replicate `train_test_split`'s validation and permutation draw
    // verbatim — same rejects, same rng consumption, same ordering.
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 || test_fraction.is_nan() {
        return Err(DataError::BadFraction {
            what: "test_fraction",
            value: test_fraction,
        }
        .into());
    }
    let n_test = (n as f64 * test_fraction).round() as usize;
    if n_test == 0 || n_test == n {
        return Err(DataError::DegenerateSplit.into());
    }
    let idx = shuffled_indices(n, rng);
    // Invert the permutation into a scatter map: source row r lands at
    // `dest[r]`. Test rows are `idx[..n_test]` in draw order, train
    // rows `idx[n_test..]` — exactly the row order `select` produces.
    #[derive(Clone, Copy)]
    enum Dest {
        Train(usize),
        Test(usize),
    }
    let mut dest = vec![Dest::Train(usize::MAX); n];
    for (j, &r) in idx[..n_test].iter().enumerate() {
        dest[r] = Dest::Test(j);
    }
    for (j, &r) in idx[n_test..].iter().enumerate() {
        dest[r] = Dest::Train(j);
    }
    let n_train = n - n_test;
    let changed = || -> SimError {
        IngestError::SourceChanged {
            source: path.to_string(),
        }
        .into()
    };
    // Pass 2: re-open (the file vanishing now is corruption, not a
    // fallback) and scatter bounded waves of parsed chunks into their
    // final positions.
    let Some(reader) = source.open()? else {
        return Err(changed());
    };
    let mut chunks = poisongame_io::ChunkReader::new(BufReader::new(reader), per_chunk, limits)?;
    let policy = ExecPolicy::default();
    let inflight = max_inflight_chunks.unwrap_or(DEFAULT_MAX_INFLIGHT_CHUNKS);
    let gauge = &poisongame_io::telemetry::metrics().inflight;
    let mut cols = format.feature_columns;
    let mut train_x: Option<Matrix> = None;
    let mut test_x: Option<Matrix> = None;
    let mut train_y = vec![Label::Negative; n_train];
    let mut test_y = vec![Label::Negative; n_test];
    loop {
        let mut wave = Vec::with_capacity(inflight);
        while wave.len() < inflight {
            match chunks.next_chunk()? {
                Some(chunk) => wave.push(chunk),
                None => break,
            }
        }
        if wave.is_empty() {
            break;
        }
        gauge.set(wave.len() as i64);
        // Parse fan-out through the shared worker pool; the lowest-
        // indexed error wins, as everywhere else in the harness.
        let parsed = try_parallel_map(&policy, &wave, |_, chunk| parse_chunk(chunk, cols));
        gauge.set(0);
        let parsed = parsed?;
        for (raw, chunk) in wave.iter().zip(&parsed) {
            let width = match cols {
                Some(c) => c,
                None => {
                    cols = Some(chunk.cols);
                    chunk.cols
                }
            };
            // Width-inferring formats parse a wave's chunks
            // concurrently, each pinning its own width from its first
            // row — so a ragged file whose arity changes exactly at a
            // chunk boundary yields internally-consistent chunks that
            // disagree with each other. Corrupt input is an error,
            // never a silent misalignment.
            if chunk.cols != width {
                return Err(IngestError::BadArity {
                    line: raw.line_numbers[0],
                    expected: width + 1,
                    found: chunk.cols + 1,
                }
                .into());
            }
            let (train_x, test_x) = (
                train_x.get_or_insert_with(|| Matrix::zeros(n_train, width)),
                test_x.get_or_insert_with(|| Matrix::zeros(n_test, width)),
            );
            for (i, row) in chunk.features.chunks_exact(width).enumerate() {
                let g = chunk.first_row + i;
                if g >= n {
                    // The file grew between passes.
                    return Err(changed());
                }
                match dest[g] {
                    Dest::Train(p) => {
                        train_x.row_mut(p).copy_from_slice(row);
                        train_y[p] = chunk.labels[i];
                    }
                    Dest::Test(p) => {
                        test_x.row_mut(p).copy_from_slice(row);
                        test_y[p] = chunk.labels[i];
                    }
                }
            }
        }
    }
    // The source must be byte-identical across the two passes — a
    // shrunk, grown or rewritten file would scatter rows of one
    // version through a split planned for another.
    let replay = chunks.summary();
    if replay.rows != n || replay.checksum != scan.checksum {
        return Err(changed());
    }
    let (Some(train_x), Some(test_x)) = (train_x, test_x) else {
        return Err(changed());
    };
    let mut train = Dataset::new(train_x, train_y)?;
    let mut test = Dataset::new(test_x, test_y)?;
    // Same fit as the whole-file path (identical rows in identical
    // order), applied in place with identical per-element arithmetic.
    let scaler = StandardScaler::fit(&train)?;
    scaler.transform_in_place(&mut train)?;
    scaler.transform_in_place(&mut test)?;
    Ok(Loaded::Prepared(PreparedData {
        train,
        test,
        scaler,
    }))
}
