//! Game-theoretic analysis of the poisoning game (Propositions 1 & 2).
//!
//! * Traces both best-response functions and verifies no pure profile
//!   is a mutual best response (Proposition 1).
//! * Discretizes the game to a payoff matrix, confirms the matrix has
//!   no saddle point, and solves it exactly by LP (the mixed NE whose
//!   existence Proposition 2 guarantees).
//! * Cross-checks Algorithm 1's defender loss against the LP value and
//!   against fictitious play / multiplicative weights.
//!
//! ```sh
//! cargo run --release --example game_analysis
//! ```

use poisongame::core::brf::analyze;
use poisongame::core::bridge::{solve_discretized, to_matrix_game};
use poisongame::core::game_model::percentile_grid;
use poisongame::core::paper::paper_game;
use poisongame::core::{Algorithm1, Algorithm1Config};
use poisongame::theory::{
    solve_fictitious_play, solve_multiplicative_weights, FictitiousPlayConfig,
    MultiplicativeWeightsConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper-calibrated game (see `poisongame::core::paper`): fast,
    // deterministic, and in the non-degenerate regime where the
    // paper's propositions bite.
    let game = paper_game()?;

    println!("== Proposition 1: no pure-strategy Nash equilibrium ==");
    let analysis = analyze(&game, 60);
    println!(
        "profit threshold T_a (percentile form): {:?}",
        analysis.profit_threshold
    );
    println!(
        "pure fixed point on 61-point grid: {:?}",
        analysis.pure_fixed_point
    );
    println!("pure NE absent: {}", analysis.pure_ne_absent());
    println!("attacker BR hugs the filter (first 5 grid strengths):");
    for (theta, placement) in analysis.attacker_best.iter().take(5) {
        println!("  θ = {:.3} → place at {:?}", theta, placement);
    }

    println!("\n== Discretized matrix game ==");
    let grid = percentile_grid(60);
    let matrix = to_matrix_game(&game, &grid);
    println!(
        "payoff matrix: {}x{} (attacker x defender)",
        matrix.rows(),
        matrix.cols()
    );
    println!(
        "saddle point: {:?} (Proposition 1, discrete form)",
        matrix.saddle_point()
    );

    let lp = solve_discretized(&game, 60)?;
    println!("\nLP (exact) solution:");
    println!("  game value (defender loss): {:.5}", lp.value);
    println!("  defender support: {:?}", lp.defender_strategy.support());
    println!(
        "  defender probabilities: {:?}",
        lp.defender_strategy.probabilities()
    );
    println!("  attacker support: {:?}", lp.attacker_support);

    println!("\n== Iterative solvers on the same matrix ==");
    match solve_fictitious_play(&matrix, &FictitiousPlayConfig::default()) {
        Ok(fp) => println!(
            "  fictitious play: value {:.5} ({} iterations)",
            fp.value, fp.iterations
        ),
        Err(e) => println!("  fictitious play: {e}"),
    }
    let mw = solve_multiplicative_weights(&matrix, &MultiplicativeWeightsConfig::default())?;
    println!(
        "  multiplicative weights: value {:.5} ({} iterations)",
        mw.value, mw.iterations
    );

    println!("\n== Algorithm 1 vs the exact LP ==");
    for n in [2, 3, 4] {
        let result = Algorithm1::new(Algorithm1Config {
            n_radii: n,
            ..Default::default()
        })
        .solve(&game)?;
        println!(
            "  n = {n}: strategy {}, defender loss {:.5} (LP floor {:.5})",
            result.strategy, result.defender_loss, lp.value
        );
    }
    Ok(())
}
