//! Data poisoning attack strategies.
//!
//! The paper's attacker injects `N` points, each placed "optimally
//! within `r_i` distance from the centroid of the original dataset" —
//! i.e. adversarially-labelled points pushed as far from their claimed
//! class's centroid as the filter allows, along the direction that
//! drags the decision boundary. [`BoundaryAttack`] implements that
//! placement for one radius, [`MixedRadiusAttack`] for a full attacker
//! strategy `S_a = {[r_1,n_1],…}`, and label-flip / noise attacks serve
//! as weaker baselines.
//!
//! # Example
//!
//! ```
//! use poisongame_attack::{AttackStrategy, BoundaryAttack, RadiusSpec};
//! use poisongame_data::synth::gaussian_blobs;
//! use poisongame_linalg::Xoshiro256StarStar;
//! use rand::SeedableRng;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let clean = gaussian_blobs(50, 2, 3.0, 0.5, &mut rng);
//! let attack = BoundaryAttack::new(RadiusSpec::Percentile(0.05));
//! let poison = attack.generate(&clean, 10, &mut rng).unwrap();
//! assert_eq!(poison.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod error;
pub mod flip;
pub mod mixed;
pub mod noise;
pub mod response;
pub mod threat;

pub use boundary::{AnchorScope, BoundaryAttack, CentroidKind, RadiusSpec, TargetClass};
pub use error::AttackError;
pub use flip::LabelFlipAttack;
pub use mixed::{MixedRadiusAttack, RadiusAllocation};
pub use noise::RandomNoiseAttack;
pub use response::best_response_position;
pub use threat::{Knowledge, ThreatModel};

use poisongame_data::Dataset;
use poisongame_linalg::Xoshiro256StarStar;

/// A poisoning attack: given the clean training data, synthesize a
/// poison dataset to inject.
pub trait AttackStrategy {
    /// Generate `n_points` poison points.
    ///
    /// # Errors
    ///
    /// Implementations reject empty/degenerate clean data and invalid
    /// placement parameters.
    fn generate(
        &self,
        clean: &Dataset,
        n_points: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Result<Dataset, AttackError>;

    /// Convenience: generate poison and return `(poisoned training set,
    /// indices of the injected points within it)`.
    ///
    /// # Errors
    ///
    /// Propagates [`AttackStrategy::generate`] errors.
    fn poison(
        &self,
        clean: &Dataset,
        n_points: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Result<(Dataset, Vec<usize>), AttackError> {
        let poison = self.generate(clean, n_points, rng)?;
        let mut combined = clean.clone();
        combined.extend_from(&poison).map_err(AttackError::Data)?;
        let injected = (clean.len()..combined.len()).collect();
        Ok((combined, injected))
    }
}
