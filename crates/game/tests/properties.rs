//! Property-based tests on the zero-sum substrate: the LP solution of
//! a random game is always an equilibrium, and values respect the
//! pure-strategy bounds.

use poisongame_theory::{solve_lp, MatrixGame, MixedStrategy};
use proptest::prelude::*;

fn random_game() -> impl Strategy<Value = MatrixGame> {
    (1usize..7, 1usize..7).prop_flat_map(|(m, n)| {
        prop::collection::vec(-10.0f64..10.0, m * n).prop_map(move |cells| {
            let rows: Vec<Vec<f64>> = cells.chunks(n).map(|c| c.to_vec()).collect();
            MatrixGame::from_rows(&rows).expect("finite payoffs")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_solution_has_zero_exploitability(game in random_game()) {
        let sol = solve_lp(&game).unwrap();
        let expl = game.exploitability(&sol.row_strategy, &sol.column_strategy).unwrap();
        prop_assert!(expl.abs() < 1e-6, "exploitability {expl}");
    }

    #[test]
    fn value_between_pure_bounds(game in random_game()) {
        let sol = solve_lp(&game).unwrap();
        prop_assert!(sol.value >= game.pure_maximin() - 1e-9);
        prop_assert!(sol.value <= game.pure_minimax() + 1e-9);
    }

    #[test]
    fn saddle_point_when_found_matches_lp_value(game in random_game()) {
        if let Some((i, j)) = game.saddle_point() {
            let sol = solve_lp(&game).unwrap();
            prop_assert!((game.payoff(i, j) - sol.value).abs() < 1e-6);
        }
    }

    #[test]
    fn mixed_strategy_normalization(weights in prop::collection::vec(0.0f64..10.0, 1..10)) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 1e-9);
        let s = MixedStrategy::from_weights(weights).unwrap();
        let sum: f64 = s.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shifting_payoffs_shifts_value_linearly(game in random_game(), delta in -5.0f64..5.0) {
        let base = solve_lp(&game).unwrap();
        let shifted = solve_lp(&game.shifted(delta)).unwrap();
        prop_assert!((shifted.value - base.value - delta).abs() < 1e-6);
    }
}
