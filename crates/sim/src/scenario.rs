//! The scenario-spec API: pluggable attack × defense × learner
//! experiments behind one serializable surface.
//!
//! The paper's evaluation is one fixed triple — boundary attack, radius
//! filter, linear SVM — but its game model is defined over arbitrary
//! strategy spaces. This module makes every strategy the workspace
//! ships reachable from a plain data description:
//!
//! * [`AttackSpec`] / [`DefenseSpec`] / [`LearnerSpec`] — serializable
//!   enums covering each shipped attack, filter and classifier, each
//!   with a `build()` returning the boxed trait object the pipeline
//!   dispatches through.
//! * [`Scenario`] — one (attack, defense, learner) triple; its
//!   [`Default`] is the paper's triple, so every existing config and
//!   experiment is unchanged until a scenario is opted into.
//! * [`ScenarioBuilder`] — ergonomic construction.
//! * [`ScenarioMatrix`] + [`run_matrix`] — the attack×defense×learner
//!   cross-product, fanned out through the [`crate::exec`] worker pool
//!   with per-cell derived seeds and collected into a long-format
//!   result table (one row per cell).
//!
//! Specs serialize to JSON through [`crate::jsonio`] (the `serde`
//! dependency is an offline marker shim, so the wire format lives
//! here): see [`Scenario::from_json_str`] and
//! [`ScenarioMatrix::from_json_str`] for the schema.
//!
//! # Example
//!
//! ```
//! use poisongame_sim::scenario::{AttackSpec, DefenseSpec, LearnerSpec, Scenario};
//!
//! let scenario = Scenario::builder()
//!     .attack(AttackSpec::LabelFlip)
//!     .defense(DefenseSpec::Knn { k: 5 })
//!     .learner(LearnerSpec::LogReg)
//!     .build();
//! let json = scenario.to_json_string();
//! assert_eq!(Scenario::from_json_str(&json).unwrap(), scenario);
//! assert_eq!(Scenario::from_json_str("{}").unwrap(), Scenario::default());
//! ```

use crate::error::SimError;
use crate::exec::{try_parallel_map, ExecPolicy};
use crate::jsonio::{self, Json};
use crate::pipeline::{
    filter_train_eval, hugging_placement, prepare, run_cell, run_cell_trained, EvalOutcome,
    ExperimentConfig, Prepared,
};
use poisongame_attack::{
    AttackStrategy, BoundaryAttack, LabelFlipAttack, MixedRadiusAttack, RadiusSpec,
    RandomNoiseAttack,
};
use poisongame_defense::{
    CentroidEstimator, Filter, FilterStrength, KnnDistanceFilter, RadiusFilter, SlabFilter,
};
use poisongame_linalg::rng::SplitMix64;
use poisongame_ml::batch::batched_accuracy;
use poisongame_ml::logreg::LogisticRegression;
use poisongame_ml::perceptron::AveragedPerceptron;
use poisongame_ml::svm::LinearSvm;
use poisongame_ml::{Classifier, LinearState, TrainConfig};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which poisoning attack a scenario runs.
///
/// Attacks are built per experiment cell: the pipeline hands `build`
/// the cell's placement (the removal-percentile axis shared with the
/// defense sweep) and the poison budget, so one spec serves every
/// sweep point.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum AttackSpec {
    /// The paper's optimal single-radius boundary attack at the cell's
    /// placement — the default.
    #[default]
    Boundary,
    /// The paper's full strategy `S_a = {[r_1,n_1],…}`: the budget is
    /// split across several placements proportionally to `weights`.
    /// Each element of `offsets` is added to the cell's base placement
    /// (clamped to `[0, 0.95]`), so the mixture tracks the sweep the
    /// same way the boundary attack does.
    MixedRadius {
        /// Placement offsets relative to the cell's base placement.
        offsets: Vec<f64>,
        /// Budget share per offset (normalized; largest-remainder
        /// apportionment makes counts sum exactly to the budget).
        weights: Vec<f64>,
    },
    /// Label-flip baseline: in-distribution copies with inverted
    /// labels (ignores the placement axis).
    LabelFlip,
    /// Random-noise baseline: uniform points in the data's bounding
    /// box with random labels (ignores the placement axis).
    RandomNoise,
}

impl AttackSpec {
    /// Short stable name used in report tables and JSON (`"type"`).
    pub fn name(&self) -> &'static str {
        match self {
            AttackSpec::Boundary => "boundary",
            AttackSpec::MixedRadius { .. } => "mixed_radius",
            AttackSpec::LabelFlip => "label_flip",
            AttackSpec::RandomNoise => "random_noise",
        }
    }

    /// Build the attack for one experiment cell.
    ///
    /// `placement` is the cell's position on the removal-percentile
    /// axis (what [`hugging_placement`] computes for the boundary
    /// attack); `n_poison` is the budget the strategy must allocate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Attack`] for invalid mixture weights.
    pub fn build(
        &self,
        placement: f64,
        n_poison: usize,
    ) -> Result<Box<dyn AttackStrategy>, SimError> {
        Ok(match self {
            AttackSpec::Boundary => {
                Box::new(BoundaryAttack::new(RadiusSpec::Percentile(placement)))
            }
            AttackSpec::MixedRadius { offsets, weights } => {
                let specs: Vec<RadiusSpec> = offsets
                    .iter()
                    .map(|&o| RadiusSpec::Percentile((placement + o).clamp(0.0, 0.95)))
                    .collect();
                Box::new(MixedRadiusAttack::proportional(&specs, weights, n_poison)?)
            }
            AttackSpec::LabelFlip => Box::new(LabelFlipAttack::new()),
            AttackSpec::RandomNoise => Box::new(RandomNoiseAttack::new()),
        })
    }

    fn to_json(&self) -> Json {
        match self {
            AttackSpec::MixedRadius { offsets, weights } => Json::obj(vec![
                ("type", Json::str(self.name())),
                ("offsets", Json::nums(offsets)),
                ("weights", Json::nums(weights)),
            ]),
            _ => Json::obj(vec![("type", Json::str(self.name()))]),
        }
    }

    fn from_json(value: &Json) -> Result<Self, SimError> {
        let kind = jsonio::spec_type(value, "attack")?;
        let allowed: &[&str] = if kind == "mixed_radius" {
            &["type", "offsets", "weights"]
        } else {
            &["type"]
        };
        jsonio::check_keys(value, "attack", allowed)?;
        match kind {
            "boundary" => Ok(AttackSpec::Boundary),
            "mixed_radius" => Ok(AttackSpec::MixedRadius {
                offsets: jsonio::num_array(value, "offsets")?,
                weights: jsonio::num_array(value, "weights")?,
            }),
            "label_flip" => Ok(AttackSpec::LabelFlip),
            "random_noise" => Ok(AttackSpec::RandomNoise),
            other => Err(SimError::Spec(format!("unknown attack type `{other}`"))),
        }
    }
}

/// Which training-data sanitizer a scenario runs.
///
/// Filters are built per cell from the sweep's [`FilterStrength`] and
/// the experiment's centroid estimator, so one spec serves a whole
/// strength sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DefenseSpec {
    /// The paper's sphere (radius) filter around a robust centroid —
    /// the default.
    #[default]
    Radius,
    /// k-NN distance filter baseline (density-based). Only supports
    /// fraction strengths.
    Knn {
        /// Neighbour count (must be positive).
        k: usize,
    },
    /// Slab filter baseline (projection onto the inter-centroid
    /// axis). Only supports fraction strengths.
    Slab,
}

impl DefenseSpec {
    /// Short stable name used in report tables and JSON (`"type"`).
    pub fn name(&self) -> &'static str {
        match self {
            DefenseSpec::Radius => "radius",
            DefenseSpec::Knn { .. } => "knn",
            DefenseSpec::Slab => "slab",
        }
    }

    /// Human-readable label including parameters (for report rows).
    pub fn label(&self) -> String {
        match self {
            DefenseSpec::Knn { k } => format!("knn(k={k})"),
            _ => self.name().to_string(),
        }
    }

    /// Build the filter for one experiment cell at the given strength.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadParameter`] for `k = 0` or an
    /// [`FilterStrength::AbsoluteRadius`] strength on the baselines
    /// (only the radius filter is radius-parameterized).
    pub fn build(
        &self,
        strength: FilterStrength,
        centroid: CentroidEstimator,
    ) -> Result<Box<dyn Filter>, SimError> {
        let fraction_of = |strength: FilterStrength| match strength {
            FilterStrength::RemoveFraction(f) => Ok(f),
            FilterStrength::AbsoluteRadius(r) => Err(SimError::BadParameter {
                what: "strength (baseline filters need a fraction)",
                value: r,
            }),
        };
        Ok(match *self {
            DefenseSpec::Radius => Box::new(RadiusFilter::new(strength, centroid)),
            DefenseSpec::Knn { k } => {
                if k == 0 {
                    return Err(SimError::BadParameter {
                        what: "k",
                        value: 0.0,
                    });
                }
                Box::new(KnnDistanceFilter::new(k, fraction_of(strength)?))
            }
            DefenseSpec::Slab => Box::new(SlabFilter::new(fraction_of(strength)?, centroid)),
        })
    }

    fn to_json(self) -> Json {
        match self {
            DefenseSpec::Knn { k } => Json::obj(vec![
                ("type", Json::str(self.name())),
                ("k", Json::Num(k as f64)),
            ]),
            _ => Json::obj(vec![("type", Json::str(self.name()))]),
        }
    }

    fn from_json(value: &Json) -> Result<Self, SimError> {
        let kind = jsonio::spec_type(value, "defense")?;
        let allowed: &[&str] = if kind == "knn" {
            &["type", "k"]
        } else {
            &["type"]
        };
        jsonio::check_keys(value, "defense", allowed)?;
        match kind {
            "radius" => Ok(DefenseSpec::Radius),
            "knn" => {
                let k = value
                    .get("k")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| SimError::Spec("knn defense needs integer `k`".into()))?;
                Ok(DefenseSpec::Knn { k: k as usize })
            }
            "slab" => Ok(DefenseSpec::Slab),
            other => Err(SimError::Spec(format!("unknown defense type `{other}`"))),
        }
    }
}

/// Which victim model a scenario trains on the filtered data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LearnerSpec {
    /// The paper's hinge-loss linear SVM — the default.
    #[default]
    Svm,
    /// Averaged perceptron baseline.
    Perceptron,
    /// L2-regularized logistic regression baseline.
    LogReg,
}

impl LearnerSpec {
    /// Short stable name used in report tables and JSON (`"type"`).
    pub fn name(&self) -> &'static str {
        match self {
            LearnerSpec::Svm => "svm",
            LearnerSpec::Perceptron => "perceptron",
            LearnerSpec::LogReg => "logreg",
        }
    }

    /// Build an unfitted classifier with the experiment's training
    /// configuration.
    pub fn build(&self, config: TrainConfig) -> Box<dyn Classifier> {
        match self {
            LearnerSpec::Svm => Box::new(LinearSvm::new(config)),
            LearnerSpec::Perceptron => Box::new(AveragedPerceptron::new(config)),
            LearnerSpec::LogReg => Box::new(LogisticRegression::new(config)),
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![("type", Json::str(self.name()))])
    }

    fn from_json(value: &Json) -> Result<Self, SimError> {
        jsonio::check_keys(value, "learner", &["type"])?;
        match jsonio::spec_type(value, "learner")? {
            "svm" => Ok(LearnerSpec::Svm),
            "perceptron" => Ok(LearnerSpec::Perceptron),
            "logreg" => Ok(LearnerSpec::LogReg),
            other => Err(SimError::Spec(format!("unknown learner type `{other}`"))),
        }
    }
}

/// One attack × defense × learner triple — the unit every experiment
/// cell dispatches through.
///
/// [`Scenario::default`] is the paper's triple (boundary attack,
/// radius filter, linear SVM), and [`ExperimentConfig`] embeds a
/// scenario with `#[serde(default)]`, so configs that never mention a
/// scenario reproduce the paper's pipeline bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// Poison generator.
    #[serde(default)]
    pub attack: AttackSpec,
    /// Training-data sanitizer.
    #[serde(default)]
    pub defense: DefenseSpec,
    /// Victim model.
    #[serde(default)]
    pub learner: LearnerSpec,
}

impl Scenario {
    /// The paper's triple (same as [`Scenario::default`], spelled out).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Start building a scenario from the paper's defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// `attack × defense × learner` label for report rows.
    pub fn label(&self) -> String {
        format!(
            "{} × {} × {}",
            self.attack.name(),
            self.defense.label(),
            self.learner.name()
        )
    }

    /// The JSON form: `{"attack": {...}, "defense": {...},
    /// "learner": {...}}`. See [`Scenario::from_json_str`] for the
    /// accepted spec shapes.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("attack", self.attack.to_json()),
            ("defense", self.defense.to_json()),
            ("learner", self.learner.to_json()),
        ])
    }

    /// Render as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parse from a JSON value. Absent fields take the paper's
    /// defaults (`{}` is the paper triple).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on unknown types or malformed
    /// fields.
    pub fn from_json(value: &Json) -> Result<Self, SimError> {
        if !matches!(value, Json::Obj(_)) {
            return Err(SimError::Spec("scenario must be a JSON object".into()));
        }
        // With every axis optional, a typo'd key would silently run
        // the paper triple — reject unknown keys instead.
        jsonio::check_keys(value, "scenario", &["attack", "defense", "learner"])?;
        Ok(Self {
            attack: value
                .get("attack")
                .map(AttackSpec::from_json)
                .transpose()?
                .unwrap_or_default(),
            defense: value
                .get("defense")
                .map(DefenseSpec::from_json)
                .transpose()?
                .unwrap_or_default(),
            learner: value
                .get("learner")
                .map(LearnerSpec::from_json)
                .transpose()?
                .unwrap_or_default(),
        })
    }

    /// Parse from a JSON string.
    ///
    /// Accepted spec shapes (each field optional, defaulting to the
    /// paper triple):
    ///
    /// ```json
    /// {
    ///   "attack":  {"type": "boundary"
    ///               | "mixed_radius", "offsets": [..], "weights": [..]
    ///               | "label_flip" | "random_noise"},
    ///   "defense": {"type": "radius" | "knn", "k": 5 | "slab"},
    ///   "learner": {"type": "svm" | "perceptron" | "logreg"}
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on syntax errors, unknown types or
    /// malformed fields.
    pub fn from_json_str(text: &str) -> Result<Self, SimError> {
        let value = Json::parse(text).map_err(|e| SimError::Spec(e.to_string()))?;
        Self::from_json(&value)
    }
}

/// Ergonomic [`Scenario`] construction; every field defaults to the
/// paper triple.
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    attack: AttackSpec,
    defense: DefenseSpec,
    learner: LearnerSpec,
}

impl ScenarioBuilder {
    /// Set the attack.
    pub fn attack(mut self, attack: AttackSpec) -> Self {
        self.attack = attack;
        self
    }

    /// Set the defense.
    pub fn defense(mut self, defense: DefenseSpec) -> Self {
        self.defense = defense;
        self
    }

    /// Set the learner.
    pub fn learner(mut self, learner: LearnerSpec) -> Self {
        self.learner = learner;
        self
    }

    /// Finish.
    pub fn build(self) -> Scenario {
        Scenario {
            attack: self.attack,
            defense: self.defense,
            learner: self.learner,
        }
    }
}

/// An attack × defense × learner cross-product plus the shared cell
/// parameters — the front door for multi-scenario workloads.
///
/// Every cell runs the same protocol as the paper's Figure 1 at one
/// filter strength: poison the training set (placement hugging the
/// filter from inside), sanitize, train, evaluate held-out accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMatrix {
    /// Attack axis.
    pub attacks: Vec<AttackSpec>,
    /// Defense axis.
    pub defenses: Vec<DefenseSpec>,
    /// Learner axis.
    pub learners: Vec<LearnerSpec>,
    /// Filter strength (fraction removed) applied in every cell.
    pub strength: f64,
    /// Extra placement depth for the attacker (see
    /// [`crate::fig1::Fig1Config::placement_slack`]).
    pub placement_slack: f64,
}

impl Default for ScenarioMatrix {
    /// The paper triple as a 1×1×1 grid at a 15 % filter.
    fn default() -> Self {
        Self {
            attacks: vec![AttackSpec::default()],
            defenses: vec![DefenseSpec::default()],
            learners: vec![LearnerSpec::default()],
            strength: 0.15,
            placement_slack: 0.01,
        }
    }
}

impl ScenarioMatrix {
    /// Number of cells in the cross-product.
    pub fn len(&self) -> usize {
        self.attacks.len() * self.defenses.len() * self.learners.len()
    }

    /// Whether any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the cross-product in grid order: attacks outermost,
    /// then defenses, learners innermost.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for attack in &self.attacks {
            for defense in &self.defenses {
                for learner in &self.learners {
                    out.push(Scenario {
                        attack: attack.clone(),
                        defense: *defense,
                        learner: *learner,
                    });
                }
            }
        }
        out
    }

    /// JSON form: `{"attacks": [...], "defenses": [...],
    /// "learners": [...], "strength": 0.15, "placement_slack": 0.01}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "attacks",
                Json::Arr(self.attacks.iter().map(AttackSpec::to_json).collect()),
            ),
            (
                "defenses",
                Json::Arr(self.defenses.iter().map(|d| d.to_json()).collect()),
            ),
            (
                "learners",
                Json::Arr(self.learners.iter().map(|l| l.to_json()).collect()),
            ),
            ("strength", Json::Num(self.strength)),
            ("placement_slack", Json::Num(self.placement_slack)),
        ])
    }

    /// Render as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parse from a JSON string. `strength` and `placement_slack` are
    /// optional (defaults 0.15 / 0.01); the three axes are required.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on syntax errors or malformed specs.
    pub fn from_json_str(text: &str) -> Result<Self, SimError> {
        let value = Json::parse(text).map_err(|e| SimError::Spec(e.to_string()))?;
        Self::from_json(&value)
    }

    /// Parse from a JSON value (see [`ScenarioMatrix::from_json_str`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on malformed specs.
    pub fn from_json(value: &Json) -> Result<Self, SimError> {
        if !matches!(value, Json::Obj(_)) {
            return Err(SimError::Spec("matrix must be a JSON object".into()));
        }
        // A typo'd key would silently run at a default parameter —
        // reject unknown keys instead.
        jsonio::check_keys(
            value,
            "matrix",
            &[
                "attacks",
                "defenses",
                "learners",
                "strength",
                "placement_slack",
            ],
        )?;
        let axis = |key: &str| -> Result<&[Json], SimError> {
            value
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| SimError::Spec(format!("matrix needs an array `{key}`")))
        };
        // Optional cell parameters must be numbers when present — a
        // wrongly-typed value is an error, not the default.
        let cell_param = |key: &str, default: f64| -> Result<f64, SimError> {
            match value.get(key) {
                None => Ok(default),
                Some(v) => jsonio::require_num(v, key),
            }
        };
        let defaults = ScenarioMatrix::default();
        Ok(Self {
            attacks: axis("attacks")?
                .iter()
                .map(AttackSpec::from_json)
                .collect::<Result<_, _>>()?,
            defenses: axis("defenses")?
                .iter()
                .map(DefenseSpec::from_json)
                .collect::<Result<_, _>>()?,
            learners: axis("learners")?
                .iter()
                .map(LearnerSpec::from_json)
                .collect::<Result<_, _>>()?,
            strength: cell_param("strength", defaults.strength)?,
            placement_slack: cell_param("placement_slack", defaults.placement_slack)?,
        })
    }
}

/// One completed matrix cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The cell's triple.
    pub scenario: Scenario,
    /// The cell's derived seed (reproduces the cell in isolation).
    pub cell_seed: u64,
    /// Attack → filter → train → evaluate metrics.
    pub outcome: EvalOutcome,
}

/// Engine-side measurements of one matrix run: preparation cache
/// traffic and evaluation throughput. Only populated when the run
/// went through [`crate::engine::EvalEngine`]; wall-clock fields are
/// inherently nondeterministic, so [`MatrixResults`]'s equality
/// ignores this block entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Dataset preparations answered from the shared store.
    pub prep_hits: u64,
    /// Dataset preparations computed fresh.
    pub prep_misses: u64,
    /// Cells evaluated.
    pub cells: usize,
    /// Wall-clock of the whole prepare → evaluate run.
    pub elapsed_micros: u128,
}

impl EngineStats {
    /// Evaluated cells per second (`0.0` for a zero-duration run).
    pub fn cells_per_sec(&self) -> f64 {
        if self.elapsed_micros == 0 {
            0.0
        } else {
            self.cells as f64 / (self.elapsed_micros as f64 / 1e6)
        }
    }

    /// JSON form. `elapsed_micros` is clamped into `u64` on the wire
    /// (584 thousand years — nothing real overflows it).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("prep_hits", jsonio::big_u64_to_json(self.prep_hits)),
            ("prep_misses", jsonio::big_u64_to_json(self.prep_misses)),
            ("cells", Json::Num(self.cells as f64)),
            (
                "elapsed_micros",
                jsonio::big_u64_to_json(self.elapsed_micros.min(u128::from(u64::MAX)) as u64),
            ),
        ])
    }

    /// Parse the JSON form produced by [`EngineStats::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on missing or wrongly-typed fields.
    pub fn from_json(value: &Json) -> Result<Self, SimError> {
        jsonio::check_keys(
            value,
            "engine stats",
            &["prep_hits", "prep_misses", "cells", "elapsed_micros"],
        )?;
        let field = |key: &str| -> Result<u64, SimError> {
            let v = value
                .get(key)
                .ok_or_else(|| SimError::Spec(format!("engine stats need `{key}`")))?;
            jsonio::big_u64(v, key)
        };
        Ok(Self {
            prep_hits: field("prep_hits")?,
            prep_misses: field("prep_misses")?,
            cells: field("cells")? as usize,
            elapsed_micros: u128::from(field("elapsed_micros")?),
        })
    }
}

impl MatrixCell {
    /// JSON form: the scenario triple, the derived cell seed (decimal
    /// string beyond 2^53 — cell seeds span the full 64-bit range) and
    /// the evaluation outcome.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scenario", self.scenario.to_json()),
            ("cell_seed", jsonio::big_u64_to_json(self.cell_seed)),
            ("outcome", self.outcome.to_json()),
        ])
    }

    /// Parse the JSON form produced by [`MatrixCell::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on missing or wrongly-typed fields.
    pub fn from_json(value: &Json) -> Result<Self, SimError> {
        jsonio::check_keys(value, "cell", &["scenario", "cell_seed", "outcome"])?;
        let field = |key: &str| -> Result<&Json, SimError> {
            value
                .get(key)
                .ok_or_else(|| SimError::Spec(format!("cell needs `{key}`")))
        };
        Ok(Self {
            scenario: Scenario::from_json(field("scenario")?)?,
            cell_seed: jsonio::big_u64(field("cell_seed")?, "cell_seed")?,
            outcome: EvalOutcome::from_json(field("outcome")?)?,
        })
    }
}

/// All matrix cells in grid order, plus shared context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixResults {
    /// One row per scenario cell, in [`ScenarioMatrix::scenarios`]
    /// order.
    pub cells: Vec<MatrixCell>,
    /// Clean accuracy of the config's own scenario with no filter and
    /// no attack — the shared reference bar.
    pub baseline_accuracy: f64,
    /// Poison budget every cell used.
    pub n_poison: usize,
    /// Filter strength every cell used.
    pub strength: f64,
    /// Cache/throughput measurements when run through the engine
    /// (`None` on the plain [`run_matrix`] path).
    pub engine: Option<EngineStats>,
}

/// Equality compares the *results* only — the `engine` measurement
/// block carries wall-clock and cache-state values that legitimately
/// differ between bit-identical runs.
impl PartialEq for MatrixResults {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
            && self.baseline_accuracy == other.baseline_accuracy
            && self.n_poison == other.n_poison
            && self.strength == other.strength
    }
}

impl MatrixResults {
    /// JSON form: cells in grid order plus the shared context — the
    /// wire shape the serving protocol returns for `cell` and `matrix`
    /// requests. The optional `engine` stats block is included when
    /// present (remember equality ignores it).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "cells",
                Json::Arr(self.cells.iter().map(MatrixCell::to_json).collect()),
            ),
            ("baseline_accuracy", Json::Num(self.baseline_accuracy)),
            ("n_poison", Json::Num(self.n_poison as f64)),
            ("strength", Json::Num(self.strength)),
        ];
        if let Some(stats) = &self.engine {
            fields.push(("engine", stats.to_json()));
        }
        Json::obj(fields)
    }

    /// Render as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parse the JSON form produced by [`MatrixResults::to_json`] (an
    /// absent `engine` block parses to `None`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on missing or wrongly-typed fields.
    pub fn from_json(value: &Json) -> Result<Self, SimError> {
        jsonio::check_keys(
            value,
            "matrix results",
            &[
                "cells",
                "baseline_accuracy",
                "n_poison",
                "strength",
                "engine",
            ],
        )?;
        let field = |key: &str| -> Result<&Json, SimError> {
            value
                .get(key)
                .ok_or_else(|| SimError::Spec(format!("matrix results need `{key}`")))
        };
        let cells = field("cells")?
            .as_array()
            .ok_or_else(|| SimError::Spec("`cells` must be an array".into()))?
            .iter()
            .map(MatrixCell::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            cells,
            baseline_accuracy: jsonio::require_num(
                field("baseline_accuracy")?,
                "baseline_accuracy",
            )?,
            n_poison: jsonio::require_u64(field("n_poison")?, "n_poison")? as usize,
            strength: jsonio::require_num(field("strength")?, "strength")?,
            engine: value
                .get("engine")
                .map(EngineStats::from_json)
                .transpose()?,
        })
    }

    /// Cells ranked by accuracy under attack, best first (ties keep
    /// grid order).
    pub fn ranked(&self) -> Vec<&MatrixCell> {
        let mut cells: Vec<&MatrixCell> = self.cells.iter().collect();
        cells.sort_by(|a, b| {
            b.outcome
                .accuracy
                .partial_cmp(&a.outcome.accuracy)
                .expect("finite accuracies")
        });
        cells
    }
}

/// Run a scenario matrix on the default (fully parallel) execution
/// policy.
///
/// # Errors
///
/// Same conditions as [`run_matrix_with`].
pub fn run_matrix(
    config: &ExperimentConfig,
    matrix: &ScenarioMatrix,
) -> Result<MatrixResults, SimError> {
    run_matrix_with(config, matrix, &ExecPolicy::default())
}

/// Run every cell of the attack×defense×learner cross-product through
/// the worker pool.
///
/// The dataset is prepared once; each cell derives its own RNG from
/// the master seed and its grid index via SplitMix64, so results are
/// bit-identical at any thread count and any single cell can be
/// reproduced in isolation from `(config.seed, cell index)`.
///
/// # Errors
///
/// Returns [`SimError::BadParameter`] for an empty axis or an
/// out-of-range strength, and propagates per-cell pipeline failures
/// (lowest grid index first).
pub fn run_matrix_with(
    config: &ExperimentConfig,
    matrix: &ScenarioMatrix,
    policy: &ExecPolicy,
) -> Result<MatrixResults, SimError> {
    // Reject a bad matrix before paying for dataset preparation.
    validate_matrix(matrix)?;
    let prepared = prepare(config)?;
    run_matrix_prepared(&prepared, config, matrix, policy)
}

fn validate_matrix(matrix: &ScenarioMatrix) -> Result<(), SimError> {
    if matrix.is_empty() {
        return Err(SimError::BadParameter {
            what: "matrix axes",
            value: matrix.len() as f64,
        });
    }
    if !(0.0..1.0).contains(&matrix.strength) || matrix.strength.is_nan() {
        return Err(SimError::BadParameter {
            what: "strength",
            value: matrix.strength,
        });
    }
    Ok(())
}

/// [`run_matrix_with`] against an already-prepared dataset — the
/// evaluate phase of the engine's prepare → evaluate task graph.
///
/// # Errors
///
/// Same conditions as [`run_matrix_with`].
pub fn run_matrix_prepared(
    prepared: &Prepared,
    config: &ExperimentConfig,
    matrix: &ScenarioMatrix,
    policy: &ExecPolicy,
) -> Result<MatrixResults, SimError> {
    run_matrix_prepared_opts(prepared, config, matrix, policy, false)
}

/// [`run_matrix_prepared`] with the cross-cell evaluation knob
/// exposed.
///
/// With `fused_eval = false` every cell evaluates its own model on the
/// held-out split as it finishes — the historical path. With
/// `fused_eval = true` the cells only filter + train in the worker
/// pool; their [`LinearState`]s are then stacked and evaluated against
/// the shared test features in **one** blocked multi-RHS GEMM. The
/// batched kernel accumulates each cell's margins in the same order as
/// the per-cell path, so the results are bit-identical either way —
/// the knob only changes how the evaluation flops are scheduled.
///
/// # Errors
///
/// Same conditions as [`run_matrix_with`].
pub fn run_matrix_prepared_opts(
    prepared: &Prepared,
    config: &ExperimentConfig,
    matrix: &ScenarioMatrix,
    policy: &ExecPolicy,
    fused_eval: bool,
) -> Result<MatrixResults, SimError> {
    validate_matrix(matrix)?;

    let baseline = filter_train_eval(
        prepared.train(),
        &[],
        prepared.test(),
        FilterStrength::RemoveFraction(0.0),
        config,
    )?;
    let placement = hugging_placement(prepared, matrix.strength, matrix.placement_slack);

    // Pre-derive one seed per cell from the master seed, in grid
    // order, exactly like the Monte-Carlo replicates: a cell's stream
    // depends only on its index.
    let scenarios = matrix.scenarios();
    let mut mix = SplitMix64::new(config.seed ^ 0x5cea_a710); // "scenario"
    let cells: Vec<(Scenario, u64)> = scenarios.into_iter().map(|s| (s, mix.next())).collect();

    let done = if fused_eval {
        // Phase 1: filter + train every cell (no per-cell evaluation).
        let trained = try_parallel_map(policy, &cells, |_, (scenario, cell_seed)| {
            let mut rng = poisongame_linalg::Xoshiro256StarStar::seed_from_u64(*cell_seed);
            run_cell_trained(
                prepared,
                scenario,
                placement,
                FilterStrength::RemoveFraction(matrix.strength),
                config,
                &mut rng,
                None,
            )
        })?;
        // Phase 2: one blocked multi-RHS evaluation over every cell's
        // state. Cells without a linear state (none of the bundled
        // learners) already carry their fallback accuracy.
        let states: Vec<LinearState> = trained.iter().filter_map(|t| t.state.clone()).collect();
        let started = Instant::now();
        let batched = batched_accuracy(
            prepared.test().features(),
            prepared.test().labels(),
            &states,
        )?;
        crate::timing::record_eval(started.elapsed());
        let mut accuracies = batched.into_iter();
        cells
            .into_iter()
            .zip(trained)
            .map(|((scenario, cell_seed), cell)| {
                let accuracy = match cell.fallback_accuracy {
                    Some(acc) => acc,
                    None => accuracies
                        .next()
                        .expect("one batched accuracy per linear-state cell"),
                };
                MatrixCell {
                    scenario,
                    cell_seed,
                    outcome: EvalOutcome {
                        accuracy,
                        accounting: cell.accounting,
                        removed_fraction: cell.removed_fraction,
                    },
                }
            })
            .collect()
    } else {
        try_parallel_map(
            policy,
            &cells,
            |_, (scenario, cell_seed)| -> Result<MatrixCell, SimError> {
                let mut rng = poisongame_linalg::Xoshiro256StarStar::seed_from_u64(*cell_seed);
                let outcome = run_cell(
                    prepared,
                    scenario,
                    placement,
                    FilterStrength::RemoveFraction(matrix.strength),
                    config,
                    &mut rng,
                )?;
                Ok(MatrixCell {
                    scenario: scenario.clone(),
                    cell_seed: *cell_seed,
                    outcome,
                })
            },
        )?
    };

    Ok(MatrixResults {
        cells: done,
        baseline_accuracy: baseline.accuracy,
        n_poison: prepared.n_poison,
        strength: matrix.strength,
        engine: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DataSource;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            epochs: 30,
            source: DataSource::SyntheticSpambase { rows: 400 },
            ..ExperimentConfig::paper()
        }
    }

    #[test]
    fn default_scenario_is_the_paper_triple() {
        let s = Scenario::default();
        assert_eq!(s.attack, AttackSpec::Boundary);
        assert_eq!(s.defense, DefenseSpec::Radius);
        assert_eq!(s.learner, LearnerSpec::Svm);
        assert_eq!(s, Scenario::paper());
        assert_eq!(s.label(), "boundary × radius × svm");
    }

    #[test]
    fn builder_overrides_fields() {
        let s = Scenario::builder()
            .attack(AttackSpec::RandomNoise)
            .defense(DefenseSpec::Slab)
            .learner(LearnerSpec::Perceptron)
            .build();
        assert_eq!(s.attack, AttackSpec::RandomNoise);
        assert_eq!(s.defense, DefenseSpec::Slab);
        assert_eq!(s.learner, LearnerSpec::Perceptron);
        assert_eq!(Scenario::builder().build(), Scenario::default());
    }

    #[test]
    fn every_attack_spec_builds_and_generates() {
        let config = quick_config();
        let prepared = prepare(&config).unwrap();
        let specs = [
            AttackSpec::Boundary,
            AttackSpec::MixedRadius {
                offsets: vec![0.0, 0.1],
                weights: vec![0.7, 0.3],
            },
            AttackSpec::LabelFlip,
            AttackSpec::RandomNoise,
        ];
        for spec in specs {
            let attack = spec.build(0.05, prepared.n_poison).unwrap();
            let mut rng = poisongame_linalg::Xoshiro256StarStar::seed_from_u64(1);
            let poison = attack
                .generate(prepared.train(), prepared.n_poison, &mut rng)
                .unwrap();
            assert_eq!(poison.len(), prepared.n_poison, "{}", spec.name());
        }
    }

    #[test]
    fn every_defense_spec_builds_and_filters() {
        let config = quick_config();
        let prepared = prepare(&config).unwrap();
        for spec in [
            DefenseSpec::Radius,
            DefenseSpec::Knn { k: 3 },
            DefenseSpec::Slab,
        ] {
            let filter = spec
                .build(FilterStrength::RemoveFraction(0.1), config.centroid)
                .unwrap();
            let outcome = filter.split(prepared.train()).unwrap();
            assert!(
                !outcome.kept_indices.is_empty(),
                "{} kept nothing",
                spec.name()
            );
        }
    }

    #[test]
    fn every_learner_spec_builds_and_fits() {
        let config = quick_config();
        let prepared = prepare(&config).unwrap();
        for spec in [
            LearnerSpec::Svm,
            LearnerSpec::Perceptron,
            LearnerSpec::LogReg,
        ] {
            let mut model = spec.build(config.train_config());
            model.fit(prepared.train()).unwrap();
            assert!(
                model.accuracy_on(prepared.test()) > 0.6,
                "{} failed to learn",
                spec.name()
            );
        }
    }

    #[test]
    fn baseline_defenses_reject_absolute_radius() {
        let strength = FilterStrength::AbsoluteRadius(2.0);
        let c = CentroidEstimator::default();
        assert!(DefenseSpec::Radius.build(strength, c).is_ok());
        assert!(DefenseSpec::Knn { k: 3 }.build(strength, c).is_err());
        assert!(DefenseSpec::Slab.build(strength, c).is_err());
        assert!(DefenseSpec::Knn { k: 0 }
            .build(FilterStrength::RemoveFraction(0.1), c)
            .is_err());
    }

    #[test]
    fn matrix_cross_product_order_is_learner_minor() {
        let matrix = ScenarioMatrix {
            attacks: vec![AttackSpec::Boundary, AttackSpec::LabelFlip],
            defenses: vec![DefenseSpec::Radius],
            learners: vec![LearnerSpec::Svm, LearnerSpec::LogReg],
            ..ScenarioMatrix::default()
        };
        let cells = matrix.scenarios();
        assert_eq!(matrix.len(), 4);
        assert_eq!(cells[0].label(), "boundary × radius × svm");
        assert_eq!(cells[1].label(), "boundary × radius × logreg");
        assert_eq!(cells[2].label(), "label_flip × radius × svm");
        assert_eq!(cells[3].label(), "label_flip × radius × logreg");
    }

    #[test]
    fn matrix_runs_and_is_thread_count_invariant() {
        let config = quick_config();
        let matrix = ScenarioMatrix {
            attacks: vec![AttackSpec::Boundary, AttackSpec::LabelFlip],
            defenses: vec![DefenseSpec::Radius, DefenseSpec::Slab],
            learners: vec![LearnerSpec::Svm],
            strength: 0.15,
            placement_slack: 0.01,
        };
        let sequential = run_matrix_with(&config, &matrix, &ExecPolicy::sequential()).unwrap();
        assert_eq!(sequential.cells.len(), 4);
        for cell in &sequential.cells {
            assert!((0.0..=1.0).contains(&cell.outcome.accuracy));
        }
        let parallel = run_matrix_with(&config, &matrix, &ExecPolicy::with_threads(4)).unwrap();
        assert_eq!(sequential, parallel);
        // Ranked view is a permutation of the cells, best first.
        let ranked = sequential.ranked();
        assert_eq!(ranked.len(), 4);
        for pair in ranked.windows(2) {
            assert!(pair[0].outcome.accuracy >= pair[1].outcome.accuracy);
        }
    }

    #[test]
    fn matrix_results_json_round_trips_bit_exactly() {
        let config = quick_config();
        let matrix = ScenarioMatrix {
            attacks: vec![AttackSpec::Boundary, AttackSpec::LabelFlip],
            defenses: vec![DefenseSpec::Knn { k: 5 }],
            learners: vec![LearnerSpec::Svm],
            ..ScenarioMatrix::default()
        };
        let mut results = run_matrix(&config, &matrix).unwrap();
        results.engine = Some(EngineStats {
            prep_hits: 1,
            prep_misses: 2,
            cells: 2,
            elapsed_micros: 123_456,
        });
        let wire = results.to_json_string();
        let back = MatrixResults::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, results);
        assert_eq!(back.engine, results.engine);
        for (a, b) in back.cells.iter().zip(&results.cells) {
            assert_eq!(
                a.outcome.accuracy.to_bits(),
                b.outcome.accuracy.to_bits(),
                "accuracies must survive the wire bit-exactly"
            );
            assert_eq!(a.cell_seed, b.cell_seed);
        }
        // Without an engine block the field is absent, and parses back
        // to None.
        results.engine = None;
        let wire = results.to_json_string();
        assert!(!wire.contains("engine"));
        assert!(MatrixResults::from_json(&Json::parse(&wire).unwrap())
            .unwrap()
            .engine
            .is_none());
    }

    #[test]
    fn fused_cross_cell_eval_is_byte_identical() {
        // The fused path reschedules the evaluation flops (one blocked
        // multi-RHS GEMM instead of per-cell loops); the serialized
        // results must not change by a single byte, across every
        // bundled learner.
        let config = quick_config();
        let matrix = ScenarioMatrix {
            attacks: vec![AttackSpec::Boundary, AttackSpec::LabelFlip],
            defenses: vec![DefenseSpec::Radius],
            learners: vec![
                LearnerSpec::Svm,
                LearnerSpec::Perceptron,
                LearnerSpec::LogReg,
            ],
            strength: 0.15,
            placement_slack: 0.01,
        };
        let prepared = prepare(&config).unwrap();
        let plain =
            run_matrix_prepared(&prepared, &config, &matrix, &ExecPolicy::default()).unwrap();
        let fused =
            run_matrix_prepared_opts(&prepared, &config, &matrix, &ExecPolicy::default(), true)
                .unwrap();
        assert_eq!(plain.to_json_string(), fused.to_json_string());
    }

    #[test]
    fn matrix_validates_axes_and_strength() {
        let config = quick_config();
        let empty = ScenarioMatrix {
            attacks: vec![],
            ..ScenarioMatrix::default()
        };
        assert!(empty.is_empty());
        assert!(run_matrix(&config, &empty).is_err());
        let bad = ScenarioMatrix {
            strength: 1.5,
            ..ScenarioMatrix::default()
        };
        assert!(run_matrix(&config, &bad).is_err());
    }
}
