//! Property-based tests on the game model's NE machinery: the
//! `findPercentage` closed form always equalizes the attacker's gain,
//! for any valid decreasing effect curve and any support inside the
//! profitable zone.

use poisongame_core::ne::{diagnose, equalizing_strategy};
use poisongame_core::EffectCurve;
use proptest::prelude::*;

/// A strictly positive, decreasing effect curve on [0, 0.5].
fn effect_curve() -> impl Strategy<Value = EffectCurve> {
    (1e-5f64..1e-2, 0.5f64..8.0).prop_map(|(e0, decay)| {
        let samples: Vec<(f64, f64)> = (0..=10)
            .map(|k| {
                let p = k as f64 * 0.05;
                (p, e0 * (-decay * p).exp())
            })
            .collect();
        EffectCurve::from_samples(&samples).expect("valid samples")
    })
}

/// A sorted support of 2..=5 distinct percentiles in (0, 0.45).
fn support() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::btree_set(1u32..90, 2..6).prop_map(|set| {
        set.into_iter().map(|k| k as f64 * 0.005).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn equalizing_strategy_satisfies_ne_conditions(e in effect_curve(), s in support()) {
        let strategy = equalizing_strategy(&s, &e).unwrap();
        let d = diagnose(&strategy, &e, 1e-6);
        prop_assert!(d.mixes_two_or_more);
        prop_assert!(d.products_equalized, "spread {}", d.product_spread);
        // Probabilities are a distribution.
        let sum: f64 = strategy.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(strategy.probabilities().iter().all(|&q| q >= -1e-12));
    }

    #[test]
    fn attacker_gain_equals_deepest_effect(e in effect_curve(), s in support()) {
        let strategy = equalizing_strategy(&s, &e).unwrap();
        let deepest = *s.last().unwrap();
        let gain = strategy.attacker_gain(&e);
        prop_assert!((gain - e.eval(deepest)).abs() < 1e-9 * gain.max(1e-12));
    }

    #[test]
    fn survival_probability_is_monotone_cdf(e in effect_curve(), s in support()) {
        let strategy = equalizing_strategy(&s, &e).unwrap();
        let mut prev = 0.0;
        for k in 0..=50 {
            let p = k as f64 * 0.01;
            let surv = strategy.survival_probability(p);
            prop_assert!(surv + 1e-12 >= prev);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&surv));
            prev = surv;
        }
        prop_assert!((strategy.survival_probability(0.99) - 1.0).abs() < 1e-9);
    }
}
