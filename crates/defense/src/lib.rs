//! Distance-based filtering defenses against data poisoning.
//!
//! The paper's defender removes every training point farther than a
//! chosen radius `θ_d` from its class centroid (the outlier filter of
//! Paudice et al. / Steinhardt et al.). This crate implements that
//! sphere filter with pluggable robust centroid estimators, plus two
//! baseline detectors (slab and k-NN distance) used for ablations.
//!
//! # Example
//!
//! ```
//! use poisongame_data::synth::gaussian_blobs;
//! use poisongame_defense::{CentroidEstimator, FilterStrength, RadiusFilter, Filter};
//! use poisongame_linalg::Xoshiro256StarStar;
//! use rand::SeedableRng;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let data = gaussian_blobs(100, 2, 3.0, 0.5, &mut rng);
//! let filter = RadiusFilter::new(FilterStrength::RemoveFraction(0.1), CentroidEstimator::Mean);
//! let outcome = filter.split(&data).unwrap();
//! assert!(outcome.removed_indices.len() >= 18); // ~10% per class
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centroid;
pub mod error;
pub mod filter;
pub mod knn;
pub mod slab;

pub use centroid::CentroidEstimator;
pub use error::DefenseError;
pub use filter::{
    Filter, FilterAccounting, FilterOutcome, FilterScope, FilterStrength, RadiusFilter,
};
pub use knn::KnnDistanceFilter;
pub use slab::SlabFilter;
