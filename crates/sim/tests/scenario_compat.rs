//! Golden-path regression: the default [`Scenario`] through the new
//! spec-dispatch path must produce **bit-identical** `EvalOutcome`
//! metrics to the pre-redesign hardcoded pipeline (boundary attack →
//! radius filter → linear SVM) at the same seed. The old pipeline is
//! replicated inline here, frozen at its PR-1 form, so any drift in
//! the dispatch layer fails this file rather than silently changing
//! the paper reproduction.

use poisongame_attack::{AttackStrategy, BoundaryAttack, RadiusSpec};
use poisongame_defense::{Filter, FilterStrength, RadiusFilter};
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_ml::svm::LinearSvm;
use poisongame_ml::Classifier;
use poisongame_sim::pipeline::{
    attack_filter_train_eval, filter_train_eval, hugging_placement, prepare, run_cell, DataSource,
    EvalOutcome, ExperimentConfig, Prepared,
};
use poisongame_sim::scenario::Scenario;
use rand::SeedableRng;

fn config() -> ExperimentConfig {
    ExperimentConfig {
        seed: 0x60_1DE4, // golden
        source: DataSource::SyntheticSpambase { rows: 500 },
        epochs: 35,
        ..ExperimentConfig::paper()
    }
}

/// The hardcoded filter → train → evaluate loop exactly as it stood
/// before the scenario redesign (`pipeline.rs:220-237` at PR 1).
fn old_filter_train_eval(
    train: &poisongame_data::Dataset,
    poison_indices: &[usize],
    test: &poisongame_data::Dataset,
    strength: FilterStrength,
    config: &ExperimentConfig,
) -> EvalOutcome {
    let filter = RadiusFilter::new(strength, config.centroid);
    let outcome = filter.split(train).expect("filter runs");
    let kept = outcome.kept_dataset(train);
    let mut svm = LinearSvm::new(config.train_config());
    svm.fit(&kept).expect("svm trains");
    EvalOutcome {
        accuracy: svm.accuracy_on(test),
        accounting: outcome.account(poison_indices),
        removed_fraction: outcome.removed_fraction(train),
    }
}

/// The hardcoded attack → filter → train → evaluate loop exactly as it
/// stood before the redesign (`pipeline.rs:258-268` at PR 1).
fn old_attack_filter_train_eval(
    prepared: &Prepared,
    placement: f64,
    strength: FilterStrength,
    config: &ExperimentConfig,
    rng: &mut Xoshiro256StarStar,
) -> EvalOutcome {
    let attack = BoundaryAttack::new(RadiusSpec::Percentile(placement));
    let (poisoned, injected) = attack
        .poison(prepared.train(), prepared.n_poison, rng)
        .expect("attack runs");
    old_filter_train_eval(&poisoned, &injected, prepared.test(), strength, config)
}

fn assert_bit_identical(new: &EvalOutcome, old: &EvalOutcome, context: &str) {
    assert_eq!(
        new.accuracy.to_bits(),
        old.accuracy.to_bits(),
        "{context}: accuracy diverged ({} vs {})",
        new.accuracy,
        old.accuracy
    );
    assert_eq!(
        new.removed_fraction.to_bits(),
        old.removed_fraction.to_bits(),
        "{context}: removed fraction diverged"
    );
    assert_eq!(
        new.accounting, old.accounting,
        "{context}: accounting diverged"
    );
}

#[test]
fn default_scenario_clean_path_matches_hardcoded_pipeline() {
    let config = config();
    assert_eq!(config.scenario, Scenario::paper());
    let prepared = prepare(&config).unwrap();
    for theta in [0.0, 0.08, 0.25] {
        let strength = FilterStrength::RemoveFraction(theta);
        let new = filter_train_eval(prepared.train(), &[], prepared.test(), strength, &config)
            .expect("dispatch path runs");
        let old = old_filter_train_eval(prepared.train(), &[], prepared.test(), strength, &config);
        assert_bit_identical(&new, &old, &format!("clean θ={theta}"));
    }
}

#[test]
fn default_scenario_attack_path_matches_hardcoded_pipeline() {
    let config = config();
    let prepared = prepare(&config).unwrap();
    for (seed, theta) in [(11u64, 0.05), (13, 0.15), (17, 0.30)] {
        let placement = hugging_placement(&prepared, theta, 0.01);
        let strength = FilterStrength::RemoveFraction(theta);

        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let new = attack_filter_train_eval(&prepared, placement, strength, &config, &mut rng)
            .expect("dispatch path runs");

        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let old = old_attack_filter_train_eval(&prepared, placement, strength, &config, &mut rng);

        assert_bit_identical(&new, &old, &format!("attacked θ={theta} seed={seed}"));

        // `run_cell` with an explicit default scenario is the same
        // dispatch point the matrix uses — it must agree too.
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let cell = run_cell(
            &prepared,
            &Scenario::default(),
            placement,
            strength,
            &config,
            &mut rng,
        )
        .expect("run_cell runs");
        assert_bit_identical(&cell, &old, &format!("run_cell θ={theta} seed={seed}"));
    }
}

/// The engine's cached preparation + copy-on-write poisoned views
/// must reproduce the pre-engine clone-based hardcoded pipeline bit
/// for bit — preparing via the store and reading the training set
/// through a `PoisonedView` are pure plumbing changes.
#[test]
fn engine_cells_match_pre_engine_hardcoded_pipeline() {
    let config = config();
    let engine = poisongame_sim::engine::EvalEngine::new();
    // Two prepares: one miss, one hit — both must be the same data the
    // cold `prepare` builds.
    let prepared = engine.prepare(&config).unwrap();
    let again = engine.prepare(&config).unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&prepared.data, &again.data),
        "prepare must share one Arc"
    );
    let cold = prepare(&config).unwrap();
    assert_eq!(*prepared.data, *cold.data, "cached prep differs from cold");
    assert_eq!(prepared.n_poison, cold.n_poison);

    for (seed, theta) in [(11u64, 0.05), (13, 0.15), (17, 0.30)] {
        let placement = hugging_placement(&prepared, theta, 0.01);
        let strength = FilterStrength::RemoveFraction(theta);

        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let new = run_cell(
            &prepared,
            &Scenario::default(),
            placement,
            strength,
            &config,
            &mut rng,
        )
        .expect("engine-prepared cell runs");

        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let old = old_attack_filter_train_eval(&cold, placement, strength, &config, &mut rng);

        assert_bit_identical(&new, &old, &format!("engine cell θ={theta} seed={seed}"));
    }
}

#[test]
fn poison_budget_unchanged_by_threat_model_refactor() {
    // `prepare` validates the budget once via `ThreatModel::new`; the
    // derived count must match the direct `budget_points` query (the
    // numbers the deprecated-and-removed `poison_count` produced).
    let config = config();
    let prepared = prepare(&config).unwrap();
    assert_eq!(
        prepared.n_poison,
        config.threat_model().budget_points(prepared.train().len())
    );
    assert_eq!(
        prepared.n_poison,
        (prepared.train().len() as f64 * 0.2).round() as usize
    );
}
