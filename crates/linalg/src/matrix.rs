//! A minimal row-major dense matrix used as feature storage.

use crate::error::LinalgError;
use crate::vector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Row-major dense `f64` matrix.
///
/// Rows are the natural unit in this workspace (one row per data point),
/// so row access is free (`&self.data[r*cols..]`) while column access
/// copies.
///
/// # Example
///
/// ```
/// use poisongame_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// assert_eq!(m.column(0), vec![1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if rows * cols != data.len() {
            return Err(LinalgError::InvalidShape {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Create a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::EmptyInput`] for an empty row list and
    /// [`LinalgError::DimensionMismatch`] if row lengths are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let first = rows.first().ok_or(LinalgError::EmptyInput)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    left: cols,
                    right: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    ///
    /// Allocates per call; prefer [`Matrix::column_iter`] or
    /// [`Matrix::column_into`] in loops over many columns.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        self.column_iter(c).collect()
    }

    /// Iterate column `c` top to bottom without allocating — a strided
    /// walk of the row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column_iter(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        // `get` handles the zero-row matrix, whose buffer is empty.
        self.data
            .get(c..)
            .unwrap_or(&[])
            .iter()
            .step_by(self.cols.max(1))
            .copied()
    }

    /// Copy column `c` into `out`, clearing it first but keeping its
    /// allocation — the reusable-buffer form of [`Matrix::column`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn column_into(&self, c: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.rows);
        out.extend(self.column_iter(c));
    }

    /// Entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Set entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = value;
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Matrix-vector product `self * x`, via the blocked
    /// [`crate::gemm::gemv`] kernel (bit-identical to a per-row
    /// [`vector::dot`] loop).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        crate::gemm::gemv(self, x).expect("dimensions checked above")
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Append a row to the bottom of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the row length does
    /// not match `cols` (unless the matrix is empty with zero columns, in
    /// which case the row defines the width).
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), LinalgError> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.cols,
                right: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Build a new matrix keeping only the rows whose indices appear in
    /// `keep` (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, keep: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(keep.len() * self.cols);
        for &r in keep {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: keep.len(),
            cols: self.cols,
            data,
        }
    }

    /// Column-wise mean; `None` if the matrix has no rows.
    pub fn column_means(&self) -> Option<Vec<f64>> {
        if self.rows == 0 {
            return None;
        }
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            vector::axpy(1.0, row, &mut means);
        }
        vector::scale(1.0 / self.rows as f64, &mut means);
        Some(means)
    }

    /// Flat row-major view of the backing buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:>10.4}")).collect();
            let ellipsis = if self.cols > 8 { " …" } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show {
            writeln!(f, "  … ({} more rows)", self.rows - show)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let e = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(e, LinalgError::InvalidShape { .. }));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(e, LinalgError::DimensionMismatch { .. }));
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            LinalgError::EmptyInput
        ));
    }

    #[test]
    fn row_and_column_access() {
        let m = sample();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
        assert_eq!(m.get(1, 1), 5.0);
    }

    #[test]
    fn column_iter_and_column_into_match_column() {
        let m = sample();
        for c in 0..m.cols() {
            assert_eq!(m.column_iter(c).collect::<Vec<_>>(), m.column(c));
        }
        let mut buf = vec![99.0; 8];
        m.column_into(1, &mut buf);
        assert_eq!(buf, vec![2.0, 5.0]);
        // Zero-row matrices yield empty columns, not panics.
        let empty = Matrix::zeros(0, 3);
        assert_eq!(empty.column_iter(2).count(), 0);
        empty.column_into(1, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = sample();
        m.set(0, 0, 9.0);
        m.row_mut(1)[2] = -1.0;
        assert_eq!(m.get(0, 0), 9.0);
        assert_eq!(m.get(1, 2), -1.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = sample();
        assert_eq!(m.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.row(0), &[1.0, 4.0]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn push_row_grows_and_validates() {
        let mut m = Matrix::default();
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn select_rows_reorders() {
        let m = sample();
        let s = m.select_rows(&[1, 0, 1]);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(s.row(2), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn column_means_basic() {
        let m = sample();
        assert_eq!(m.column_means().unwrap(), vec![2.5, 3.5, 4.5]);
        assert_eq!(Matrix::zeros(0, 3).column_means(), None);
    }

    #[test]
    fn display_does_not_panic_and_truncates() {
        let m = Matrix::zeros(10, 12);
        let s = format!("{m}");
        assert!(s.contains("more rows"));
        assert!(s.contains("Matrix 10x12"));
    }

    #[test]
    fn serde_round_trip_via_debug_shape() {
        // serde derives compile; spot check via to/from the flat buffer.
        let m = sample();
        let back = Matrix::from_vec(2, 3, m.clone().into_vec()).unwrap();
        assert_eq!(back, m);
    }
}
