//! Domain scenario: a spam-filter operator under an adaptive poisoning
//! campaign — the workload the paper's introduction motivates.
//!
//! Compares four defensive postures against an attacker who always
//! best-responds:
//!
//! 1. no sanitization,
//! 2. a fixed (pure) filter published in the operator's runbook,
//! 3. the same filter with the attacker unaware (security through
//!    obscurity — what the pure-strategy literature assumes),
//! 4. the mixed-strategy equilibrium defense from Algorithm 1.
//!
//! ```sh
//! cargo run --release --example spam_filter_war
//! ```

use poisongame::core::{Algorithm1, Algorithm1Config};
use poisongame::defense::FilterStrength;
use poisongame::linalg::Xoshiro256StarStar;
use poisongame::sim::estimate::{default_placements, default_strengths, estimate_curves};
use poisongame::sim::pipeline::{
    attack_filter_train_eval, filter_train_eval, hugging_placement, prepare, ExperimentConfig,
};
use poisongame::sim::table1::evaluate_mixed_defense;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::paper().quick();
    let prepared = prepare(&config)?;
    println!("== the spam-filter war ==");
    println!(
        "mail corpus: {} train / {} test, attacker forges {} messages (20%)\n",
        prepared.train().len(),
        prepared.test().len(),
        prepared.n_poison
    );

    // Posture 1 — no sanitization: the attacker parks poison at the
    // very edge of the data.
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed ^ 1);
    let no_defense = attack_filter_train_eval(
        &prepared,
        0.01,
        FilterStrength::RemoveFraction(0.0),
        &config,
        &mut rng,
    )?;
    let clean = filter_train_eval(
        prepared.train(),
        &[],
        prepared.test(),
        FilterStrength::RemoveFraction(0.0),
        &config,
    )?;
    println!(
        "clean accuracy (no attack):            {:.4}",
        clean.accuracy
    );
    println!(
        "1. no sanitization, attacked:          {:.4}",
        no_defense.accuracy
    );

    // Posture 2 — fixed filter, attacker reads the runbook and hugs it.
    let theta = 0.15;
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed ^ 2);
    let hugged = attack_filter_train_eval(
        &prepared,
        hugging_placement(&prepared, theta, 0.01),
        FilterStrength::RemoveFraction(theta),
        &config,
        &mut rng,
    )?;
    println!(
        "2. fixed 15% filter, attacker aware:   {:.4} (poison caught: {:.0}%)",
        hugged.accuracy,
        hugged.accounting.poison_recall() * 100.0
    );

    // Posture 3 — same filter, oblivious attacker (places at the edge).
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed ^ 3);
    let oblivious = attack_filter_train_eval(
        &prepared,
        0.01,
        FilterStrength::RemoveFraction(theta),
        &config,
        &mut rng,
    )?;
    println!(
        "3. fixed 15% filter, attacker unaware: {:.4} (poison caught: {:.0}%)",
        oblivious.accuracy,
        oblivious.accounting.poison_recall() * 100.0
    );

    // Posture 4 — the equilibrium mixed defense.
    println!("\nderiving the mixed-strategy equilibrium defense...");
    let curves = estimate_curves(&config, &default_placements(), &default_strengths())?;
    let result = Algorithm1::new(Algorithm1Config {
        n_radii: 3,
        ..Default::default()
    })
    .solve(&curves.game()?)?;
    let (mixed_acc, placement) = evaluate_mixed_defense(&config, &result.strategy, 0.01)?;
    println!("   strategy: {}", result.strategy);
    println!(
        "4. mixed equilibrium defense:          {:.4} (attacker best-responds at {:.1}%)",
        mixed_acc,
        placement * 100.0
    );

    println!("\nThe gap between (3) and (2) is what the pure-strategy literature");
    println!("overstates: a published filter gets hugged. The mixed defense (4)");
    println!("denies the attacker that certainty — the paper's contribution.");
    Ok(())
}
