//! The [`Dataset`] container: dense features plus binary labels.

use crate::error::DataError;
use crate::label::Label;
use poisongame_linalg::{stats, vector, Matrix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A labelled dataset with one row per point.
///
/// Invariant: `features.rows() == labels.len()` — enforced at
/// construction and on every mutation.
///
/// # Example
///
/// ```
/// use poisongame_data::{Dataset, Label};
///
/// let mut d = Dataset::from_rows(
///     vec![vec![0.0, 0.0], vec![1.0, 1.0]],
///     vec![Label::Negative, Label::Positive],
/// ).unwrap();
/// d.push(&[2.0, 2.0], Label::Positive).unwrap();
/// assert_eq!(d.len(), 3);
/// assert_eq!(d.class_count(Label::Positive), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<Label>,
}

impl Dataset {
    /// Build from a feature matrix and label vector.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LabelCountMismatch`] when row and label
    /// counts disagree.
    pub fn new(features: Matrix, labels: Vec<Label>) -> Result<Self, DataError> {
        if features.rows() != labels.len() {
            return Err(DataError::LabelCountMismatch {
                rows: features.rows(),
                labels: labels.len(),
            });
        }
        Ok(Self { features, labels })
    }

    /// Build from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] for no rows,
    /// [`DataError::LabelCountMismatch`] for count mismatch, or a
    /// wrapped [`poisongame_linalg::LinalgError`] for ragged rows.
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<Label>) -> Result<Self, DataError> {
        if rows.is_empty() {
            return Err(DataError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DataError::LabelCountMismatch {
                rows: rows.len(),
                labels: labels.len(),
            });
        }
        let features = Matrix::from_rows(&rows)?;
        Ok(Self { features, labels })
    }

    /// An empty dataset with the given feature dimension.
    pub fn empty(dim: usize) -> Self {
        Self {
            features: Matrix::zeros(0, dim),
            labels: Vec::new(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if there are no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Borrow the feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Mutable feature matrix — crate-internal so in-place transforms
    /// (scaling) can't change the row/label pairing from outside.
    pub(crate) fn features_mut(&mut self) -> &mut Matrix {
        &mut self.features
    }

    /// Borrow the labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Feature row of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn point(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// Label of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn label(&self, i: usize) -> Label {
        self.labels[i]
    }

    /// Iterate `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], Label)> + '_ {
        self.features.iter_rows().zip(self.labels.iter().copied())
    }

    /// Append one labelled point.
    ///
    /// # Errors
    ///
    /// Returns a wrapped dimension error if the point width differs
    /// from `dim()`.
    pub fn push(&mut self, point: &[f64], label: Label) -> Result<(), DataError> {
        self.features.push_row(point)?;
        self.labels.push(label);
        Ok(())
    }

    /// Append every point of `other`.
    ///
    /// # Errors
    ///
    /// Returns a wrapped dimension error on feature-width mismatch.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<(), DataError> {
        for (x, y) in other.iter() {
            self.push(x, y)?;
        }
        Ok(())
    }

    /// Number of points carrying `label`.
    pub fn class_count(&self, label: Label) -> usize {
        self.labels.iter().filter(|&&l| l == label).count()
    }

    /// Fraction of points carrying `label` (`0.0` for an empty dataset).
    pub fn class_fraction(&self, label: Label) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.class_count(label) as f64 / self.len() as f64
        }
    }

    /// Indices of the points carrying `label`.
    pub fn class_indices(&self, label: Label) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == label).then_some(i))
            .collect()
    }

    /// New dataset with only the selected indices (order preserved,
    /// duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let features = self.features.select_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset { features, labels }
    }

    /// New dataset with only points of the given class.
    pub fn filter_class(&self, label: Label) -> Dataset {
        self.select(&self.class_indices(label))
    }

    /// Mean feature vector of the points carrying `label`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::MissingClass`] if no point has that label.
    pub fn class_mean(&self, label: Label) -> Result<Vec<f64>, DataError> {
        let idx = self.class_indices(label);
        if idx.is_empty() {
            return Err(DataError::MissingClass);
        }
        let mut mean = vec![0.0; self.dim()];
        for &i in &idx {
            vector::axpy(1.0, self.point(i), &mut mean);
        }
        vector::scale(1.0 / idx.len() as f64, &mut mean);
        Ok(mean)
    }

    /// Euclidean distances from every point of class `label` to `center`.
    ///
    /// # Panics
    ///
    /// Panics if `center.len() != dim()`.
    pub fn class_distances(&self, label: Label, center: &[f64]) -> Vec<f64> {
        self.class_indices(label)
            .iter()
            .map(|&i| vector::euclidean_distance(self.point(i), center))
            .collect()
    }

    /// Euclidean distances from every point to `center`.
    ///
    /// # Panics
    ///
    /// Panics if `center.len() != dim()`.
    pub fn distances(&self, center: &[f64]) -> Vec<f64> {
        self.features
            .iter_rows()
            .map(|row| vector::euclidean_distance(row, center))
            .collect()
    }

    /// Per-column summary `(min, max, mean, std)` — handy for scaling
    /// and for sanity-checking synthetic data.
    pub fn column_summary(&self) -> Vec<ColumnSummary> {
        let mut col = Vec::with_capacity(self.len());
        (0..self.dim())
            .map(|c| {
                // One reused buffer across columns instead of one
                // allocation per column.
                self.features.column_into(c, &mut col);
                ColumnSummary {
                    min: col.iter().copied().fold(f64::INFINITY, f64::min),
                    max: col.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    mean: stats::mean(&col),
                    std_dev: stats::std_dev(&col),
                }
            })
            .collect()
    }

    /// Deconstruct into `(features, labels)`.
    pub fn into_parts(self) -> (Matrix, Vec<Label>) {
        (self.features, self.labels)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset: {} points x {} features ({} positive / {} negative)",
            self.len(),
            self.dim(),
            self.class_count(Label::Positive),
            self.class_count(Label::Negative),
        )
    }
}

/// Per-column statistics returned by [`Dataset::column_summary`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnSummary {
    /// Smallest value in the column.
    pub min: f64,
    /// Largest value in the column.
    pub max: f64,
    /// Arithmetic mean of the column.
    pub mean: f64,
    /// Sample standard deviation of the column.
    pub std_dev: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![0.0, 0.0],
                vec![1.0, 0.0],
                vec![10.0, 10.0],
                vec![11.0, 10.0],
            ],
            vec![
                Label::Negative,
                Label::Negative,
                Label::Positive,
                Label::Positive,
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_counts() {
        let m = Matrix::zeros(3, 2);
        assert!(Dataset::new(m.clone(), vec![Label::Negative; 3]).is_ok());
        assert!(matches!(
            Dataset::new(m, vec![Label::Negative; 2]).unwrap_err(),
            DataError::LabelCountMismatch { .. }
        ));
        assert!(matches!(
            Dataset::from_rows(vec![], vec![]).unwrap_err(),
            DataError::Empty
        ));
    }

    #[test]
    fn push_and_extend_keep_invariant() {
        let mut d = toy();
        d.push(&[5.0, 5.0], Label::Positive).unwrap();
        assert_eq!(d.len(), 5);
        assert!(d.push(&[1.0], Label::Negative).is_err());
        assert_eq!(d.len(), 5, "failed push must not grow labels");

        let mut e = Dataset::empty(2);
        e.extend_from(&d).unwrap();
        assert_eq!(e.len(), 5);
        assert_eq!(e.labels(), d.labels());
    }

    #[test]
    fn class_accounting() {
        let d = toy();
        assert_eq!(d.class_count(Label::Positive), 2);
        assert_eq!(d.class_fraction(Label::Positive), 0.5);
        assert_eq!(d.class_indices(Label::Negative), vec![0, 1]);
        let pos = d.filter_class(Label::Positive);
        assert_eq!(pos.len(), 2);
        assert!(pos.labels().iter().all(|&l| l == Label::Positive));
    }

    #[test]
    fn class_mean_and_distances() {
        let d = toy();
        let m = d.class_mean(Label::Positive).unwrap();
        assert_eq!(m, vec![10.5, 10.0]);
        let dists = d.class_distances(Label::Positive, &m);
        assert_eq!(dists.len(), 2);
        assert!((dists[0] - 0.5).abs() < 1e-12);

        let empty = Dataset::empty(2);
        assert!(matches!(
            empty.class_mean(Label::Positive).unwrap_err(),
            DataError::MissingClass
        ));
    }

    #[test]
    fn distances_to_origin() {
        let d = toy();
        let dd = d.distances(&[0.0, 0.0]);
        assert_eq!(dd[0], 0.0);
        assert_eq!(dd[1], 1.0);
    }

    #[test]
    fn select_preserves_pairing() {
        let d = toy();
        let s = d.select(&[3, 0]);
        assert_eq!(s.point(0), &[11.0, 10.0]);
        assert_eq!(s.label(0), Label::Positive);
        assert_eq!(s.point(1), &[0.0, 0.0]);
        assert_eq!(s.label(1), Label::Negative);
    }

    #[test]
    fn column_summary_sane() {
        let d = toy();
        let s = d.column_summary();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].min, 0.0);
        assert_eq!(s[0].max, 11.0);
        assert!((s[0].mean - 5.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_counts() {
        let d = toy();
        let s = d.to_string();
        assert!(s.contains("4 points"));
        assert!(s.contains("2 positive"));
    }

    #[test]
    fn iter_yields_all_pairs() {
        let d = toy();
        let collected: Vec<(Vec<f64>, Label)> = d.iter().map(|(x, y)| (x.to_vec(), y)).collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[2].1, Label::Positive);
    }

    #[test]
    fn class_fraction_empty_dataset() {
        let d = Dataset::empty(3);
        assert_eq!(d.class_fraction(Label::Positive), 0.0);
        assert!(d.is_empty());
        assert_eq!(d.dim(), 3);
    }
}
