//! Does the shared-preparation engine pay off? A 24-cell scenario
//! grid (4 attacks × 2 defenses × 3 learners) evaluated two ways:
//!
//! * **prepare_per_cell** — every cell run as its own experiment, the
//!   way scenario studies ran before the matrix/engine existed: each
//!   cell re-generates, re-splits and re-scales the dataset before
//!   evaluating (24 preparations);
//! * **shared_store** — one [`EvalEngine`]: the first cell misses, the
//!   other 23 share the cached `Arc` (1 preparation).
//!
//! Cell seeds and evaluation order are identical in both arms, so the
//! delta is exactly the redundant preparation work the store removes.
//! A `prepare_only` group isolates the per-lookup cost (miss vs hit).

use criterion::{criterion_group, criterion_main, Criterion};
use poisongame_defense::FilterStrength;
use poisongame_linalg::rng::SplitMix64;
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_sim::engine::EvalEngine;
use poisongame_sim::pipeline::{
    hugging_placement, prepare, run_cell, DataSource, ExperimentConfig, Prepared,
};
use poisongame_sim::scenario::ScenarioMatrix;
use rand::SeedableRng;
use std::hint::black_box;

/// 4 attacks × 2 defenses × 3 learners = 24 cells, all on O(n·d)
/// defense paths so preparation is a visible share of a cell.
const SPEC: &str = r#"{
    "attacks": [
        {"type": "boundary"},
        {"type": "mixed_radius", "offsets": [0.0, 0.1], "weights": [0.6, 0.4]},
        {"type": "label_flip"},
        {"type": "random_noise"}
    ],
    "defenses": [
        {"type": "radius"},
        {"type": "slab"}
    ],
    "learners": [
        {"type": "svm"},
        {"type": "logreg"},
        {"type": "perceptron"}
    ],
    "strength": 0.15,
    "placement_slack": 0.01
}"#;

fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        seed: 0xCAC4E,
        source: DataSource::SyntheticSpambase { rows: 1200 },
        epochs: 10,
        ..ExperimentConfig::paper()
    }
}

/// Evaluate every cell of the grid sequentially against `prep_of`'s
/// preparation — the two arms differ only in what `prep_of` returns.
fn run_grid(
    config: &ExperimentConfig,
    matrix: &ScenarioMatrix,
    mut prep_of: impl FnMut() -> Prepared,
) -> f64 {
    let mut mix = SplitMix64::new(config.seed ^ 0x5cea_a710);
    let mut total = 0.0;
    for scenario in matrix.scenarios() {
        let cell_seed = mix.next();
        let prepared = prep_of();
        let placement = hugging_placement(&prepared, matrix.strength, matrix.placement_slack);
        let mut rng = Xoshiro256StarStar::seed_from_u64(cell_seed);
        let out = run_cell(
            &prepared,
            &scenario,
            placement,
            FilterStrength::RemoveFraction(matrix.strength),
            config,
            &mut rng,
        )
        .expect("cell runs");
        total += out.accuracy;
    }
    total
}

fn bench_prep_cache(c: &mut Criterion) {
    let config = bench_config();
    let matrix = ScenarioMatrix::from_json_str(SPEC).expect("spec parses");
    assert_eq!(matrix.len(), 24);

    let engine = EvalEngine::new();
    // Sanity: identical seeds ⇒ both arms compute the same grid.
    let cold_total = run_grid(&config, &matrix, || prepare(&config).expect("prepares"));
    let cached_total = run_grid(&config, &matrix, || {
        engine.prepare(&config).expect("prepares")
    });
    assert_eq!(cold_total.to_bits(), cached_total.to_bits());
    assert_eq!(
        engine.cache_stats().misses,
        1,
        "one preparation for 24 cells"
    );

    let mut group = c.benchmark_group("prep_cache/matrix24");
    group.sample_size(10);
    group.bench_function("prepare_per_cell", |b| {
        b.iter(|| {
            black_box(run_grid(&config, &matrix, || {
                prepare(&config).expect("prepares")
            }))
        })
    });
    group.bench_function("shared_store", |b| {
        b.iter(|| {
            black_box(run_grid(&config, &matrix, || {
                engine.prepare(&config).expect("prepares")
            }))
        })
    });
    group.finish();

    // The per-lookup cost in isolation: a miss pays generate + split +
    // scale, a hit clones an Arc.
    let mut group = c.benchmark_group("prep_cache/prepare_only");
    group.sample_size(10);
    group.bench_function("miss", |b| {
        b.iter(|| {
            let fresh = EvalEngine::new();
            black_box(fresh.prepare(&config).expect("prepares"))
        })
    });
    group.bench_function("hit", |b| {
        b.iter(|| black_box(engine.prepare(&config).expect("prepares")))
    });
    group.finish();
}

criterion_group!(benches, bench_prep_cache);
criterion_main!(benches);
