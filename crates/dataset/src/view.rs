//! Read-only sample views: one trait over owned datasets and
//! copy-on-write poisoned extensions.
//!
//! Filters and learners only ever *read* their training data, so they
//! dispatch through [`DataView`] instead of demanding an owned
//! [`Dataset`]. That lets an experiment cell hand them a
//! [`PoisonedView`] — the shared clean base borrowed, only the injected
//! poison rows owned — instead of cloning the whole training set per
//! cell.
//!
//! # Example
//!
//! ```
//! use poisongame_data::{DataView, Dataset, Label, PoisonedView};
//!
//! let clean = Dataset::from_rows(
//!     vec![vec![0.0, 0.0], vec![1.0, 1.0]],
//!     vec![Label::Negative, Label::Positive],
//! ).unwrap();
//! let poison = Dataset::from_rows(vec![vec![9.0, 9.0]], vec![Label::Negative]).unwrap();
//! let view = PoisonedView::new(&clean, poison).unwrap();
//! assert_eq!(view.len(), 3);
//! assert_eq!(view.point(2), &[9.0, 9.0]);
//! assert_eq!(view.appended_indices(), 2..3);
//! ```

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::label::Label;
use poisongame_linalg::view::MatrixView;
use poisongame_linalg::Matrix;

/// Object-safe read access to labelled samples.
///
/// The accessor names mirror [`Dataset`]'s inherent methods, so code
/// written against `&Dataset` ports to `&dyn DataView` without
/// call-site changes. Iteration is by index (an `iter()` returning
/// `impl Iterator` would not be object-safe).
pub trait DataView {
    /// Number of points.
    fn len(&self) -> usize;

    /// Feature dimensionality.
    fn dim(&self) -> usize;

    /// Feature row of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn point(&self, i: usize) -> &[f64];

    /// Label of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn label(&self, i: usize) -> Label;

    /// True if there are no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of points carrying `label`.
    fn class_count(&self, label: Label) -> usize {
        (0..self.len()).filter(|&i| self.label(i) == label).count()
    }

    /// Indices of the points carrying `label`, ascending.
    fn class_indices(&self, label: Label) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.label(i) == label)
            .collect()
    }

    /// Materialize the selected indices into an owned dataset (order
    /// preserved, duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    fn select(&self, indices: &[usize]) -> Dataset {
        let mut data = Vec::with_capacity(indices.len() * self.dim());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.point(i));
            labels.push(self.label(i));
        }
        let features = Matrix::from_vec(indices.len(), self.dim(), data)
            .expect("selected rows share the view's width");
        Dataset::new(features, labels).expect("one label per selected row")
    }

    /// Materialize the whole view into an owned dataset.
    fn to_dataset(&self) -> Dataset {
        let all: Vec<usize> = (0..self.len()).collect();
        self.select(&all)
    }
}

impl DataView for Dataset {
    fn len(&self) -> usize {
        Dataset::len(self)
    }

    fn dim(&self) -> usize {
        Dataset::dim(self)
    }

    fn point(&self, i: usize) -> &[f64] {
        Dataset::point(self, i)
    }

    fn label(&self, i: usize) -> Label {
        Dataset::label(self, i)
    }

    fn class_count(&self, label: Label) -> usize {
        Dataset::class_count(self, label)
    }

    fn class_indices(&self, label: Label) -> Vec<usize> {
        Dataset::class_indices(self, label)
    }

    fn select(&self, indices: &[usize]) -> Dataset {
        Dataset::select(self, indices)
    }

    fn to_dataset(&self) -> Dataset {
        self.clone()
    }
}

/// A clean base dataset (borrowed) with poison rows appended (owned):
/// the copy-on-write training set an attacked experiment cell reads.
///
/// Equivalent, point for point, to cloning the base and extending it —
/// but the base buffer is shared, so a full scenario matrix holds one
/// copy of the clean data no matter how many cells poison it.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonedView<'a> {
    features: MatrixView<'a>,
    base_labels: &'a [Label],
    tail_labels: Vec<Label>,
}

impl<'a> PoisonedView<'a> {
    /// View `base` with `poison` appended below it.
    ///
    /// # Errors
    ///
    /// Returns a wrapped dimension error if the poison's feature width
    /// differs from the base's.
    pub fn new(base: &'a Dataset, poison: Dataset) -> Result<Self, DataError> {
        let (tail_features, tail_labels) = poison.into_parts();
        let features = MatrixView::with_tail(base.features(), tail_features)?;
        Ok(Self {
            features,
            base_labels: base.labels(),
            tail_labels,
        })
    }

    /// Number of borrowed (clean) points.
    pub fn base_len(&self) -> usize {
        self.base_labels.len()
    }

    /// Indices of the appended poison rows within the view — the
    /// ground truth an experiment feeds to filter accounting.
    pub fn appended_indices(&self) -> std::ops::Range<usize> {
        self.base_len()..DataView::len(self)
    }
}

impl DataView for PoisonedView<'_> {
    fn len(&self) -> usize {
        self.features.rows()
    }

    fn dim(&self) -> usize {
        self.features.cols()
    }

    fn point(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    fn label(&self, i: usize) -> Label {
        if i < self.base_labels.len() {
            self.base_labels[i]
        } else {
            self.tail_labels[i - self.base_labels.len()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![10.0, 10.0]],
            vec![Label::Negative, Label::Negative, Label::Positive],
        )
        .unwrap()
    }

    fn poison() -> Dataset {
        Dataset::from_rows(
            vec![vec![5.0, 5.0], vec![6.0, 6.0]],
            vec![Label::Positive, Label::Negative],
        )
        .unwrap()
    }

    /// The materialized equivalent the view must match point for point.
    fn concatenated() -> Dataset {
        let mut all = clean();
        all.extend_from(&poison()).unwrap();
        all
    }

    #[test]
    fn view_matches_materialized_concatenation() {
        let base = clean();
        let view = PoisonedView::new(&base, poison()).unwrap();
        let concat = concatenated();
        assert_eq!(DataView::len(&view), concat.len());
        assert_eq!(DataView::dim(&view), concat.dim());
        for i in 0..concat.len() {
            assert_eq!(DataView::point(&view, i), concat.point(i), "point {i}");
            assert_eq!(DataView::label(&view, i), concat.label(i), "label {i}");
        }
        assert_eq!(view.to_dataset(), concat);
    }

    #[test]
    fn appended_indices_cover_the_tail() {
        let base = clean();
        let view = PoisonedView::new(&base, poison()).unwrap();
        assert_eq!(view.base_len(), 3);
        assert_eq!(view.appended_indices(), 3..5);
    }

    #[test]
    fn class_queries_agree_with_dataset() {
        let base = clean();
        let view = PoisonedView::new(&base, poison()).unwrap();
        let concat = concatenated();
        for label in [Label::Positive, Label::Negative] {
            assert_eq!(view.class_count(label), concat.class_count(label));
            assert_eq!(view.class_indices(label), concat.class_indices(label));
        }
    }

    #[test]
    fn select_through_view_matches_dataset_select() {
        let base = clean();
        let view = PoisonedView::new(&base, poison()).unwrap();
        let concat = concatenated();
        let picks = [4usize, 0, 3, 0];
        assert_eq!(DataView::select(&view, &picks), concat.select(&picks));
    }

    #[test]
    fn width_mismatch_rejected() {
        let base = clean();
        let skinny = Dataset::from_rows(vec![vec![1.0]], vec![Label::Positive]).unwrap();
        assert!(PoisonedView::new(&base, skinny).is_err());
    }

    #[test]
    fn dataset_implements_view_via_inherent_paths() {
        let d = clean();
        let v: &dyn DataView = &d;
        assert_eq!(v.len(), 3);
        assert_eq!(v.class_count(Label::Negative), 2);
        assert_eq!(v.to_dataset(), d);
    }
}
