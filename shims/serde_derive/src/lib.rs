//! Derive macros for the `serde` shim: emit marker-trait impls.
//!
//! Implemented with the bare `proc_macro` API (no `syn`/`quote`, which
//! are unavailable offline). The parser extracts the type name and
//! ignores the body; generic types fall back to emitting nothing,
//! which is fine for a marker trait nobody bounds generically here.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the `struct` / `enum` keyword.
/// Returns `None` for generic types (the shim does not model them).
fn type_name(input: &TokenStream) -> Option<String> {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    // A `<` right after the name means generics.
                    if let Some(TokenTree::Punct(p)) = iter.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// Derive the `serde::Serialize` marker impl. Registers the `serde`
/// helper attribute (`#[serde(default)]` etc.) so annotations written
/// for the real crate compile; the shim ignores them.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("valid impl block"),
        None => TokenStream::new(),
    }
}

/// Derive the `serde::Deserialize` marker impl. Registers the `serde`
/// helper attribute so annotations written for the real crate compile.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl block"),
        None => TokenStream::new(),
    }
}
