//! Averaged perceptron — the simplest linear baseline.

use crate::error::MlError;
use crate::kernel::BatchScratch;
use crate::model::{
    check_trainable, check_warm_start, Classifier, FitKernel, LinearState, TrainConfig,
};
use poisongame_data::DataView;
use poisongame_linalg::rng::{shuffled_indices, Xoshiro256StarStar};
use poisongame_linalg::vector;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Averaged perceptron (Freund & Schapire voting approximation).
///
/// Only the `epochs`, `seed` and `fit_bias` fields of [`TrainConfig`]
/// are used; the perceptron has no learning rate or regularizer.
///
/// # Example
///
/// ```
/// use poisongame_data::synth::gaussian_blobs;
/// use poisongame_linalg::Xoshiro256StarStar;
/// use poisongame_ml::{perceptron::AveragedPerceptron, Classifier, TrainConfig};
/// use rand::SeedableRng;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(4);
/// let data = gaussian_blobs(60, 2, 3.0, 0.5, &mut rng);
/// let mut p = AveragedPerceptron::new(TrainConfig { epochs: 20, ..TrainConfig::default() });
/// p.fit(&data).unwrap();
/// assert!(p.accuracy_on(&data) > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AveragedPerceptron {
    config: TrainConfig,
    weights: Option<Vec<f64>>,
    bias: f64,
}

impl AveragedPerceptron {
    /// Unfitted perceptron.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            weights: None,
            bias: 0.0,
        }
    }

    /// Fitted (averaged) weights, if trained.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Fitted (averaged) intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Default for AveragedPerceptron {
    fn default() -> Self {
        Self::new(TrainConfig::default())
    }
}

impl AveragedPerceptron {
    /// The shared training loop: cold starts pass `init = None` (the
    /// historical path, bit for bit); warm starts seed the *active*
    /// weights from the neighbouring cell's averaged solution (the
    /// averaging accumulators always restart).
    fn fit_impl(&mut self, data: &dyn DataView, init: Option<&LinearState>) -> Result<(), MlError> {
        if self.config.epochs == 0 {
            return Err(MlError::BadHyperparameter {
                what: "epochs",
                value: 0.0,
            });
        }
        if let FitKernel::Minibatch { batch: 0 } = self.config.kernel {
            return Err(MlError::BadHyperparameter {
                what: "batch",
                value: 0.0,
            });
        }
        check_trainable(data)?;

        let dim = data.dim();
        let n = data.len();
        let (mut w, mut b) = match init {
            Some(state) => {
                check_warm_start(state, dim)?;
                (state.weights.clone(), state.bias)
            }
            None => (vec![0.0; dim], 0.0),
        };
        // Accumulators for the average.
        let mut w_sum = vec![0.0; dim];
        let mut b_sum = 0.0;
        let mut rng = Xoshiro256StarStar::seed_from_u64(self.config.seed);
        let mut scratch = match self.config.kernel {
            FitKernel::Minibatch { batch } => Some((batch, BatchScratch::new(dim, batch.min(n)))),
            FitKernel::RowSgd => None,
        };

        for _ in 0..self.config.epochs {
            let order = shuffled_indices(n, &mut rng);
            match scratch.as_mut() {
                None => {
                    for &i in &order {
                        let x = data.point(i);
                        let y = data.label(i).to_signed();
                        if y * (vector::dot(&w, x) + b) <= 0.0 {
                            vector::axpy(y, x, &mut w);
                            if self.config.fit_bias {
                                b += y;
                            }
                        }
                        vector::axpy(1.0, &w, &mut w_sum);
                        b_sum += b;
                    }
                }
                Some((batch, scratch)) => {
                    // Batch variant: every mistake in the batch is
                    // judged against the *same* incoming weights, and
                    // the running average advances once per batch
                    // (weighted by the batch length) instead of once
                    // per row — a documented approximation of the
                    // row-at-a-time Freund–Schapire average.
                    for chunk in order.chunks(*batch) {
                        scratch.gather(data, chunk);
                        scratch.compute_margins(&w, b);
                        scratch.picked.clear();
                        scratch.coeffs.clear();
                        let mut bias_step = 0.0;
                        for j in 0..chunk.len() {
                            if scratch.margins[j] <= 0.0 {
                                let y = scratch.labels[j];
                                scratch.picked.push(j);
                                scratch.coeffs.push(y);
                                bias_step += y;
                            }
                        }
                        scratch.apply(1.0, &mut w);
                        if self.config.fit_bias {
                            b += bias_step;
                        }
                        vector::axpy(chunk.len() as f64, &w, &mut w_sum);
                        b_sum += chunk.len() as f64 * b;
                    }
                }
            }
        }

        let total = (self.config.epochs * n) as f64;
        vector::scale(1.0 / total, &mut w_sum);
        self.weights = Some(w_sum);
        self.bias = if self.config.fit_bias {
            b_sum / total
        } else {
            0.0
        };
        Ok(())
    }
}

impl Classifier for AveragedPerceptron {
    fn fit(&mut self, data: &dyn DataView) -> Result<(), MlError> {
        self.fit_impl(data, None)
    }

    fn fit_from(&mut self, data: &dyn DataView, init: &LinearState) -> Result<(), MlError> {
        self.fit_impl(data, Some(init))
    }

    fn linear_state(&self) -> Option<LinearState> {
        self.weights.as_ref().map(|w| LinearState {
            weights: w.clone(),
            bias: self.bias,
        })
    }

    fn decision_function(&self, x: &[f64]) -> Result<f64, MlError> {
        let w = self.weights.as_ref().ok_or(MlError::NotFitted)?;
        if x.len() != w.len() {
            return Err(MlError::DimensionMismatch {
                expected: w.len(),
                found: x.len(),
            });
        }
        Ok(vector::dot(w, x) + self.bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_data::synth::gaussian_blobs;

    #[test]
    fn learns_separable_data() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        let data = gaussian_blobs(80, 3, 3.5, 0.5, &mut rng);
        let mut p = AveragedPerceptron::new(TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        });
        p.fit(&data).unwrap();
        assert!(p.accuracy_on(&data) > 0.95);
    }

    #[test]
    fn averaging_produces_nonzero_weights() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(32);
        let data = gaussian_blobs(40, 2, 3.0, 0.5, &mut rng);
        let mut p = AveragedPerceptron::default();
        p.fit(&data).unwrap();
        assert!(p.weights().unwrap().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn unfitted_errors() {
        let p = AveragedPerceptron::default();
        assert!(matches!(
            p.decision_function(&[0.0, 0.0]).unwrap_err(),
            MlError::NotFitted
        ));
    }

    #[test]
    fn zero_epochs_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(33);
        let data = gaussian_blobs(10, 2, 3.0, 0.5, &mut rng);
        let mut p = AveragedPerceptron::new(TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        });
        assert!(p.fit(&data).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(34);
        let data = gaussian_blobs(40, 2, 3.0, 0.5, &mut rng);
        let cfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        let mut a = AveragedPerceptron::new(cfg.clone());
        let mut b = AveragedPerceptron::new(cfg);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn minibatch_kernel_learns_like_row_sgd() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(35);
        let data = gaussian_blobs(80, 3, 3.5, 0.5, &mut rng);
        let cfg = TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        };
        let mut row = AveragedPerceptron::new(cfg.clone());
        row.fit(&data).unwrap();
        let mut mb = AveragedPerceptron::new(TrainConfig {
            kernel: FitKernel::Minibatch { batch: 16 },
            ..cfg
        });
        mb.fit(&data).unwrap();
        let (ra, ma) = (row.accuracy_on(&data), mb.accuracy_on(&data));
        assert!((ra - ma).abs() <= 0.05, "row {ra} vs minibatch {ma}");
        assert!(matches!(
            AveragedPerceptron::new(TrainConfig {
                kernel: FitKernel::Minibatch { batch: 0 },
                ..TrainConfig::default()
            })
            .fit(&data)
            .unwrap_err(),
            MlError::BadHyperparameter { what: "batch", .. }
        ));
    }
}
