//! Numerical utilities: finite differences, projected gradient descent
//! helpers, bracketing searches.
//!
//! Algorithm 1 of the paper performs gradient descent on the defender's
//! support radii with a loss assembled from empirical curves — there is
//! no analytic gradient, so central finite differences are used.

use crate::error::LinalgError;

/// Central finite-difference gradient of `f` at `x`.
///
/// Step size is per-coordinate `h * max(1, |x_i|)`.
pub fn finite_difference_gradient<F>(f: &F, x: &[f64], h: f64) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let mut grad = vec![0.0; x.len()];
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        let step = h * x[i].abs().max(1.0);
        let orig = probe[i];
        probe[i] = orig + step;
        let up = f(&probe);
        probe[i] = orig - step;
        let down = f(&probe);
        probe[i] = orig;
        grad[i] = (up - down) / (2.0 * step);
    }
    grad
}

/// Outcome of [`projected_gradient_descent`].
#[derive(Debug, Clone, PartialEq)]
pub struct DescentResult {
    /// Minimizer found.
    pub x: Vec<f64>,
    /// Objective value at the minimizer.
    pub value: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the convergence tolerance was met before the cap.
    pub converged: bool,
    /// Objective value after each iteration (for diagnostics/plots).
    pub trace: Vec<f64>,
}

/// Configuration for [`projected_gradient_descent`].
#[derive(Debug, Clone, PartialEq)]
pub struct DescentConfig {
    /// Initial step size.
    pub step: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub backtrack: f64,
    /// Max backtracking halvings per iteration.
    pub max_backtracks: usize,
    /// Convergence threshold on objective improvement.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Finite-difference step.
    pub fd_step: f64,
}

impl Default for DescentConfig {
    fn default() -> Self {
        Self {
            step: 0.05,
            backtrack: 0.5,
            max_backtracks: 30,
            tolerance: 1e-9,
            max_iterations: 500,
            fd_step: 1e-5,
        }
    }
}

/// Minimize `f` by gradient descent with backtracking line search,
/// projecting each iterate back onto the feasible set via `project`.
///
/// `project` must be idempotent on feasible points; it receives the
/// tentative iterate and returns the projected one.
///
/// # Errors
///
/// Returns [`LinalgError::DomainError`] if the starting point evaluates
/// to a non-finite objective.
pub fn projected_gradient_descent<F, P>(
    f: F,
    project: P,
    x0: &[f64],
    config: &DescentConfig,
) -> Result<DescentResult, LinalgError>
where
    F: Fn(&[f64]) -> f64,
    P: Fn(&[f64]) -> Vec<f64>,
{
    let mut x = project(x0);
    let mut value = f(&x);
    if !value.is_finite() {
        return Err(LinalgError::DomainError {
            what: "f(x0)",
            value,
        });
    }
    let mut trace = Vec::with_capacity(config.max_iterations.min(1024));
    trace.push(value);
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        let grad = finite_difference_gradient(&f, &x, config.fd_step);
        let grad_norm = crate::vector::norm2(&grad);
        if grad_norm < config.tolerance {
            converged = true;
            break;
        }
        // Backtracking line search on the projected step.
        let mut step = config.step;
        let mut improved = false;
        for _ in 0..=config.max_backtracks {
            let mut candidate = x.clone();
            crate::vector::axpy(-step, &grad, &mut candidate);
            let candidate = project(&candidate);
            let cand_value = f(&candidate);
            if cand_value.is_finite() && cand_value < value {
                let improvement = value - cand_value;
                x = candidate;
                value = cand_value;
                improved = true;
                trace.push(value);
                if improvement < config.tolerance {
                    converged = true;
                }
                break;
            }
            step *= config.backtrack;
        }
        if !improved {
            // No descent direction at any tested step: treat as converged.
            converged = true;
            break;
        }
        if converged {
            break;
        }
    }

    Ok(DescentResult {
        x,
        value,
        iterations,
        converged,
        trace,
    })
}

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
///
/// # Errors
///
/// Returns [`LinalgError::DomainError`] if `a >= b` or the bounds are
/// not finite.
pub fn golden_section_min<F>(f: F, a: f64, b: f64, tol: f64) -> Result<f64, LinalgError>
where
    F: Fn(f64) -> f64,
{
    if !(a.is_finite() && b.is_finite()) {
        return Err(LinalgError::NotFinite { what: "bounds" });
    }
    if a >= b {
        return Err(LinalgError::DomainError {
            what: "a",
            value: a,
        });
    }
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (a, b);
    let mut c = hi - inv_phi * (hi - lo);
    let mut d = lo + inv_phi * (hi - lo);
    let mut fc = f(c);
    let mut fd = f(d);
    while (hi - lo).abs() > tol {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - inv_phi * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + inv_phi * (hi - lo);
            fd = f(d);
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Bisection root of a continuous `f` on `[a, b]` with `f(a)` and `f(b)`
/// of opposite sign.
///
/// # Errors
///
/// Returns [`LinalgError::DomainError`] when the signs at the endpoints
/// do not bracket a root.
pub fn bisect_root<F>(f: F, a: f64, b: f64, tol: f64) -> Result<f64, LinalgError>
where
    F: Fn(f64) -> f64,
{
    let (mut lo, mut hi) = (a, b);
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(LinalgError::DomainError {
            what: "bracket",
            value: flo,
        });
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Clamp every coordinate into `[lo, hi]`.
pub fn clamp_all(x: &mut [f64], lo: f64, hi: f64) {
    for v in x.iter_mut() {
        *v = v.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_quadratic_is_linear() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1] * x[1];
        let g = finite_difference_gradient(&f, &[1.0, 2.0], 1e-6);
        assert!((g[0] - 2.0).abs() < 1e-5);
        assert!((g[1] - 12.0).abs() < 1e-5);
    }

    #[test]
    fn descent_minimizes_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let res = projected_gradient_descent(
            f,
            |x| x.to_vec(),
            &[0.0, 0.0],
            &DescentConfig {
                step: 0.3,
                max_iterations: 2000,
                tolerance: 1e-12,
                ..DescentConfig::default()
            },
        )
        .unwrap();
        assert!(res.converged);
        assert!((res.x[0] - 3.0).abs() < 1e-3, "x0={}", res.x[0]);
        assert!((res.x[1] + 1.0).abs() < 1e-3, "x1={}", res.x[1]);
        assert!(res.value < 1e-5);
        assert!(res.trace.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn descent_respects_projection() {
        // Minimize x^2 constrained to x >= 1: solution is x = 1.
        let f = |x: &[f64]| x[0] * x[0];
        let res = projected_gradient_descent(
            f,
            |x| vec![x[0].max(1.0)],
            &[5.0],
            &DescentConfig::default(),
        )
        .unwrap();
        assert!((res.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn descent_rejects_nonfinite_start() {
        let f = |_: &[f64]| f64::NAN;
        assert!(
            projected_gradient_descent(f, |x| x.to_vec(), &[0.0], &DescentConfig::default())
                .is_err()
        );
    }

    #[test]
    fn golden_section_finds_parabola_min() {
        let x = golden_section_min(|x| (x - 2.5).powi(2), 0.0, 10.0, 1e-8).unwrap();
        assert!((x - 2.5).abs() < 1e-6);
    }

    #[test]
    fn golden_section_validates_bounds() {
        assert!(golden_section_min(|x| x, 1.0, 1.0, 1e-8).is_err());
        assert!(golden_section_min(|x| x, f64::NAN, 1.0, 1e-8).is_err());
    }

    #[test]
    fn bisect_finds_root() {
        let r = bisect_root(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn bisect_rejects_non_bracket() {
        assert!(bisect_root(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn bisect_exact_endpoint_roots() {
        assert_eq!(bisect_root(|x| x, 0.0, 1.0, 1e-9).unwrap(), 0.0);
        assert_eq!(bisect_root(|x| x - 1.0, 0.0, 1.0, 1e-9).unwrap(), 1.0);
    }

    #[test]
    fn clamp_all_clamps() {
        let mut x = vec![-1.0, 0.5, 2.0];
        clamp_all(&mut x, 0.0, 1.0);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }
}
