//! Sharded-serving guarantees: response byte-identity at any
//! shard/worker count, prep-key-affine routing (same key → one
//! shard's cache), eviction isolation between shards, and live
//! resize without dropping in-flight requests.

use poisongame_serve::client::Client;
use poisongame_serve::protocol::{
    CellRequest, EstimateRequest, OnlineRequest, RequestKind, SolveRequest,
};
use poisongame_serve::server::{Server, ServerConfig};
use poisongame_sim::engine::config_prep_key;
use poisongame_sim::jsonio::Json;
use poisongame_sim::pipeline::{DataSource, ExperimentConfig};
use poisongame_sim::scenario::Scenario;
use std::net::SocketAddr;

fn quick_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        source: DataSource::SyntheticSpambase { rows: 300 },
        epochs: 20,
        ..ExperimentConfig::paper()
    }
}

fn quick_cell(seed: u64) -> CellRequest {
    CellRequest {
        config: quick_config(seed),
        scenario: Scenario::paper(),
        ..CellRequest::default()
    }
}

fn spawn(config: ServerConfig) -> (SocketAddr, poisongame_serve::ServerHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    (addr, server.spawn())
}

/// A mixed request set: every evaluated kind, with distinct seeds so
/// multiple preparations are in play.
fn workload() -> Vec<RequestKind> {
    vec![
        RequestKind::Cell(quick_cell(7)),
        RequestKind::Cell(quick_cell(8)),
        RequestKind::Estimate(EstimateRequest {
            config: quick_config(7),
            placements: vec![0.05, 0.2],
            strengths: vec![0.0, 0.2],
        }),
        RequestKind::Solve(SolveRequest {
            effect_samples: vec![(0.0, 2.0e-4), (0.2, 4.0e-5), (0.45, -1.0e-6)],
            cost_samples: vec![(0.0, 0.0), (0.2, 0.022), (0.4, 0.065)],
            n_points: 644,
            resolution: 40,
            ..SolveRequest::default()
        }),
        RequestKind::Online(OnlineRequest {
            config: quick_config(9),
            spec: poisongame_online::OnlineSpec {
                rounds: 100,
                placements: vec![0.02, 0.2],
                strengths: vec![0.0, 0.15],
                ..poisongame_online::OnlineSpec::default()
            },
        }),
    ]
}

#[test]
fn responses_are_byte_identical_across_shard_and_worker_counts() {
    // The same pipelined workload — typed requests plus a raw request
    // with an explicit over-the-wire `seed` override — against every
    // (shards, workers) combination. All responses must match the
    // 1-shard/1-worker baseline byte for byte.
    let requests = workload();
    let mut renders: Vec<Vec<String>> = Vec::new();
    for (shards, workers) in [(1, 1), (1, 4), (3, 1), (3, 4)] {
        let (addr, handle) = spawn(ServerConfig {
            shards,
            workers,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect");
        let ids: Vec<u64> = requests
            .iter()
            .map(|kind| client.send(kind.clone(), None).expect("send"))
            .collect();
        let mut run: Vec<String> = ids
            .iter()
            .map(|&id| client.wait(id).expect("response").render())
            .collect();
        // The explicit-seed form: an envelope `seed` override on a
        // raw cell request.
        run.push(
            client
                .call_raw(
                    "cell",
                    &[
                        ("seed".into(), Json::Num(4242.0)),
                        ("config".into(), quick_config(7).to_json()),
                    ],
                )
                .expect("seed-override cell")
                .render(),
        );
        renders.push(run);
        let stats = client.stats().expect("stats");
        assert_eq!(stats.shards.len(), shards, "one entry per shard");
        assert_eq!(stats.shed, 0);
        client.shutdown().expect("shutdown");
        handle.join().expect("server exit");
    }
    for run in &renders[1..] {
        assert_eq!(
            run, &renders[0],
            "responses must not depend on shard or worker count"
        );
    }
}

#[test]
fn same_prep_key_lands_on_exactly_one_shard() {
    let (addr, handle) = spawn(ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    // Five requests over one preparation key (same config, different
    // scenarios would share it too — keep them identical for clarity).
    let cell = quick_cell(77);
    for _ in 0..5 {
        client.cell(&cell).expect("cell");
    }
    let stats = client.stats().expect("stats");
    let touched: Vec<_> = stats
        .shards
        .iter()
        .filter(|shard| shard.cache_hits + shard.cache_misses > 0)
        .collect();
    assert_eq!(
        touched.len(),
        1,
        "one preparation key must touch exactly one shard's cache: {stats:?}"
    );
    let shard = touched[0];
    // Affinity is the documented content-hash rule.
    let expected = (config_prep_key(&cell.config).content_hash() % 4) as usize;
    assert_eq!(shard.index, expected, "routing must follow the prep hash");
    assert_eq!(shard.cache_misses, 1, "first request prepares");
    assert_eq!(shard.cache_hits, 4, "the rest hit the shard's cache");
    assert_eq!(shard.completed, 5);
    client.shutdown().expect("shutdown");
    handle.join().expect("server exit");
}

#[test]
fn eviction_pressure_is_isolated_per_shard() {
    // Per-shard cache bound of 1. Alternating between a key pinned on
    // one shard and a churning set of keys on another shard must never
    // evict the pinned entry — eviction pressure cannot cross shards.
    let shards = 2u64;
    let pinned = quick_cell(1);
    let pinned_shard = config_prep_key(&pinned.config).content_hash() % shards;
    // Collect seeds whose preparations all land on the *other* shard.
    let churn: Vec<CellRequest> = (2..200)
        .map(quick_cell)
        .filter(|cell| config_prep_key(&cell.config).content_hash() % shards != pinned_shard)
        .take(3)
        .collect();
    assert_eq!(churn.len(), 3, "seed search must find off-shard keys");

    let (addr, handle) = spawn(ServerConfig {
        shards: shards as usize,
        cache_capacity: Some(1),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    client.cell(&pinned).expect("prime the pinned shard");
    for cell in &churn {
        client.cell(cell).expect("churn cell");
        client.cell(&pinned).expect("pinned cell");
    }
    let stats = client.stats().expect("stats");
    let pinned_stats = &stats.shards[pinned_shard as usize];
    let churn_stats = &stats.shards[(1 - pinned_shard) as usize];
    assert_eq!(
        pinned_stats.cache_misses, 1,
        "the pinned key must be prepared exactly once: {stats:?}"
    );
    assert_eq!(pinned_stats.cache_hits, 3, "every revisit hits");
    assert_eq!(pinned_stats.cache_evictions, 0, "no cross-shard eviction");
    assert_eq!(
        churn_stats.cache_misses, 3,
        "each churn key is its own preparation"
    );
    assert!(
        churn_stats.cache_evictions >= 2,
        "the churning shard must actually be evicting: {stats:?}"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server exit");
}

#[test]
fn resize_preserves_byte_identity_and_drops_nothing() {
    let (addr, handle) = spawn(ServerConfig {
        shards: 1,
        workers: 2,
        ..ServerConfig::default()
    });
    let requests = workload();
    let mut client = Client::connect(addr).expect("connect");
    let before: Vec<String> = requests
        .iter()
        .map(|kind| client.call(kind.clone(), None).expect("response").render())
        .collect();

    // Resize mid-stream with the pipeline full: every request sent
    // before and after the resize must be answered (nothing dropped),
    // and re-evaluations must stay byte-identical.
    let first_wave: Vec<u64> = requests
        .iter()
        .map(|kind| client.send(kind.clone(), None).expect("send"))
        .collect();
    let resize_id = client
        .send(RequestKind::Resize { shards: 3 }, None)
        .expect("send resize");
    let second_wave: Vec<u64> = requests
        .iter()
        .map(|kind| client.send(kind.clone(), None).expect("send"))
        .collect();
    client.wait(resize_id).expect("resize ack");
    let drained: Vec<String> = first_wave
        .iter()
        .map(|&id| client.wait(id).expect("pre-resize response").render())
        .collect();
    let rerouted: Vec<String> = second_wave
        .iter()
        .map(|&id| client.wait(id).expect("post-resize response").render())
        .collect();
    assert_eq!(drained, before, "pre-resize responses byte-identical");
    assert_eq!(rerouted, before, "post-resize responses byte-identical");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 3, "the pool was re-split");
    assert_eq!(stats.shed, 0, "resize must not shed");
    // Global counters survive the resize even though the old shard's
    // instance counters retired with it (resize itself is control
    // plane and not counted).
    assert_eq!(stats.completed as usize, 3 * requests.len());
    client.shutdown().expect("shutdown");
    handle.join().expect("server exit");
}

#[test]
fn resize_bounds_are_validated() {
    let (addr, handle) = spawn(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    for bad in [0usize, poisongame_serve::MAX_SHARDS + 1] {
        match client.resize(bad) {
            Err(poisongame_serve::ServeError::Server { code, .. }) => {
                assert_eq!(code, poisongame_serve::ErrorCode::BadRequest);
            }
            other => panic!("shards={bad} must be rejected, got {other:?}"),
        }
    }
    // The pool is untouched by rejected resizes.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 1);
    client.shutdown().expect("shutdown");
    handle.join().expect("server exit");
}

#[test]
fn stats_aggregates_equal_shard_sums() {
    let (addr, handle) = spawn(ServerConfig {
        shards: 3,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    for seed in 40..46 {
        client.cell(&quick_cell(seed)).expect("cell");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.completed,
        stats.shards.iter().map(|s| s.completed).sum::<u64>()
    );
    assert_eq!(
        stats.cache_hits,
        stats.shards.iter().map(|s| s.cache_hits).sum::<u64>()
    );
    assert_eq!(
        stats.cache_misses,
        stats.shards.iter().map(|s| s.cache_misses).sum::<u64>()
    );
    assert_eq!(
        stats.cache_entries,
        stats.shards.iter().map(|s| s.cache_entries).sum::<usize>()
    );
    let per_shard_capacity = stats.shards[0].cache_capacity.expect("bounded by default");
    assert_eq!(stats.cache_capacity, Some(3 * per_shard_capacity));
    // The wire form round-trips the shard list.
    let parsed = poisongame_serve::ServerStats::from_json(&stats.to_json()).expect("round trip");
    assert_eq!(parsed, stats);
    client.shutdown().expect("shutdown");
    handle.join().expect("server exit");
}
