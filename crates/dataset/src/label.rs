//! Binary class labels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary label for the spam-classification task.
///
/// `Positive` is the attacked class of interest (spam in Spambase);
/// `Negative` is the benign class (ham). Conversion to the `±1` signed
/// encoding used by hinge-loss learners is provided by
/// [`Label::to_signed`].
///
/// # Example
///
/// ```
/// use poisongame_data::Label;
///
/// assert_eq!(Label::Positive.to_signed(), 1.0);
/// assert_eq!(Label::Negative.to_signed(), -1.0);
/// assert_eq!(Label::Positive.flipped(), Label::Negative);
/// assert_eq!(Label::from_signed(-3.0), Label::Negative);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum Label {
    /// The benign class (ham).
    #[default]
    Negative,
    /// The attacked class (spam).
    Positive,
}

impl Label {
    /// `+1.0` for positive, `-1.0` for negative.
    pub fn to_signed(self) -> f64 {
        match self {
            Label::Positive => 1.0,
            Label::Negative => -1.0,
        }
    }

    /// Positive iff the value is strictly greater than zero.
    pub fn from_signed(value: f64) -> Label {
        if value > 0.0 {
            Label::Positive
        } else {
            Label::Negative
        }
    }

    /// `1` / `0` encoding used in the Spambase CSV.
    pub fn to_bit(self) -> u8 {
        match self {
            Label::Positive => 1,
            Label::Negative => 0,
        }
    }

    /// Parse the `1` / `0` CSV encoding. Any non-zero is positive.
    pub fn from_bit(bit: u8) -> Label {
        if bit == 0 {
            Label::Negative
        } else {
            Label::Positive
        }
    }

    /// The other label.
    pub fn flipped(self) -> Label {
        match self {
            Label::Positive => Label::Negative,
            Label::Negative => Label::Positive,
        }
    }

    /// Both labels, in `[Negative, Positive]` order.
    pub fn both() -> [Label; 2] {
        [Label::Negative, Label::Positive]
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Positive => write!(f, "positive"),
            Label::Negative => write!(f, "negative"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_round_trip() {
        for l in Label::both() {
            assert_eq!(Label::from_signed(l.to_signed()), l);
        }
        assert_eq!(Label::from_signed(0.0), Label::Negative);
        assert_eq!(Label::from_signed(0.5), Label::Positive);
    }

    #[test]
    fn bit_round_trip() {
        for l in Label::both() {
            assert_eq!(Label::from_bit(l.to_bit()), l);
        }
        assert_eq!(Label::from_bit(7), Label::Positive);
    }

    #[test]
    fn flip_is_involutive() {
        for l in Label::both() {
            assert_eq!(l.flipped().flipped(), l);
            assert_ne!(l.flipped(), l);
        }
    }

    #[test]
    fn display_and_default() {
        assert_eq!(Label::Positive.to_string(), "positive");
        assert_eq!(Label::default(), Label::Negative);
    }
}
