//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The poisongame workspace carries its own deterministic generator
//! ([`poisongame_linalg::Xoshiro256StarStar`]); this shim supplies the
//! `rand` trait vocabulary (`RngCore`, `SeedableRng`, `Rng`) that the
//! generator plugs into, so the sources stay byte-compatible with the
//! real crate. Only the surface this workspace uses is implemented.
//!
//! [`poisongame_linalg::Xoshiro256StarStar`]: ../poisongame_linalg/rng/struct.Xoshiro256StarStar.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Error type carried by [`RngCore::try_fill_bytes`]. Infallible for
/// every deterministic generator in this workspace.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible byte fill; infallible by default.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed (mirrors
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly
    /// as `rand 0.8` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (same constants as rand_core::SeedableRng).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A value samplable uniformly from a generator (stands in for
/// `Standard: Distribution<T>`).
pub trait Sample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Sample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Sample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Sample for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Sample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Top 24 bits, matching rand's Standard distribution for f32.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Top 53 bits, matching rand's Standard distribution for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range samplable uniformly (stands in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Modulo sampling: bias is negligible for the spans this
                // workspace draws (all far below 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange<i32> for Range<i32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

/// Convenience extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic generator for shim self-tests.
    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = Lcg::seed_from_u64(42);
        let mut b = Lcg::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_produces_unit_interval_floats() {
        let mut rng = Lcg::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn try_fill_bytes_default_is_infallible() {
        let mut rng = Lcg::seed_from_u64(13);
        let mut buf = [0u8; 7];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
