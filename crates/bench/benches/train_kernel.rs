//! Bench: the PR-6 batched training kernel. Two comparisons:
//!
//! * **fit** — one `LinearSvm::fit` on synthetic Spambase at several
//!   dataset sizes, row-at-a-time SGD (`FitKernel::RowSgd`, the
//!   bit-exact golden reference) vs the blocked minibatch path
//!   (`FitKernel::Minibatch`), which gathers each batch into a packed
//!   panel and computes its margins with one `gemv` per row block.
//! * **matrix24** — the 24-cell scenario grid end to end through
//!   [`EvalEngine`], historical shape (row SGD, per-cell eval) vs the
//!   batched shape (minibatch fit + fused cross-cell evaluation).
//!
//! The minibatch path is *not* bit-identical to row SGD (margins are
//! computed against a per-batch snapshot of the weights), so there is
//! no cross-arm total assertion here — accuracy equivalence is pinned
//! by the property tests in `poisongame-ml` instead. The fused-eval
//! knob alone *is* bit-identical; `sim::scenario` pins that.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poisongame_bench::{bench_dataset, bench_experiment_config};
use poisongame_ml::svm::LinearSvm;
use poisongame_ml::{Classifier, FitKernel, TrainConfig};
use poisongame_sim::engine::EvalEngine;
use poisongame_sim::pipeline::ExperimentConfig;
use poisongame_sim::scenario::ScenarioMatrix;
use std::hint::black_box;

/// 4 attacks × 2 defenses × 3 learners = 24 cells — the same grid the
/// `prep_cache` bench uses, so engine-level numbers are comparable.
const SPEC: &str = r#"{
    "attacks": [
        {"type": "boundary"},
        {"type": "mixed_radius", "offsets": [0.0, 0.1], "weights": [0.6, 0.4]},
        {"type": "label_flip"},
        {"type": "random_noise"}
    ],
    "defenses": [
        {"type": "radius"},
        {"type": "slab"}
    ],
    "learners": [
        {"type": "svm"},
        {"type": "logreg"},
        {"type": "perceptron"}
    ],
    "strength": 0.15,
    "placement_slack": 0.01
}"#;

fn fit_config(kernel: FitKernel) -> TrainConfig {
    TrainConfig {
        epochs: 100,
        kernel,
        ..TrainConfig::default()
    }
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_kernel/fit");
    group.sample_size(10);

    for rows in [300usize, 1200, 4800] {
        let data = bench_dataset(rows);
        group.bench_with_input(BenchmarkId::new("row_sgd", rows), &data, |b, data| {
            b.iter(|| {
                let mut svm = LinearSvm::new(fit_config(FitKernel::RowSgd));
                svm.fit(black_box(data)).expect("training succeeds");
                black_box(svm.bias())
            })
        });
        group.bench_with_input(BenchmarkId::new("minibatch64", rows), &data, |b, data| {
            b.iter(|| {
                let mut svm = LinearSvm::new(fit_config(FitKernel::Minibatch { batch: 64 }));
                svm.fit(black_box(data)).expect("training succeeds");
                black_box(svm.bias())
            })
        });
    }
    group.finish();
}

fn grid_total(config: &ExperimentConfig, matrix: &ScenarioMatrix, fused: bool) -> f64 {
    let engine = EvalEngine::new().fused_eval(fused);
    let results = engine.run_matrix(config, matrix).expect("grid runs");
    results.cells.iter().map(|c| c.outcome.accuracy).sum()
}

fn bench_matrix24(c: &mut Criterion) {
    let row_config = bench_experiment_config();
    let batched_config = ExperimentConfig {
        fit_kernel: FitKernel::Minibatch { batch: 64 },
        ..row_config.clone()
    };
    let matrix = ScenarioMatrix::from_json_str(SPEC).expect("spec parses");
    assert_eq!(matrix.len(), 24);

    let mut group = c.benchmark_group("train_kernel/matrix24");
    group.sample_size(10);
    group.bench_function("row_sgd", |b| {
        b.iter(|| black_box(grid_total(&row_config, &matrix, false)))
    });
    group.bench_function("minibatch64_fused", |b| {
        b.iter(|| black_box(grid_total(&batched_config, &matrix, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_matrix24);
criterion_main!(benches);
