//! Copy-on-write row views over a [`Matrix`].
//!
//! Experiment cells that extend a shared base matrix (poisoning
//! attacks appending rows to the clean training set) previously paid a
//! full `clone()` of the base per cell. [`MatrixView`] borrows the
//! base rows and owns only the appended tail, so a thousand cells can
//! share one base buffer while each carries its own handful of extra
//! rows.
//!
//! # Example
//!
//! ```
//! use poisongame_linalg::{Matrix, MatrixView};
//!
//! let base = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let tail = Matrix::from_rows(&[vec![5.0, 6.0]]).unwrap();
//! let view = MatrixView::with_tail(&base, tail).unwrap();
//! assert_eq!(view.rows(), 3);
//! assert_eq!(view.row(2), &[5.0, 6.0]);
//! assert_eq!(view.to_matrix().row(1), base.row(1));
//! ```

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A borrowed base matrix plus an owned appended tail — rows
/// `0..base.rows()` read through the borrow, rows beyond it from the
/// tail. Appending never touches (or copies) the base.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixView<'a> {
    base: &'a Matrix,
    tail: Matrix,
}

impl<'a> MatrixView<'a> {
    /// A view over `base` with no appended rows.
    pub fn new(base: &'a Matrix) -> Self {
        Self {
            base,
            tail: Matrix::zeros(0, base.cols()),
        }
    }

    /// A view over `base` with `tail` appended below it.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if a non-empty tail's
    /// width differs from the base's.
    pub fn with_tail(base: &'a Matrix, tail: Matrix) -> Result<Self, LinalgError> {
        if tail.rows() > 0 && tail.cols() != base.cols() {
            return Err(LinalgError::DimensionMismatch {
                left: base.cols(),
                right: tail.cols(),
            });
        }
        Ok(Self { base, tail })
    }

    /// Total rows (base + tail).
    pub fn rows(&self) -> usize {
        self.base.rows() + self.tail.rows()
    }

    /// Rows belonging to the borrowed base.
    pub fn base_rows(&self) -> usize {
        self.base.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.base.cols()
    }

    /// True if the view has no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Row `r`, reading through the base borrow for `r <
    /// base_rows()` and the owned tail beyond.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        if r < self.base.rows() {
            self.base.row(r)
        } else {
            self.tail.row(r - self.base.rows())
        }
    }

    /// Append one row to the owned tail (the base is untouched).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on width mismatch.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), LinalgError> {
        if row.len() != self.base.cols() {
            return Err(LinalgError::DimensionMismatch {
                left: self.base.cols(),
                right: row.len(),
            });
        }
        self.tail.push_row(row)
    }

    /// Iterate all rows, base first then tail.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.base.iter_rows().chain(self.tail.iter_rows())
    }

    /// Materialize into one contiguous matrix (base rows copied once,
    /// here, rather than per view construction).
    pub fn to_matrix(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows() * self.cols());
        data.extend_from_slice(self.base.as_slice());
        data.extend_from_slice(self.tail.as_slice());
        Matrix::from_vec(self.rows(), self.cols(), data).expect("view dimensions are consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn plain_view_mirrors_base() {
        let m = base();
        let v = MatrixView::new(&m);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 2);
        assert_eq!(v.base_rows(), 3);
        for r in 0..3 {
            assert_eq!(v.row(r), m.row(r));
        }
        assert_eq!(v.to_matrix(), m);
    }

    #[test]
    fn tail_rows_are_appended() {
        let m = base();
        let tail = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0]]).unwrap();
        let v = MatrixView::with_tail(&m, tail).unwrap();
        assert_eq!(v.rows(), 5);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        assert_eq!(v.row(3), &[7.0, 8.0]);
        let collected: Vec<&[f64]> = v.iter_rows().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[4], &[9.0, 10.0]);
    }

    #[test]
    fn materialization_matches_concatenation() {
        let m = base();
        let tail = Matrix::from_rows(&[vec![7.0, 8.0]]).unwrap();
        let v = MatrixView::with_tail(&m, tail.clone()).unwrap();
        let mut concat = m.clone();
        for row in tail.iter_rows() {
            concat.push_row(row).unwrap();
        }
        assert_eq!(v.to_matrix(), concat);
    }

    #[test]
    fn push_row_grows_tail_only() {
        let m = base();
        let mut v = MatrixView::new(&m);
        v.push_row(&[7.0, 8.0]).unwrap();
        assert_eq!(v.rows(), 4);
        assert_eq!(v.base_rows(), 3);
        assert_eq!(v.row(3), &[7.0, 8.0]);
        assert!(v.push_row(&[1.0]).is_err());
    }

    #[test]
    fn ragged_tail_rejected() {
        let m = base();
        let tail = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(
            MatrixView::with_tail(&m, tail).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
        // An empty tail of any width is fine — there is nothing to read.
        assert!(MatrixView::with_tail(&m, Matrix::zeros(0, 7)).is_ok());
    }

    #[test]
    fn empty_base_empty_tail() {
        let m = Matrix::zeros(0, 2);
        let v = MatrixView::new(&m);
        assert!(v.is_empty());
        assert_eq!(v.rows(), 0);
    }
}
