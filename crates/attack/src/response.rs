//! The attacker's best response to a *mixed* defense.
//!
//! Against a defender mixing over filter strengths `{(p_i, q_i)}` the
//! attacker's expected per-point gain from placing at position `p`
//! (removal-percentile axis, deeper = larger `p`) is
//! `E(p) · survival(p)` where `survival(p) = Σ_{p_j ≤ p} q_j` — the
//! probability the realized filter is weaker than the placement. The
//! survival function is a right-continuous step function that only
//! jumps at support points, and `E` decreases in `p`, so the best
//! response always sits *at a support point* (§4.2 of the paper: "the
//! optimal attack in this case is to place poisoning points near any
//! boundary of the mixed defense strategy in any combination").

/// Survival probability of a placement at percentile `p` against the
/// mixed defense `support` (pairs of `(percentile, probability)`).
pub fn survival_probability(support: &[(f64, f64)], p: f64) -> f64 {
    support
        .iter()
        .filter(|(pj, _)| *pj <= p + 1e-12)
        .map(|(_, qj)| qj)
        .sum()
}

/// Index of the support point maximizing the attacker's expected gain
/// `E(p_i) · survival(p_i)`, together with that gain. Returns `None`
/// for an empty support.
///
/// `effect` is the per-point damage curve `E(p)`.
///
/// # Example
///
/// ```
/// use poisongame_attack::best_response_position;
///
/// // Defender mixes 50/50 over two strengths; effect halves when the
/// // product is equalized — attacker is indifferent.
/// let support = [(0.05, 0.5), (0.20, 0.5)];
/// let effect = |p: f64| if p < 0.1 { 1.0 } else { 0.5 };
/// let (idx, gain) = best_response_position(&support, effect).unwrap();
/// assert_eq!(idx, 0); // ties break toward the shallower placement
/// assert!((gain - 0.5).abs() < 1e-12);
/// ```
pub fn best_response_position<F>(support: &[(f64, f64)], effect: F) -> Option<(usize, f64)>
where
    F: Fn(f64) -> f64,
{
    let mut best: Option<(usize, f64)> = None;
    for (i, &(p, _)) in support.iter().enumerate() {
        let gain = effect(p) * survival_probability(support, p);
        match best {
            Some((_, bg)) if gain <= bg + 1e-15 => {}
            _ => best = Some((i, gain)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_accumulates_weaker_filters() {
        let support = [(0.05, 0.3), (0.10, 0.3), (0.20, 0.4)];
        assert!((survival_probability(&support, 0.05) - 0.3).abs() < 1e-12);
        assert!((survival_probability(&support, 0.10) - 0.6).abs() < 1e-12);
        assert!((survival_probability(&support, 0.20) - 1.0).abs() < 1e-12);
        assert_eq!(survival_probability(&support, 0.01), 0.0);
        assert!((survival_probability(&support, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_response_prefers_high_product() {
        // Deep placement survives always but E is tiny; shallow
        // placement survives half the time with big E.
        let support = [(0.05, 0.5), (0.30, 0.5)];
        let effect = |p: f64| if p < 0.1 { 1.0 } else { 0.1 };
        let (idx, gain) = best_response_position(&support, effect).unwrap();
        assert_eq!(idx, 0);
        assert!((gain - 0.5).abs() < 1e-12);
    }

    #[test]
    fn best_response_switches_when_effect_flattens() {
        // E barely decays → deeper placement (always survives) wins.
        let support = [(0.05, 0.5), (0.30, 0.5)];
        let effect = |p: f64| if p < 0.1 { 1.0 } else { 0.9 };
        let (idx, gain) = best_response_position(&support, effect).unwrap();
        assert_eq!(idx, 1);
        assert!((gain - 0.9).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_support_is_indifferent() {
        // Probabilities chosen so E(p_i)·survival(p_i) is constant —
        // the paper's NE condition 2. Every support point is a best
        // response.
        let e = |p: f64| 1.0 - 2.0 * p; // E(0.05)=0.9, E(0.25)=0.5
                                        // survival(0.05)=q1, survival(0.25)=1. Equal products:
                                        // 0.9 q1 = 0.5 → q1 = 5/9.
        let support = [(0.05, 5.0 / 9.0), (0.25, 4.0 / 9.0)];
        let g1 = e(0.05) * survival_probability(&support, 0.05);
        let g2 = e(0.25) * survival_probability(&support, 0.25);
        assert!((g1 - g2).abs() < 1e-12);
        let (_, gain) = best_response_position(&support, e).unwrap();
        assert!((gain - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_support_is_none() {
        assert!(best_response_position(&[], |_| 1.0).is_none());
    }
}
