//! Deterministic, portable random number generation.
//!
//! Every experiment in this workspace must be reproducible bit-for-bit
//! from its recorded seed, across machines and across versions of the
//! `rand` crate. `rand`'s `StdRng` explicitly does not promise a stable
//! stream between releases, so we carry our own generator: the public
//! xoshiro256** algorithm (Blackman & Vigna) seeded through SplitMix64,
//! exposed through `rand::RngCore`/`SeedableRng` so all of `rand`'s
//! distributions and sequence utilities still compose with it.

use rand::{Error, RngCore, SeedableRng};

/// xoshiro256** — a small, fast, high-quality PRNG with a fixed,
/// portable output stream.
///
/// # Example
///
/// ```
/// use poisongame_linalg::Xoshiro256StarStar;
/// use rand::{Rng, SeedableRng};
///
/// let mut a = Xoshiro256StarStar::seed_from_u64(42);
/// let mut b = Xoshiro256StarStar::seed_from_u64(42);
/// let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
/// let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
/// assert_eq!(xs, ys);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via the SplitMix64 expansion recommended by the xoshiro
    /// authors; any `u64` (including 0) yields a well-mixed state.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Spawn an independent generator for a sub-task, derived
    /// deterministically from this generator's stream.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_raw())
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // The all-zero state is the one fixed point of xoshiro; remap it.
        if s == [0, 0, 0, 0] {
            return Self::new(0);
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// SplitMix64 — used to expand small seeds into full xoshiro state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    ///
    /// Named `next` to match the reference SplitMix64 implementation;
    /// this is not an `Iterator` (the stream is infinite and the name
    /// is load-bearing across the workspace).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Fisher–Yates shuffle of indices `0..n`, deterministic given the RNG.
pub fn shuffled_indices(n: usize, rng: &mut Xoshiro256StarStar) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next_raw() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Sample `k` distinct indices from `0..n` without replacement.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement(n: usize, k: usize, rng: &mut Xoshiro256StarStar) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n}");
    let mut idx = shuffled_indices(n, rng);
    idx.truncate(k);
    idx
}

/// Draw one standard-normal variate (Marsaglia polar method).
pub fn standard_normal(rng: &mut Xoshiro256StarStar) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draw one exponential variate with the given rate (`rate > 0`).
///
/// # Panics
///
/// Panics if `rate <= 0` or is not finite.
pub fn exponential(rate: f64, rng: &mut Xoshiro256StarStar) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential: bad rate {rate}"
    );
    // 1 - U is in (0, 1], so ln is finite.
    -(1.0 - rng.next_f64()).ln() / rate
}

/// Draw one log-normal variate with the given parameters of the
/// underlying normal.
pub fn log_normal(mu: f64, sigma: f64, rng: &mut Xoshiro256StarStar) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reference_stream_is_stable() {
        // Lock in the output stream: if these change, every recorded
        // experiment seed in the repo silently changes meaning.
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn from_seed_all_zero_is_remapped() {
        let mut rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        // Must not be stuck at zero.
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn composes_with_rand_distributions() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let x: f64 = rng.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
        let y: bool = rng.gen();
        let _ = y;
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut idx = shuffled_indices(100, &mut rng);
        idx.sort_unstable();
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut s = sample_without_replacement(50, 20, &mut rng);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        sample_without_replacement(3, 4, &mut rng);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(123);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let m = crate::stats::mean(&xs);
        let v = crate::stats::variance(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "variance {v}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(321);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| exponential(2.0, &mut rng)).collect();
        let m = crate::stats::mean(&xs);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(log_normal(0.0, 1.0, &mut rng) > 0.0);
        }
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(77);
        let mut b = Xoshiro256StarStar::seed_from_u64(77);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..10 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // Parent and fork produce different streams.
        assert_ne!(a.next_u64(), fa.next_u64());
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs of SplitMix64 with seed 1234567 (reference
        // implementation by Vigna).
        let mut sm = SplitMix64::new(1234567);
        let v0 = sm.next();
        let v1 = sm.next();
        assert_ne!(v0, v1);
        // Determinism check.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next(), v0);
        assert_eq!(sm2.next(), v1);
    }
}
