//! Structured errors for the ingestion tier.
//!
//! Every malformed input the conformance suite exercises — ragged
//! rows, non-finite values, quoting, oversized lines, truncated final
//! records — maps to its *own* variant with a 1-based line number, so
//! callers (and operators reading a serve error string) can tell a
//! corrupt download from a schema mismatch without re-reading the
//! file.

use std::error::Error;
use std::fmt;

/// Errors produced while scanning, parsing or validating a record
/// source.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IngestError {
    /// The source contained no data rows (empty file, or comments and
    /// blank lines only).
    Empty,
    /// A row had the wrong number of columns.
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Expected total field count (features + label).
        expected: usize,
        /// Fields actually found.
        found: usize,
    },
    /// A feature field did not parse as a float.
    BadFloat {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// The label field did not parse as a float.
    BadLabel {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// A feature parsed to NaN or ±infinity.
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// The parsed value.
        value: f64,
    },
    /// A field used CSV quoting, which the strict Spambase-layout
    /// reader does not accept.
    Quoted {
        /// 1-based line number.
        line: usize,
    },
    /// A physical line exceeded the configured byte cap — the
    /// ingestion analogue of the serve tier's frame cap.
    LineTooLong {
        /// 1-based line number.
        line: usize,
        /// Observed line length in bytes. Reading stops just past the
        /// cap, so this is a lower bound for lines far over it.
        bytes: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The final data row was not newline-terminated — the signature
    /// of a truncated download or an interrupted write.
    UnterminatedRow {
        /// 1-based line number.
        line: usize,
    },
    /// `chunk_rows` was zero — a chunked reader that can never make
    /// progress.
    ZeroChunkRows,
    /// `max_inflight_chunks` was zero — a pipeline that can never
    /// admit a chunk.
    ZeroInflightChunks,
    /// The source's content hash did not match the expected checksum.
    ChecksumMismatch {
        /// Source description (usually the file path).
        source: String,
        /// The pinned checksum.
        expected: u64,
        /// The hash actually observed.
        actual: u64,
    },
    /// The source changed between the counting pass and the parsing
    /// pass of an out-of-core preparation.
    SourceChanged {
        /// Source description (usually the file path).
        source: String,
    },
    /// The named format is not registered.
    UnknownFormat {
        /// The requested format name.
        name: String,
    },
    /// An underlying I/O failure (flattened to its message so the
    /// error stays `Clone + PartialEq` like the rest of the stack).
    Read(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Empty => write!(f, "source contains no data rows"),
            IngestError::BadArity {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: expected {expected} comma-separated fields, found {found}"
            ),
            IngestError::BadFloat { line, field } => {
                write!(f, "line {line}: invalid float {field:?}")
            }
            IngestError::BadLabel { line, field } => {
                write!(f, "line {line}: invalid label {field:?}")
            }
            IngestError::NonFinite { line, value } => {
                write!(f, "line {line}: non-finite feature {value}")
            }
            IngestError::Quoted { line } => {
                write!(f, "line {line}: quoted fields are not supported")
            }
            IngestError::LineTooLong { line, bytes, cap } => {
                write!(f, "line {line}: {bytes} bytes exceeds the {cap}-byte cap")
            }
            IngestError::UnterminatedRow { line } => {
                write!(
                    f,
                    "line {line}: final data row is not newline-terminated (truncated source?)"
                )
            }
            IngestError::ZeroChunkRows => write!(f, "chunk_rows must be >= 1"),
            IngestError::ZeroInflightChunks => write!(f, "max_inflight_chunks must be >= 1"),
            IngestError::ChecksumMismatch {
                source,
                expected,
                actual,
            } => write!(
                f,
                "{source}: checksum mismatch (expected {expected}, found {actual})"
            ),
            IngestError::SourceChanged { source } => {
                write!(f, "{source}: source changed while being read")
            }
            IngestError::UnknownFormat { name } => write!(f, "unknown source format `{name}`"),
            IngestError::Read(message) => write!(f, "read failed: {message}"),
        }
    }
}

impl Error for IngestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_numbers() {
        let e = IngestError::BadArity {
            line: 7,
            expected: 58,
            found: 3,
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("58"));
        let e = IngestError::LineTooLong {
            line: 2,
            bytes: 4096,
            cap: 1024,
        };
        assert!(e.to_string().contains("1024"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IngestError>();
    }
}
