//! Cross-validation over any [`Classifier`].

use crate::error::MlError;
use crate::metrics::ConfusionMatrix;
use crate::model::Classifier;
use poisongame_data::split::{fold_split, k_fold_indices};
use poisongame_data::Dataset;
use poisongame_linalg::stats;
use poisongame_linalg::Xoshiro256StarStar;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of a k-fold cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// Held-out accuracy per fold.
    pub fold_accuracies: Vec<f64>,
    /// Confusion matrix per fold.
    pub fold_confusions: Vec<ConfusionMatrix>,
}

impl CrossValidation {
    /// Mean held-out accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        stats::mean(&self.fold_accuracies)
    }

    /// Standard deviation of held-out accuracy across folds.
    pub fn std_accuracy(&self) -> f64 {
        stats::std_dev(&self.fold_accuracies)
    }
}

/// Run `k`-fold cross-validation, building a fresh model per fold via
/// `make_model`.
///
/// # Errors
///
/// Propagates dataset/fold errors and any training failure.
pub fn cross_validate<C, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    make_model: F,
) -> Result<CrossValidation, MlError>
where
    C: Classifier,
    F: Fn() -> C,
{
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let folds = k_fold_indices(data, k, &mut rng)?;
    let mut fold_accuracies = Vec::with_capacity(k);
    let mut fold_confusions = Vec::with_capacity(k);
    for fold in 0..k {
        let (train, test) = fold_split(data, &folds, fold);
        let mut model = make_model();
        model.fit(&train)?;
        let preds = model.predict_batch(&test);
        let cm = ConfusionMatrix::from_labels(test.labels(), &preds);
        fold_accuracies.push(cm.accuracy());
        fold_confusions.push(cm);
    }
    Ok(CrossValidation {
        fold_accuracies,
        fold_confusions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainConfig;
    use crate::svm::LinearSvm;
    use poisongame_data::synth::gaussian_blobs;

    #[test]
    fn cross_validation_on_separable_data() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(41);
        let data = gaussian_blobs(60, 3, 3.5, 0.5, &mut rng);
        let cv = cross_validate(&data, 4, 7, || {
            LinearSvm::new(TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            })
        })
        .unwrap();
        assert_eq!(cv.fold_accuracies.len(), 4);
        assert!(cv.mean_accuracy() > 0.9, "mean {}", cv.mean_accuracy());
        assert!(cv.std_accuracy() < 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let data = gaussian_blobs(40, 2, 3.0, 0.5, &mut rng);
        let make = || {
            LinearSvm::new(TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            })
        };
        let a = cross_validate(&data, 3, 5, make).unwrap();
        let b = cross_validate(&data, 3, 5, make).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn propagates_bad_k() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(43);
        let data = gaussian_blobs(10, 2, 3.0, 0.5, &mut rng);
        assert!(cross_validate(&data, 1, 5, LinearSvm::with_defaults).is_err());
    }
}
