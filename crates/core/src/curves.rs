//! The two empirical curves that parameterize the poisoning game.
//!
//! The paper: "The input of the algorithm, `E(p)` and `Γ(p)`, are
//! approximated using the results in Fig. 1." Raw sweep measurements
//! are noisy and not exactly monotone, so both constructors apply
//! isotonic regression to recover the shape the theory requires.

use crate::error::CoreError;
use poisongame_linalg::PiecewiseLinear;
use serde::{Deserialize, Serialize};

/// `E(p)` — accuracy damage per surviving poison point placed at
/// removal-percentile `p`. Non-increasing in `p`: points nearer the
/// boundary (`p → 0`) do the most damage. May go negative for deep
/// placements (poison that helps the defender), which defines the
/// paper's threshold `T_a`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EffectCurve {
    curve: PiecewiseLinear,
}

impl EffectCurve {
    /// Fit from `(percentile, per-point damage)` samples. Samples are
    /// sorted and made non-increasing by isotonic regression.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCurve`] for empty/non-finite samples or
    /// percentiles outside `[0, 1]`.
    pub fn from_samples(samples: &[(f64, f64)]) -> Result<Self, CoreError> {
        validate_percentiles(samples)?;
        let raw = PiecewiseLinear::new(samples.to_vec()).map_err(|e| CoreError::BadCurve {
            message: e.to_string(),
        })?;
        Ok(Self {
            curve: raw.isotonic_decreasing(),
        })
    }

    /// Per-point damage at percentile `p` (clamped extrapolation).
    pub fn eval(&self, p: f64) -> f64 {
        self.curve.eval(p)
    }

    /// The threshold percentile beyond which poisoning is unprofitable
    /// (`E(p) ≤ 0`) — the percentile form of the paper's `T_a`.
    /// `None` if the curve stays positive on `[0, 1]` (then `T_a` is
    /// at the centroid and every placement pays).
    pub fn profit_threshold(&self) -> Option<f64> {
        self.curve.first_crossing_below(0.0, 0.0, 1.0)
    }

    /// Largest percentile with a strictly positive effect margin
    /// `E(p) ≥ floor`; `None` if even `p = 0` is below the floor.
    pub fn last_profitable(&self, floor: f64) -> Option<f64> {
        self.curve
            .first_crossing_below(floor, 0.0, 1.0)
            .or(Some(1.0))
            .filter(|_| self.eval(0.0) >= floor)
    }

    /// The underlying piecewise-linear curve.
    pub fn as_piecewise(&self) -> &PiecewiseLinear {
        &self.curve
    }
}

/// `Γ(p)` — accuracy lost to removing fraction `p` of the genuine
/// data. Non-decreasing, anchored at `Γ(0) = 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostCurve {
    curve: PiecewiseLinear,
}

impl CostCurve {
    /// Fit from `(percentile, accuracy loss)` samples. Sorted, made
    /// non-decreasing by isotonic regression, and re-anchored so that
    /// `Γ(0) = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCurve`] for empty/non-finite samples or
    /// percentiles outside `[0, 1]`.
    pub fn from_samples(samples: &[(f64, f64)]) -> Result<Self, CoreError> {
        validate_percentiles(samples)?;
        let mut anchored: Vec<(f64, f64)> = samples.to_vec();
        if !anchored.iter().any(|&(p, _)| p == 0.0) {
            anchored.push((0.0, 0.0));
        }
        let raw = PiecewiseLinear::new(anchored).map_err(|e| CoreError::BadCurve {
            message: e.to_string(),
        })?;
        let fit = raw.isotonic_increasing();
        // Re-anchor: subtract Γ(0) so the no-filter cost is exactly 0.
        let at_zero = fit.eval(0.0);
        Ok(Self {
            curve: fit.map_values(|y| y - at_zero),
        })
    }

    /// Accuracy loss at filter strength `p`.
    pub fn eval(&self, p: f64) -> f64 {
        self.curve.eval(p)
    }

    /// The underlying piecewise-linear curve.
    pub fn as_piecewise(&self) -> &PiecewiseLinear {
        &self.curve
    }
}

fn validate_percentiles(samples: &[(f64, f64)]) -> Result<(), CoreError> {
    if samples.is_empty() {
        return Err(CoreError::BadCurve {
            message: "no samples".into(),
        });
    }
    for &(p, y) in samples {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(CoreError::BadCurve {
                message: format!("percentile {p} outside [0,1]"),
            });
        }
        if !y.is_finite() {
            return Err(CoreError::BadCurve {
                message: format!("non-finite value at percentile {p}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effect_is_monotone_after_fit() {
        // Noisy, slightly non-monotone samples.
        let e = EffectCurve::from_samples(&[
            (0.0, 1.0),
            (0.1, 0.8),
            (0.2, 0.85), // violation
            (0.4, 0.2),
            (0.6, -0.1),
        ])
        .unwrap();
        assert!(e.as_piecewise().is_non_increasing());
        assert!(e.eval(0.0) >= e.eval(0.3));
    }

    #[test]
    fn effect_profit_threshold_found() {
        let e = EffectCurve::from_samples(&[(0.0, 1.0), (0.5, 0.0), (1.0, -1.0)]).unwrap();
        let t = e.profit_threshold().unwrap();
        assert!((t - 0.5).abs() < 1e-9, "threshold {t}");
        // Always-positive curve has no threshold.
        let e = EffectCurve::from_samples(&[(0.0, 1.0), (1.0, 0.5)]).unwrap();
        assert!(e.profit_threshold().is_none());
    }

    #[test]
    fn effect_last_profitable_with_floor() {
        let e = EffectCurve::from_samples(&[(0.0, 1.0), (1.0, 0.0)]).unwrap();
        let lp = e.last_profitable(0.5).unwrap();
        assert!((lp - 0.5).abs() < 1e-9);
        assert!(e.last_profitable(2.0).is_none());
    }

    #[test]
    fn cost_is_anchored_and_monotone() {
        let g = CostCurve::from_samples(&[(0.1, 0.02), (0.3, 0.01), (0.5, 0.10)]).unwrap();
        assert_eq!(g.eval(0.0), 0.0);
        assert!(g.as_piecewise().is_non_decreasing());
        assert!(g.eval(0.5) >= g.eval(0.1));
    }

    #[test]
    fn cost_anchor_shifts_constant_offset() {
        let g = CostCurve::from_samples(&[(0.0, 0.05), (0.5, 0.15)]).unwrap();
        assert_eq!(g.eval(0.0), 0.0);
        assert!((g.eval(0.5) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_samples() {
        assert!(EffectCurve::from_samples(&[]).is_err());
        assert!(EffectCurve::from_samples(&[(1.5, 0.0)]).is_err());
        assert!(EffectCurve::from_samples(&[(0.5, f64::NAN)]).is_err());
        assert!(CostCurve::from_samples(&[(-0.1, 0.0)]).is_err());
    }

    #[test]
    fn eval_clamps_outside_range() {
        let e = EffectCurve::from_samples(&[(0.1, 1.0), (0.5, 0.0)]).unwrap();
        assert_eq!(e.eval(0.0), 1.0);
        assert_eq!(e.eval(0.9), 0.0);
    }
}
