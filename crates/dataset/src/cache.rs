//! A keyed store for shared, immutable preparation products.
//!
//! Sweeps over an experiment grid prepare the *same* dataset
//! (generate → split → scale) for every cell that shares a source;
//! [`PrepCache`] memoizes that work behind a content-hash key so each
//! distinct preparation runs exactly once and every consumer shares
//! one `Arc` of the result. Values are immutable once inserted —
//! caching can only remove redundant identical computation, never
//! change a result.
//!
//! Batch sweeps touch a handful of keys and want them all resident, so
//! [`PrepCache::new`] is unbounded — the historical behavior. A
//! long-lived server seeing an open-ended stream of configurations
//! would leak through an unbounded cache, so [`PrepCache::bounded`]
//! caps the resident set and evicts the least-recently-used entry on
//! overflow; evictions are reported in [`CacheStats::evictions`].
//! Eviction only drops the cache's own `Arc` — consumers already
//! holding the value keep it alive, and a later lookup simply rebuilds.
//!
//! # Example
//!
//! ```
//! use poisongame_data::cache::PrepCache;
//!
//! let cache: PrepCache<u64, Vec<f64>> = PrepCache::new();
//! let a = cache
//!     .get_or_try_insert_with::<(), _>(42, || Ok(vec![1.0, 2.0]))
//!     .unwrap();
//! let b = cache
//!     .get_or_try_insert_with::<(), _>(42, || unreachable!("cache hit"))
//!     .unwrap();
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! ```

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters of a [`PrepCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the value.
    pub misses: u64,
    /// Entries dropped to respect a bounded cache's capacity (always
    /// `0` for an unbounded cache).
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident value plus its recency stamp (larger = used later).
#[derive(Debug)]
struct Slot<V> {
    value: Arc<V>,
    last_used: u64,
}

/// The lock-guarded interior: the keyed slots and the logical clock
/// that stamps every touch.
#[derive(Debug)]
struct Inner<K, V> {
    slots: HashMap<K, Slot<V>>,
    tick: u64,
}

impl<K: Eq + Hash, V> Inner<K, V> {
    /// Stamp `slot` as the most recently used entry.
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A concurrent keyed map of `Arc`-shared immutable values, optionally
/// bounded with least-recently-used eviction.
///
/// Keys are compared by full `Eq`, never by hash alone — callers may
/// use a content-hash *inside* their key's `Hash` impl for speed, but
/// a hash collision can only cost a rebuild, not serve the wrong
/// value.
///
/// The builder closure runs *outside* the map lock, so distinct keys
/// prepare in parallel. Two threads racing the same key may both build
/// it (first insert wins, the loser's value is dropped); callers that
/// fan out over a grid should deduplicate keys first — see the
/// simulation crate's two-phase engine — and the race is then
/// impossible. Because values are deterministic functions of their
/// key, a duplicated build never changes what consumers observe.
#[derive(Debug)]
pub struct PrepCache<K, V> {
    map: Mutex<Inner<K, V>>,
    /// `None` = unbounded (the batch default); `Some(n)` keeps at most
    /// `n` resident entries.
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

// Manual impl: a derived `Default` would demand `K: Default` and
// `V: Default`, but an empty cache needs no values at all.
impl<K: Eq + Hash, V> Default for PrepCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> PrepCache<K, V> {
    /// An empty, unbounded cache (the batch-sweep default: a grid's
    /// handful of keys should all stay resident).
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// An empty cache keeping at most `capacity` resident entries,
    /// evicting the least-recently-used on overflow. A capacity of `0`
    /// degenerates to "build every time" (nothing stays resident) —
    /// still correct, never caching.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_capacity(Some(capacity))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        Self {
            map: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The value under `key`, building and inserting it with `build`
    /// on a miss. Counts a hit when the value was already present, a
    /// miss when `build` ran (even if another thread's insert won the
    /// race). On a bounded cache the least-recently-used entries are
    /// evicted until the bound holds again.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is inserted on failure.
    pub fn get_or_try_insert_with<E, F>(&self, key: K, build: F) -> Result<Arc<V>, E>
    where
        F: FnOnce() -> Result<V, E>,
    {
        if let Some(found) = self.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.map.lock().expect("cache map poisoned");
        let stamp = inner.touch();
        // First insert wins so every consumer of the key shares one Arc.
        let value = Arc::clone(
            &inner
                .slots
                .entry(key)
                .and_modify(|slot| slot.last_used = stamp)
                .or_insert(Slot {
                    value: built,
                    last_used: stamp,
                })
                .value,
        );
        self.evict_over_capacity(&mut inner);
        Ok(value)
    }

    /// Drop least-recently-used entries until the bound holds. Runs
    /// under the map lock; the returned `Arc`s consumers already hold
    /// stay alive regardless.
    fn evict_over_capacity(&self, inner: &mut Inner<K, V>) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while inner.slots.len() > capacity {
            // Stamps are unique (one tick per touch), so the oldest
            // stamp identifies exactly one entry — no key clone needed.
            let oldest = inner
                .slots
                .values()
                .map(|slot| slot.last_used)
                .min()
                .expect("non-empty map above capacity");
            inner.slots.retain(|_, slot| slot.last_used != oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The value under `key`, if present (refreshes the entry's
    /// recency but does not touch the hit/miss counters).
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.map.lock().expect("cache map poisoned");
        let stamp = inner.touch();
        inner.slots.get_mut(key).map(|slot| {
            slot.last_used = stamp;
            Arc::clone(&slot.value)
        })
    }

    /// Number of cached values.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache map poisoned").slots.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached value (counters are kept; explicit clears do
    /// not count as evictions).
    pub fn clear(&self) {
        self.map.lock().expect("cache map poisoned").slots.clear();
    }

    /// Hit/miss/eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Incremental FNV-1a content hasher for building cache keys out of
/// heterogeneous fields (enum tags, integers, float bit patterns, raw
/// text). Stable across platforms and runs.
#[derive(Debug, Clone, Copy)]
pub struct ContentHash(u64);

impl Default for ContentHash {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHash {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Fold raw bytes into the hash.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold a `u64` (little-endian bytes) into the hash.
    pub fn u64(self, value: u64) -> Self {
        self.bytes(&value.to_le_bytes())
    }

    /// Fold an `f64` by exact bit pattern into the hash.
    pub fn f64(self, value: f64) -> Self {
        self.u64(value.to_bits())
    }

    /// Fold a UTF-8 string into the hash.
    pub fn str(self, value: &str) -> Self {
        self.bytes(value.as_bytes())
    }

    /// The accumulated 64-bit key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_shares_one_arc() {
        let cache: PrepCache<u64, String> = PrepCache::new();
        let a = cache
            .get_or_try_insert_with::<(), _>(1, || Ok("built".to_string()))
            .unwrap();
        let b = cache
            .get_or_try_insert_with::<(), _>(1, || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn distinct_keys_build_independently() {
        let cache: PrepCache<u64, u32> = PrepCache::new();
        for key in 0..5 {
            let v = cache
                .get_or_try_insert_with::<(), _>(key, || Ok(key as u32 * 10))
                .unwrap();
            assert_eq!(*v, key as u32 * 10);
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().misses, 5);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn build_failure_inserts_nothing() {
        let cache: PrepCache<u64, u32> = PrepCache::new();
        let out: Result<_, &str> = cache.get_or_try_insert_with(9, || Err("boom"));
        assert_eq!(out.unwrap_err(), "boom");
        assert!(cache.get(&9).is_none());
        // A later successful build fills the slot.
        let v = cache
            .get_or_try_insert_with::<&str, _>(9, || Ok(7))
            .unwrap();
        assert_eq!(*v, 7);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache: PrepCache<u64, u32> = PrepCache::new();
        cache.get_or_try_insert_with::<(), _>(1, || Ok(1)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().evictions, 0, "clear is not an eviction");
    }

    #[test]
    fn concurrent_same_key_converges_to_one_value() {
        let cache: Arc<PrepCache<u64, u64>> = Arc::new(PrepCache::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                *cache
                    .get_or_try_insert_with::<(), _>(5, || Ok(123))
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 123);
        }
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
    }

    #[test]
    fn hit_rate_math() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache: PrepCache<u64, u64> = PrepCache::bounded(2);
        assert_eq!(cache.capacity(), Some(2));
        cache.get_or_try_insert_with::<(), _>(1, || Ok(10)).unwrap();
        cache.get_or_try_insert_with::<(), _>(2, || Ok(20)).unwrap();
        // Touch key 1 so key 2 becomes the LRU entry.
        assert_eq!(*cache.get(&1).unwrap(), 10);
        cache.get_or_try_insert_with::<(), _>(3, || Ok(30)).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&2).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        // The evicted key rebuilds on the next lookup — a miss, not an
        // error.
        cache.get_or_try_insert_with::<(), _>(2, || Ok(20)).unwrap();
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn eviction_does_not_invalidate_held_arcs() {
        let cache: PrepCache<u64, String> = PrepCache::bounded(1);
        let held = cache
            .get_or_try_insert_with::<(), _>(1, || Ok("keep me".to_string()))
            .unwrap();
        cache
            .get_or_try_insert_with::<(), _>(2, || Ok("other".to_string()))
            .unwrap();
        assert!(cache.get(&1).is_none(), "evicted from the cache");
        assert_eq!(*held, "keep me", "consumer's Arc survives eviction");
    }

    #[test]
    fn zero_capacity_never_caches_but_stays_correct() {
        let cache: PrepCache<u64, u64> = PrepCache::bounded(0);
        for _ in 0..3 {
            let v = cache.get_or_try_insert_with::<(), _>(7, || Ok(70)).unwrap();
            assert_eq!(*v, 70);
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let base = ContentHash::new().str("blobs").u64(7).f64(0.3).finish();
        let same = ContentHash::new().str("blobs").u64(7).f64(0.3).finish();
        assert_eq!(base, same);
        assert_ne!(
            base,
            ContentHash::new().str("blobs").u64(8).f64(0.3).finish()
        );
        assert_ne!(
            base,
            ContentHash::new().str("spam").u64(7).f64(0.3).finish()
        );
        assert_ne!(
            base,
            ContentHash::new().str("blobs").u64(7).f64(0.30001).finish()
        );
    }
}
