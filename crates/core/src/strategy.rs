//! The defender's mixed strategy over filter strengths.

use crate::curves::{CostCurve, EffectCurve};
use crate::error::CoreError;
use poisongame_linalg::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finite-support mixed strategy over filter strengths (removal
/// percentiles).
///
/// Invariants: support percentiles are strictly increasing inside
/// `[0, 1)`; probabilities are non-negative and sum to 1.
///
/// # Example
///
/// ```
/// use poisongame_core::DefenderMixedStrategy;
///
/// let s = DefenderMixedStrategy::new(vec![0.058, 0.157], vec![0.512, 0.488]).unwrap();
/// assert_eq!(s.support().len(), 2);
/// assert!((s.survival_probability(0.1) - 0.512).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenderMixedStrategy {
    support: Vec<f64>,
    probabilities: Vec<f64>,
}

impl DefenderMixedStrategy {
    /// Validate and build a strategy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParameter`] for empty/mismatched inputs,
    /// non-increasing support, percentiles outside `[0, 1)`, negative
    /// probabilities or a probability sum off by more than `1e-6`.
    pub fn new(support: Vec<f64>, probabilities: Vec<f64>) -> Result<Self, CoreError> {
        if support.is_empty() || support.len() != probabilities.len() {
            return Err(CoreError::BadParameter {
                what: "support",
                value: support.len() as f64,
            });
        }
        for &p in &support {
            if !(0.0..1.0).contains(&p) || p.is_nan() {
                return Err(CoreError::BadParameter {
                    what: "percentile",
                    value: p,
                });
            }
        }
        if support.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CoreError::BadParameter {
                what: "support_order",
                value: f64::NAN,
            });
        }
        for &q in &probabilities {
            if q < 0.0 || !q.is_finite() {
                return Err(CoreError::BadParameter {
                    what: "probability",
                    value: q,
                });
            }
        }
        let sum: f64 = probabilities.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(CoreError::BadParameter {
                what: "probability_sum",
                value: sum,
            });
        }
        let probabilities: Vec<f64> = probabilities.iter().map(|q| q / sum).collect();
        Ok(Self {
            support,
            probabilities,
        })
    }

    /// A pure strategy at one filter strength.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParameter`] for a percentile outside
    /// `[0, 1)`.
    pub fn pure(theta: f64) -> Result<Self, CoreError> {
        Self::new(vec![theta], vec![1.0])
    }

    /// Support percentiles, ascending.
    pub fn support(&self) -> &[f64] {
        &self.support
    }

    /// Probabilities aligned with [`DefenderMixedStrategy::support`].
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// `(percentile, probability)` pairs.
    pub fn support_pairs(&self) -> Vec<(f64, f64)> {
        self.support
            .iter()
            .copied()
            .zip(self.probabilities.iter().copied())
            .collect()
    }

    /// Probability that a poison point placed at percentile `p`
    /// survives the sampled filter — the paper's `cdf_m` "counting from
    /// `B` towards the centroid": the mass of support strengths weaker
    /// than (≤) the placement.
    pub fn survival_probability(&self, p: f64) -> f64 {
        self.support
            .iter()
            .zip(&self.probabilities)
            .filter(|(s, _)| **s <= p + 1e-12)
            .map(|(_, q)| q)
            .sum()
    }

    /// Expected genuine-data cost `E_θ[Γ(θ)]` under this mixture.
    pub fn expected_cost(&self, cost: &CostCurve) -> f64 {
        self.support
            .iter()
            .zip(&self.probabilities)
            .map(|(&s, &q)| q * cost.eval(s))
            .sum()
    }

    /// The attacker's per-point equilibrium gain against this strategy:
    /// `max_i E(p_i)·survival(p_i)` over the support (the best response
    /// always sits on a support point — see
    /// [`poisongame_attack::best_response_position`] for the argument;
    /// re-derived here to avoid a dependency cycle).
    ///
    /// [`poisongame_attack::best_response_position`]:
    /// https://docs.rs/poisongame-attack
    pub fn attacker_gain(&self, effect: &EffectCurve) -> f64 {
        self.support
            .iter()
            .map(|&p| effect.eval(p) * self.survival_probability(p))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0) // the attacker can always abstain
    }

    /// Defender's expected loss against a best-responding attacker with
    /// `n_points` poison points: `N·gain + E[Γ]` — the objective `f`
    /// of Algorithm 1.
    pub fn defender_loss(&self, effect: &EffectCurve, cost: &CostCurve, n_points: usize) -> f64 {
        n_points as f64 * self.attacker_gain(effect) + self.expected_cost(cost)
    }

    /// Sample a filter strength.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        let u = rng.next_f64();
        let mut acc = 0.0;
        for (&s, &q) in self.support.iter().zip(&self.probabilities) {
            acc += q;
            if u < acc {
                return s;
            }
        }
        *self.support.last().expect("non-empty support")
    }
}

impl fmt::Display for DefenderMixedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cells: Vec<String> = self
            .support_pairs()
            .iter()
            .map(|(p, q)| format!("{:.1}%@{:.1}%", q * 100.0, p * 100.0))
            .collect();
        write!(f, "{{{}}}", cells.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn effect() -> EffectCurve {
        EffectCurve::from_samples(&[(0.0, 1.0), (0.5, 0.0)]).unwrap()
    }

    fn cost() -> CostCurve {
        CostCurve::from_samples(&[(0.0, 0.0), (0.5, 0.1)]).unwrap()
    }

    #[test]
    fn validation_catches_all_violations() {
        assert!(DefenderMixedStrategy::new(vec![], vec![]).is_err());
        assert!(DefenderMixedStrategy::new(vec![0.1], vec![0.5, 0.5]).is_err());
        assert!(DefenderMixedStrategy::new(vec![0.2, 0.1], vec![0.5, 0.5]).is_err());
        assert!(DefenderMixedStrategy::new(vec![0.1, 0.1], vec![0.5, 0.5]).is_err());
        assert!(DefenderMixedStrategy::new(vec![1.0], vec![1.0]).is_err());
        assert!(DefenderMixedStrategy::new(vec![0.1, 0.2], vec![0.9, 0.2]).is_err());
        assert!(DefenderMixedStrategy::new(vec![0.1, 0.2], vec![-0.1, 1.1]).is_err());
        assert!(DefenderMixedStrategy::new(vec![0.058, 0.157], vec![0.512, 0.488]).is_ok());
    }

    #[test]
    fn survival_is_cdf_from_boundary() {
        let s = DefenderMixedStrategy::new(vec![0.05, 0.15, 0.30], vec![0.2, 0.3, 0.5]).unwrap();
        assert_eq!(s.survival_probability(0.01), 0.0);
        assert!((s.survival_probability(0.05) - 0.2).abs() < 1e-12);
        assert!((s.survival_probability(0.20) - 0.5).abs() < 1e-12);
        assert!((s.survival_probability(0.99) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_cost_is_probability_weighted() {
        let s = DefenderMixedStrategy::new(vec![0.1, 0.3], vec![0.5, 0.5]).unwrap();
        let g = cost();
        let expected = 0.5 * g.eval(0.1) + 0.5 * g.eval(0.3);
        assert!((s.expected_cost(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn attacker_gain_maximizes_product() {
        let s = DefenderMixedStrategy::new(vec![0.1, 0.3], vec![0.5, 0.5]).unwrap();
        let e = effect();
        // products: E(0.1)*0.5 = 0.8*0.5 = 0.4 ; E(0.3)*1.0 = 0.4.
        let gain = s.attacker_gain(&e);
        assert!((gain - 0.4).abs() < 1e-12, "gain {gain}");
    }

    #[test]
    fn attacker_gain_floors_at_zero() {
        // Defense so deep the effect is negative everywhere on support.
        let e = EffectCurve::from_samples(&[(0.0, -0.5), (0.5, -1.0)]).unwrap();
        let s = DefenderMixedStrategy::new(vec![0.1, 0.3], vec![0.5, 0.5]).unwrap();
        assert_eq!(s.attacker_gain(&e), 0.0);
    }

    #[test]
    fn defender_loss_combines_terms() {
        let s = DefenderMixedStrategy::new(vec![0.1, 0.3], vec![0.5, 0.5]).unwrap();
        let e = effect();
        let g = cost();
        let loss = s.defender_loss(&e, &g, 100);
        assert!((loss - (100.0 * 0.4 + s.expected_cost(&g))).abs() < 1e-12);
    }

    #[test]
    fn pure_strategy_survival_is_step() {
        let s = DefenderMixedStrategy::pure(0.2).unwrap();
        assert_eq!(s.survival_probability(0.1), 0.0);
        assert_eq!(s.survival_probability(0.2), 1.0);
    }

    #[test]
    fn sampling_matches_distribution() {
        let s = DefenderMixedStrategy::new(vec![0.1, 0.3], vec![0.25, 0.75]).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let n = 20_000;
        let deep = (0..n).filter(|_| s.sample(&mut rng) == 0.3).count();
        let frac = deep as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "sampled {frac}");
    }

    #[test]
    fn display_formats_percentages() {
        let s = DefenderMixedStrategy::new(vec![0.058, 0.157], vec![0.512, 0.488]).unwrap();
        let out = s.to_string();
        assert!(out.contains("51.2%@5.8%"), "display: {out}");
    }
}
