//! Classification metrics.

use poisongame_data::Label;
use serde::{Deserialize, Serialize};
use std::fmt;

/// 2×2 confusion matrix for binary classification.
///
/// # Example
///
/// ```
/// use poisongame_data::Label::{Negative as N, Positive as P};
/// use poisongame_ml::metrics::ConfusionMatrix;
///
/// let truth = [P, P, N, N];
/// let pred = [P, N, N, P];
/// let cm = ConfusionMatrix::from_labels(&truth, &pred);
/// assert_eq!(cm.true_positives, 1);
/// assert_eq!(cm.accuracy(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Positive points predicted positive.
    pub true_positives: usize,
    /// Negative points predicted negative.
    pub true_negatives: usize,
    /// Negative points predicted positive.
    pub false_positives: usize,
    /// Positive points predicted negative.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Tally from parallel truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(truth: &[Label], predictions: &[Label]) -> Self {
        assert_eq!(
            truth.len(),
            predictions.len(),
            "confusion matrix: length mismatch"
        );
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in truth.iter().zip(predictions) {
            match (t, p) {
                (Label::Positive, Label::Positive) => cm.true_positives += 1,
                (Label::Negative, Label::Negative) => cm.true_negatives += 1,
                (Label::Negative, Label::Positive) => cm.false_positives += 1,
                (Label::Positive, Label::Negative) => cm.false_negatives += 1,
            }
        }
        cm
    }

    /// Total number of points.
    pub fn total(&self) -> usize {
        self.true_positives + self.true_negatives + self.false_positives + self.false_negatives
    }

    /// Fraction classified correctly (`0.0` when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// Precision of the positive class (`0.0` when no positive
    /// prediction exists).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall of the positive class (`0.0` when no positive truth
    /// exists).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall (`0.0` when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "            pred + | pred -")?;
        writeln!(
            f,
            "  truth + {:>8} | {:>6}",
            self.true_positives, self.false_negatives
        )?;
        write!(
            f,
            "  truth - {:>8} | {:>6}",
            self.false_positives, self.true_negatives
        )
    }
}

/// Convenience accuracy over label slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(truth: &[Label], predictions: &[Label]) -> f64 {
    ConfusionMatrix::from_labels(truth, predictions).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use Label::{Negative as N, Positive as P};

    #[test]
    fn perfect_predictions() {
        let t = [P, N, P];
        let cm = ConfusionMatrix::from_labels(&t, &t);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.total(), 3);
    }

    #[test]
    fn all_wrong() {
        let t = [P, N];
        let p = [N, P];
        let cm = ConfusionMatrix::from_labels(&t, &p);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn mixed_case_counts() {
        let truth = [P, P, P, N, N, N];
        let pred = [P, P, N, N, P, N];
        let cm = ConfusionMatrix::from_labels(&truth, &pred);
        assert_eq!(cm.true_positives, 2);
        assert_eq!(cm.false_negatives, 1);
        assert_eq!(cm.false_positives, 1);
        assert_eq!(cm.true_negatives, 2);
        assert!((cm.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_all_zero() {
        let cm = ConfusionMatrix::from_labels(&[], &[]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ConfusionMatrix::from_labels(&[P], &[P, N]);
    }

    #[test]
    fn display_renders_grid() {
        let cm = ConfusionMatrix::from_labels(&[P, N], &[P, N]);
        let s = cm.to_string();
        assert!(s.contains("pred +"));
        assert!(s.contains("truth -"));
    }

    #[test]
    fn accuracy_helper_matches_matrix() {
        let truth = [P, N, N, P];
        let pred = [P, N, P, P];
        assert_eq!(
            accuracy(&truth, &pred),
            ConfusionMatrix::from_labels(&truth, &pred).accuracy()
        );
    }
}
