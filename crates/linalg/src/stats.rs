//! Summary statistics, robust location estimators and quantiles.
//!
//! The sphere filter of the poisoning game is driven entirely by the
//! empirical distribution of distances-from-centroid, so quantile and
//! robust-location code here is load-bearing for the whole reproduction.

use crate::error::LinalgError;

/// Arithmetic mean; `0.0` for an empty slice is *not* returned — use
/// [`try_mean`] when emptiness is possible.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn mean(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "mean of empty slice");
    x.iter().sum::<f64>() / x.len() as f64
}

/// Checked mean.
///
/// # Errors
///
/// Returns [`LinalgError::EmptyInput`] on an empty slice.
pub fn try_mean(x: &[f64]) -> Result<f64, LinalgError> {
    if x.is_empty() {
        return Err(LinalgError::EmptyInput);
    }
    Ok(mean(x))
}

/// Unbiased sample variance (denominator `n-1`); `0.0` for slices of
/// length one.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn variance(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "variance of empty slice");
    if x.len() == 1 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Sample standard deviation.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Median (average of the two central order statistics for even length).
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn median(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "median of empty slice");
    let mut v: Vec<f64> = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median: NaN in input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Empirical quantile with linear interpolation between order statistics
/// (type-7 / the NumPy default). `q` must lie in `[0, 1]`.
///
/// # Errors
///
/// Returns [`LinalgError::EmptyInput`] for empty input and
/// [`LinalgError::DomainError`] for `q` outside `[0,1]`.
///
/// # Example
///
/// ```
/// use poisongame_linalg::stats::quantile;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&x, 0.0).unwrap(), 1.0);
/// assert_eq!(quantile(&x, 1.0).unwrap(), 4.0);
/// assert_eq!(quantile(&x, 0.5).unwrap(), 2.5);
/// ```
pub fn quantile(x: &[f64], q: f64) -> Result<f64, LinalgError> {
    if x.is_empty() {
        return Err(LinalgError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(LinalgError::DomainError {
            what: "q",
            value: q,
        });
    }
    let mut v: Vec<f64> = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in input"));
    let h = q * (v.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Ok(v[lo] + frac * (v[hi] - v[lo]))
}

/// Several quantiles at once (sorts once).
///
/// # Errors
///
/// Same error conditions as [`quantile`].
pub fn quantiles(x: &[f64], qs: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if x.is_empty() {
        return Err(LinalgError::EmptyInput);
    }
    let mut v: Vec<f64> = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantiles: NaN in input"));
    let mut out = Vec::with_capacity(qs.len());
    for &q in qs {
        if !(0.0..=1.0).contains(&q) || q.is_nan() {
            return Err(LinalgError::DomainError {
                what: "q",
                value: q,
            });
        }
        let h = q * (v.len() - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        out.push(v[lo] + frac * (v[hi] - v[lo]));
    }
    Ok(out)
}

/// Fraction of elements strictly greater than `threshold`.
///
/// This is the survival function the game model uses to convert a filter
/// radius into "fraction of points removed".
pub fn fraction_above(x: &[f64], threshold: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().filter(|&&v| v > threshold).count() as f64 / x.len() as f64
}

/// Symmetrically trimmed mean: drop `trim` fraction from each tail
/// (`trim ∈ [0, 0.5)`), average the rest.
///
/// # Errors
///
/// Returns [`LinalgError::EmptyInput`] for empty input and
/// [`LinalgError::DomainError`] for `trim` outside `[0, 0.5)`.
pub fn trimmed_mean(x: &[f64], trim: f64) -> Result<f64, LinalgError> {
    if x.is_empty() {
        return Err(LinalgError::EmptyInput);
    }
    if !(0.0..0.5).contains(&trim) || trim.is_nan() {
        return Err(LinalgError::DomainError {
            what: "trim",
            value: trim,
        });
    }
    let mut v: Vec<f64> = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("trimmed_mean: NaN in input"));
    let k = (v.len() as f64 * trim).floor() as usize;
    let kept = &v[k..v.len() - k];
    // k < len/2 by the domain check, so kept is non-empty.
    Ok(mean(kept))
}

/// Median absolute deviation (raw, not scaled to the normal).
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn median_abs_deviation(x: &[f64]) -> f64 {
    let m = median(x);
    let dev: Vec<f64> = x.iter().map(|v| (v - m).abs()).collect();
    median(&dev)
}

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use poisongame_linalg::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (`0.0` before any observation).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+∞` before any observation).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` before any observation).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&x), 5.0);
        assert!((variance(&x) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&x) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn try_mean_empty() {
        assert_eq!(try_mean(&[]).unwrap_err(), LinalgError::EmptyInput);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_endpoints_and_interp() {
        let x = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&x, 0.0).unwrap(), 10.0);
        assert_eq!(quantile(&x, 1.0).unwrap(), 30.0);
        assert_eq!(quantile(&x, 0.25).unwrap(), 15.0);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
        assert!(quantile(&[1.0], f64::NAN).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn quantiles_matches_singular_calls() {
        let x = [5.0, 1.0, 9.0, 3.0];
        let qs = [0.0, 0.5, 0.9, 1.0];
        let batch = quantiles(&x, &qs).unwrap();
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(batch[i], quantile(&x, q).unwrap());
        }
    }

    #[test]
    fn fraction_above_counts_strictly() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_above(&x, 2.0), 0.5);
        assert_eq!(fraction_above(&x, 0.0), 1.0);
        assert_eq!(fraction_above(&x, 4.0), 0.0);
        assert_eq!(fraction_above(&[], 1.0), 0.0);
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let x = [1.0, 2.0, 3.0, 4.0, 100.0];
        let t = trimmed_mean(&x, 0.2).unwrap();
        assert_eq!(t, 3.0);
        assert_eq!(trimmed_mean(&x, 0.0).unwrap(), mean(&x));
        assert!(trimmed_mean(&x, 0.5).is_err());
        assert!(trimmed_mean(&[], 0.1).is_err());
    }

    #[test]
    fn mad_is_robust() {
        let x = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        assert_eq!(median_abs_deviation(&x), 1.0);
    }

    #[test]
    fn running_stats_matches_batch() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &v in &x {
            s.push(v);
        }
        assert!((s.mean() - mean(&x)).abs() < 1e-12);
        assert!((s.sample_variance() - variance(&x)).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let x = [1.0, 2.0, 3.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        let mut a = RunningStats::new();
        x.iter().for_each(|&v| a.push(v));
        let mut b = RunningStats::new();
        y.iter().for_each(|&v| b.push(v));
        a.merge(&b);

        let mut all = RunningStats::new();
        x.iter().chain(y.iter()).for_each(|&v| all.push(v));
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }
}
