//! The engine shard pool.
//!
//! One [`EvalEngine`] behind one bounded queue serializes every
//! preparation-cache lookup and admission decision through a single
//! dispatcher. The pool splits the engine into N independent shards —
//! each with its own bounded prep cache, bounded admission queue and
//! dispatcher thread — and routes requests by **prep-key affinity**:
//!
//! * A request with a preparation key (everything except `solve`) is
//!   routed to shard `content_hash(key) % N`, so every request for the
//!   same dataset preparation lands on the same shard and PrepCache
//!   locality survives sharding. Eviction pressure on one shard can
//!   never evict another shard's entries.
//! * A request with no preparation key (`solve`) has no locality to
//!   protect; the documented fallback policy is **least-loaded**:
//!   the shard with the shortest queue, ties broken by lowest index.
//!
//! [`ShardPool::resize`] re-splits the pool without dropping in-flight
//! requests: new shards (fresh engines, cold caches) are spawned and
//! swapped in, then the old shards are retired — their dispatchers
//! finish every queued job and exit. Admission and retirement of a
//! shard are serialized through its queue lock, so a job is always
//! either drained by its shard's dispatcher or re-routed to the new
//! pool — never stranded.
//!
//! Responses are pure functions of their request documents, so the
//! shard count (like the worker count) never changes a result; see
//! `tests/sharding.rs` for the pinned byte-identity.
//!
//! Only the *dispatcher* thread is per-shard. The cells of a drained
//! batch fan out across the process-wide worker pool
//! (`poisongame_sim::exec::pool`) with the shard's `workers` setting
//! as a participation cap, so shards share one set of long-lived
//! threads instead of each spawning scoped workers per batch — an
//! idle shard reserves no cores from a busy one.

use crate::server::{Inner, Job};
use crate::telemetry::ShardObs;
use poisongame_sim::engine::EvalEngine;
use poisongame_sim::ExecPolicy;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};

/// Per-shard-instance monotonic counters (reset when a resize replaces
/// the shard).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub admitted: AtomicU64,
    pub completed: AtomicU64,
    pub shed: AtomicU64,
    pub expired: AtomicU64,
    pub failed: AtomicU64,
    pub busy_micros: AtomicU64,
}

/// One engine shard: an independent evaluation engine (own bounded
/// prep cache), a bounded admission queue, and the state its
/// dispatcher thread runs on.
pub(crate) struct Shard {
    pub index: usize,
    pub engine: EvalEngine,
    pub queue: Mutex<VecDeque<Job>>,
    pub queue_cv: Condvar,
    pub queue_capacity: usize,
    /// Set (under the queue lock) when a resize replaces this shard:
    /// the dispatcher drains the backlog and exits, and admission
    /// re-routes to the new pool.
    pub retired: AtomicBool,
    pub counters: ShardCounters,
    /// Registry-backed handles for this shard's label. Resized shards
    /// with the same index reuse the same underlying metrics, so the
    /// exposed counters stay monotone across generations.
    pub obs: ShardObs,
}

impl Shard {
    fn new(index: usize, queue_capacity: usize, engine: EvalEngine) -> Self {
        Self {
            index,
            engine,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity,
            retired: AtomicBool::new(false),
            counters: ShardCounters::default(),
            obs: ShardObs::register(index),
        }
    }

    /// Snapshot of this shard's queue depth (locking; used by routing
    /// and stats).
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("shard queue poisoned").len()
    }
}

/// Outcome of one admission attempt on a single shard.
pub(crate) enum Admission {
    /// Queued; the dispatcher will answer it.
    Queued,
    /// The shard's queue is full; the job is handed back for a `busy`
    /// response.
    Full(Job),
    /// The shard was retired by a concurrent resize before the job
    /// could be queued; the caller must re-route against the current
    /// pool.
    Retired(Job),
}

impl Shard {
    /// Try to queue a job. Admission and retirement are serialized
    /// through the queue lock: a queued job is guaranteed to be
    /// drained by this shard's dispatcher (which only exits on an
    /// empty queue).
    pub fn admit(&self, job: Job) -> Admission {
        let mut queue = self.queue.lock().expect("shard queue poisoned");
        if self.retired.load(Ordering::SeqCst) {
            return Admission::Retired(job);
        }
        if queue.len() >= self.queue_capacity {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Full(job);
        }
        queue.push_back(job);
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.queue_cv.notify_all();
        Admission::Queued
    }

    /// Retire this shard (under its queue lock) and wake its
    /// dispatcher so it drains and exits.
    fn retire(&self) {
        let _queue = self.queue.lock().expect("shard queue poisoned");
        self.retired.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }
}

/// The pool: the current shard set behind a read-mostly lock, plus the
/// dispatcher thread handles of every shard generation (current and
/// retired — all joined at shutdown).
pub(crate) struct ShardPool {
    shards: RwLock<Arc<Vec<Arc<Shard>>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Dispatchers that have not exited yet (current + still-draining
    /// retired ones). The multiplexer waits for zero before finishing
    /// a drain.
    active_dispatchers: AtomicUsize,
    queue_capacity: usize,
    cache_capacity: Option<usize>,
    eval_policy: ExecPolicy,
}

impl ShardPool {
    /// Build the pool's state with `shards` cold shards. Dispatchers
    /// are not running yet — call [`ShardPool::spawn_dispatchers`]
    /// once the shared server state exists.
    pub fn new(
        shards: usize,
        queue_capacity: usize,
        cache_capacity: Option<usize>,
        eval_policy: ExecPolicy,
    ) -> Self {
        let pool = Self {
            shards: RwLock::new(Arc::new(Vec::new())),
            handles: Mutex::new(Vec::new()),
            active_dispatchers: AtomicUsize::new(0),
            queue_capacity,
            cache_capacity,
            eval_policy,
        };
        *pool.shards.write().expect("shard set poisoned") = Arc::new(pool.build_shards(shards));
        pool
    }

    fn build_shards(&self, n: usize) -> Vec<Arc<Shard>> {
        (0..n)
            .map(|index| {
                let engine = match self.cache_capacity {
                    Some(capacity) => {
                        EvalEngine::with_policy(self.eval_policy).bound_cache(capacity)
                    }
                    None => EvalEngine::with_policy(self.eval_policy),
                };
                Arc::new(Shard::new(index, self.queue_capacity, engine))
            })
            .collect()
    }

    /// The current shard set (cheap `Arc` snapshot).
    pub fn current(&self) -> Arc<Vec<Arc<Shard>>> {
        Arc::clone(&self.shards.read().expect("shard set poisoned"))
    }

    /// Dispatchers still running (current plus retired-but-draining).
    pub fn active_dispatchers(&self) -> usize {
        self.active_dispatchers.load(Ordering::SeqCst)
    }

    /// Spawn one dispatcher thread per current shard.
    pub fn spawn_dispatchers(&self, inner: &Arc<Inner>) {
        let shards = self.current();
        let mut handles = self.handles.lock().expect("dispatcher handles poisoned");
        for shard in shards.iter() {
            handles.push(self.spawn_one(inner, shard));
        }
    }

    fn spawn_one(&self, inner: &Arc<Inner>, shard: &Arc<Shard>) -> JoinHandle<()> {
        self.active_dispatchers.fetch_add(1, Ordering::SeqCst);
        let inner = Arc::clone(inner);
        let shard = Arc::clone(shard);
        thread::spawn(move || {
            crate::server::dispatch_loop(&inner, &shard);
            inner.pool.active_dispatchers.fetch_sub(1, Ordering::SeqCst);
            // A drain may be waiting on the dispatcher count.
            inner.wake_mux();
        })
    }

    /// Re-split the pool to `n` shards: spawn the new generation, swap
    /// it in, retire the old one. Retired dispatchers finish every
    /// queued job before exiting, so no in-flight request is dropped;
    /// their caches are released with them (a resize to the same count
    /// is therefore a rebalance with fresh caches).
    pub fn resize(&self, inner: &Arc<Inner>, n: usize) {
        let fresh = self.build_shards(n);
        {
            let mut handles = self.handles.lock().expect("dispatcher handles poisoned");
            for shard in &fresh {
                handles.push(self.spawn_one(inner, shard));
            }
        }
        let old = {
            let mut shards = self.shards.write().expect("shard set poisoned");
            std::mem::replace(&mut *shards, Arc::new(fresh))
        };
        for shard in old.iter() {
            shard.retire();
        }
        crate::telemetry::note_resize(old.len(), n);
    }

    /// Wake every current shard's dispatcher (used when the global
    /// shutdown flag flips).
    pub fn notify_all(&self) {
        for shard in self.current().iter() {
            let _queue = shard.queue.lock().expect("shard queue poisoned");
            shard.queue_cv.notify_all();
        }
    }

    /// Join every dispatcher thread ever spawned (call after the
    /// shutdown drain).
    pub fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = self
            .handles
            .lock()
            .expect("dispatcher handles poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}
