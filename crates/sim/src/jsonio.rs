//! Minimal JSON reader/writer backing the serializable scenario API.
//!
//! The workspace builds offline, so `serde_json` is unavailable and the
//! `serde` dependency is a marker-trait shim (see `shims/README.md`).
//! Scenario specs still need a real wire format — experiment grids are
//! authored as JSON strings and shipped between tools — so this module
//! provides the small value model those specs serialize through:
//! [`Json::parse`] (strict recursive descent) and [`Json::render`]
//! (deterministic output, object keys in insertion order).
//!
//! Numbers are carried as `f64`; integers round-trip exactly up to
//! 2^53, which covers every seed and count the experiment configs use.
//!
//! # Example
//!
//! ```
//! use poisongame_sim::jsonio::Json;
//!
//! let v = Json::parse(r#"{"type": "boundary", "weights": [0.5, 0.5]}"#).unwrap();
//! assert_eq!(v.get("type").and_then(Json::as_str), Some("boundary"));
//! assert_eq!(Json::parse(&v.render()).unwrap(), v);
//! ```

use crate::error::SimError;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (insertion order on build,
    /// source order on parse).
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax error with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the offending byte offset on any
    /// syntax error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }

    /// Render to a compact JSON string. Output is deterministic and
    /// re-parses to an equal value — except non-finite numbers, which
    /// JSON cannot represent and which render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Look up a key in an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number with an exact integral value in `[0, 2^53]`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from key/value pairs (insertion order kept).
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Build an array of numbers.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", byte as char)))
    }
}

/// Containers may nest this deep before the parser refuses — the
/// recursion otherwise tracks input size, and a pathological document
/// (`"[[[[…"`) would overflow the stack instead of returning an error.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting deeper than 128 levels"));
    }
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(*pos, &format!("unexpected byte `{}`", *c as char))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    let value: f64 = text
        .parse()
        .map_err(|_| err(start, &format!("invalid number `{text}`")))?;
    if !value.is_finite() {
        return Err(err(start, "number out of range"));
    }
    Ok(Json::Num(value))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates are rejected rather than paired: the
                        // scenario schema never emits them.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "surrogate \\u escape unsupported"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through verbatim).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty rest");
                if (ch as u32) < 0x20 {
                    return Err(err(*pos, "unescaped control character"));
                }
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key_offset = *pos;
        let key = parse_string(bytes, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(err(key_offset, &format!("duplicate key `{key}`")));
        }
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

fn write_number(x: f64, out: &mut String) {
    // JSON has no NaN/Infinity tokens; emit `null` (the JavaScript
    // convention) so the document stays parseable and a typed reader
    // fails with a clear "must be a number" instead of a syntax error.
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Integral values print without a fraction so seeds and counts stay
    // readable; Rust's shortest-round-trip float formatting covers the
    // rest.
    if x.fract() == 0.0 && x.abs() <= (1u64 << 53) as f64 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

// ---------------------------------------------------------------------------
// Spec-field helpers shared by every JSON-described config in this
// crate (`pipeline::ExperimentConfig`, the `scenario` specs). They
// were once hand-rolled per call site; centralizing them keeps the
// error wording and the unknown-key policy identical everywhere.
// ---------------------------------------------------------------------------

/// A required numeric field.
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the value is not a number.
pub fn require_num(value: &Json, what: &str) -> Result<f64, SimError> {
    value
        .as_f64()
        .ok_or_else(|| SimError::Spec(format!("`{what}` must be a number")))
}

/// A required non-negative integer field.
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the value is not a non-negative
/// integer.
pub fn require_u64(value: &Json, what: &str) -> Result<u64, SimError> {
    value
        .as_u64()
        .ok_or_else(|| SimError::Spec(format!("`{what}` must be a non-negative integer")))
}

/// A required boolean field.
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the value is not a boolean.
pub fn require_bool(value: &Json, what: &str) -> Result<bool, SimError> {
    value
        .as_bool()
        .ok_or_else(|| SimError::Spec(format!("`{what}` must be a boolean")))
}

/// The `"type"` tag of a spec object.
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the tag is absent or not a string.
pub fn spec_type<'a>(value: &'a Json, what: &str) -> Result<&'a str, SimError> {
    value
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| SimError::Spec(format!("{what} spec needs a string `type` field")))
}

/// Reject keys outside `allowed` on a spec object: a misspelled
/// parameter would otherwise be silently dropped and the experiment
/// would run a different configuration than the author wrote.
///
/// # Errors
///
/// Returns [`SimError::Spec`] naming the first unknown key.
pub fn check_keys(value: &Json, what: &str, allowed: &[&str]) -> Result<(), SimError> {
    if let Json::Obj(fields) = value {
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(SimError::Spec(format!("unknown {what} key `{key}`")));
            }
        }
    }
    Ok(())
}

/// A required array of numbers under `key`.
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the key is absent, not an array, or
/// holds a non-number.
pub fn num_array(value: &Json, key: &str) -> Result<Vec<f64>, SimError> {
    value
        .get(key)
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| SimError::Spec(format!("`{key}` must hold numbers")))
                })
                .collect()
        })
        .transpose()?
        .ok_or_else(|| SimError::Spec(format!("missing numeric array `{key}`")))
}

/// Render an object document from *borrowed* values, bypassing the
/// owned [`Json`] tree: for hot paths that wrap a large payload in a
/// small envelope (a serving response around a multi-megabyte result),
/// where `Json::obj` would force a deep clone of the payload. Output
/// is byte-identical to `Json::Obj` of the same fields.
pub fn render_object(fields: &[(&str, &Json)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(key, &mut out);
        out.push(':');
        value.write(&mut out);
    }
    out.push('}');
    out
}

/// Render `(x, y)` sample pairs as `[[x, y], ...]` — the shared wire
/// shape for curve samples (see [`num_pairs`]).
pub fn num_pairs_to_json(pairs: &[(f64, f64)]) -> Json {
    Json::Arr(pairs.iter().map(|&(x, y)| Json::nums(&[x, y])).collect())
}

/// Read `[[x, y], ...]` sample pairs written by [`num_pairs_to_json`].
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the value is not an array of
/// two-number arrays.
pub fn num_pairs(value: &Json, what: &str) -> Result<Vec<(f64, f64)>, SimError> {
    value
        .as_array()
        .ok_or_else(|| SimError::Spec(format!("`{what}` must be an array of [x, y] pairs")))?
        .iter()
        .map(|pair| match pair.as_array() {
            Some([x, y]) => Ok((require_num(x, what)?, require_num(y, what)?)),
            _ => Err(SimError::Spec(format!("`{what}` must hold [x, y] pairs"))),
        })
        .collect()
}

/// Render a `u64` that may exceed 2^53: a JSON number while exact, a
/// decimal string beyond (JSON numbers are `f64` on this wire). The
/// counterpart of [`big_u64`]; used for seeds and derived cell seeds,
/// which span the full 64-bit range.
pub fn big_u64_to_json(value: u64) -> Json {
    if value <= (1u64 << 53) {
        Json::Num(value as f64)
    } else {
        Json::Str(value.to_string())
    }
}

/// Read a `u64` written by [`big_u64_to_json`] (number or decimal
/// string form).
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the value is neither an exact
/// non-negative integer nor a decimal string.
pub fn big_u64(value: &Json, what: &str) -> Result<u64, SimError> {
    value
        .as_u64()
        .or_else(|| value.as_str().and_then(|s| s.parse().ok()))
        .ok_or_else(|| {
            SimError::Spec(format!(
                "`{what}` must be a non-negative integer (string form for > 2^53)"
            ))
        })
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3.5", "1e-4", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": null, "d": true}"#;
        let v = Json::parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // Compact output: no spaces.
        assert!(!rendered.contains(' '));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"k": 5, "s": "t", "a": [1], "b": false}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(5.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert!(v.get("missing").is_none());
        assert!(Json::Num(1.5).as_u64().is_none());
        assert!(Json::Num(-1.0).as_u64().is_none());
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            let e = Json::parse(bad).unwrap_err();
            assert!(!e.message.is_empty(), "{bad}");
            assert!(e.to_string().contains("byte"), "{bad}");
        }
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // Would previously crash the process with a stack overflow.
        let deep = "[".repeat(200_000);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        // Nesting at the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(Json::parse(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn escapes_decode_and_encode() {
        let v = Json::parse(r#""a\"b\\c\n\tA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tA"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn control_characters_must_be_escaped() {
        assert!(Json::parse("\"a\nb\"").is_err());
        assert_eq!(Json::Str("a\u{1}b".into()).render(), "\"a\\u0001b\"");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(20190607.0).render(), "20190607");
        assert_eq!(Json::Num(0.15).render(), "0.15");
        let seed = 0xD37E_2214u64;
        assert_eq!(
            Json::parse(&Json::Num(seed as f64).render())
                .unwrap()
                .as_u64(),
            Some(seed)
        );
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::obj(vec![("w", Json::Num(x))]).render();
            assert_eq!(doc, r#"{"w":null}"#);
            // Still valid JSON; a typed reader sees Null, not a number.
            assert_eq!(Json::parse(&doc).unwrap().get("w"), Some(&Json::Null));
        }
    }

    #[test]
    fn render_object_matches_owned_rendering() {
        let payload = Json::parse(r#"{"cells": [1, 2, {"x": "y\n"}]}"#).unwrap();
        let borrowed = render_object(&[
            ("id", &Json::Num(7.0)),
            ("ok", &Json::Bool(true)),
            ("result", &payload),
        ]);
        let owned = Json::obj(vec![
            ("id", Json::Num(7.0)),
            ("ok", Json::Bool(true)),
            ("result", payload),
        ])
        .render();
        assert_eq!(borrowed, owned);
        assert_eq!(render_object(&[]), "{}");
    }

    #[test]
    fn num_pairs_round_trip_and_reject() {
        let pairs = vec![(0.0, 2.0e-4), (0.3, -1.5e-5)];
        let j = num_pairs_to_json(&pairs);
        assert_eq!(num_pairs(&j, "effect").unwrap(), pairs);
        assert_eq!(
            num_pairs(&Json::parse(&j.render()).unwrap(), "effect").unwrap(),
            pairs
        );
        assert!(num_pairs(&Json::Num(1.0), "effect").is_err());
        assert!(num_pairs(&Json::parse("[[1,2,3]]").unwrap(), "effect").is_err());
        assert!(num_pairs(&Json::parse("[[1,\"x\"]]").unwrap(), "effect").is_err());
    }

    #[test]
    fn big_u64_round_trips_across_the_2_53_boundary() {
        for v in [0u64, 42, 1 << 53, (1 << 53) + 1, u64::MAX] {
            let j = big_u64_to_json(v);
            assert_eq!(big_u64(&j, "seed").unwrap(), v, "{v}");
            // Also survives an actual wire round-trip.
            let reparsed = Json::parse(&j.render()).unwrap();
            assert_eq!(big_u64(&reparsed, "seed").unwrap(), v, "{v}");
        }
        assert!(matches!(big_u64_to_json(1 << 53), Json::Num(_)));
        assert!(matches!(big_u64_to_json((1 << 53) + 1), Json::Str(_)));
        assert!(big_u64(&Json::Num(-1.0), "seed").is_err());
        assert!(big_u64(&Json::str("not a number"), "seed").is_err());
        assert!(big_u64(&Json::Null, "seed").is_err());
    }

    #[test]
    fn builders_compose() {
        let v = Json::obj(vec![
            ("type", Json::str("boundary")),
            ("weights", Json::nums(&[0.5, 0.5])),
        ]);
        assert_eq!(v.render(), r#"{"type":"boundary","weights":[0.5,0.5]}"#);
    }

    #[test]
    fn spec_helpers_accept_and_reject() {
        let v =
            Json::parse(r#"{"type": "knn", "k": 5, "frac": 0.3, "on": true, "ws": [0.5, 0.5]}"#)
                .unwrap();
        assert_eq!(spec_type(&v, "defense").unwrap(), "knn");
        assert_eq!(require_num(v.get("frac").unwrap(), "frac").unwrap(), 0.3);
        assert_eq!(require_u64(v.get("k").unwrap(), "k").unwrap(), 5);
        assert!(require_bool(v.get("on").unwrap(), "on").unwrap());
        assert_eq!(num_array(&v, "ws").unwrap(), vec![0.5, 0.5]);
        assert!(check_keys(&v, "spec", &["type", "k", "frac", "on", "ws"]).is_ok());

        let err = check_keys(&v, "spec", &["type"]).unwrap_err();
        assert!(err.to_string().contains("unknown spec key"), "{err}");
        assert!(require_num(v.get("type").unwrap(), "type").is_err());
        assert!(require_u64(v.get("frac").unwrap(), "frac").is_err());
        assert!(require_bool(v.get("k").unwrap(), "k").is_err());
        assert!(num_array(&v, "missing").is_err());
        assert!(num_array(&v, "type").is_err());
        assert!(spec_type(&Json::Num(1.0), "attack").is_err());
    }
}
