//! File-source preparation: the out-of-core path is pinned
//! bit-identical to whole-file preparation, the absent-file fallback
//! reproduces the synthetic arm exactly, and corruption is a
//! structured error — never a silent fallback.

use poisongame_data::csv::to_csv;
use poisongame_data::synth::{spambase_like, SpambaseConfig};
use poisongame_io::checksum_bytes;
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_sim::error::SimError;
use poisongame_sim::pipeline::{prepare_data, DataSource};
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// A fresh temp directory for one test (process id + test name keeps
/// parallel test binaries apart).
fn temp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pg-ingest-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Synthetic Spambase-layout CSV on disk, plus its checksum.
fn write_dataset(test: &str, rows: usize) -> (PathBuf, u64) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xD5);
    let data = spambase_like(
        &SpambaseConfig {
            rows,
            ..SpambaseConfig::default()
        },
        &mut rng,
    );
    let text = to_csv(&data);
    let path = temp_dir(test).join("spam.csv");
    std::fs::write(&path, &text).unwrap();
    (path, checksum_bytes(text.as_bytes()))
}

fn file_source(path: &Path, checksum: Option<u64>, chunk_rows: Option<usize>) -> DataSource {
    DataSource::File {
        path: path.display().to_string(),
        checksum,
        format: "spambase".to_string(),
        chunk_rows,
        max_inflight_chunks: Some(2),
    }
}

#[test]
fn chunked_preparation_is_bit_identical_to_whole_file() {
    let (path, sum) = write_dataset("bitident", 400);
    let whole = prepare_data(&file_source(&path, Some(sum), None), 20190607, 0.3).unwrap();
    // Chunk sizes that divide the row count, don't, and degenerate to
    // row-at-a-time — all must reproduce the whole-file bytes.
    for chunk_rows in [1, 64, 100, 117, 4096] {
        let chunked = prepare_data(
            &file_source(&path, Some(sum), Some(chunk_rows)),
            20190607,
            0.3,
        )
        .unwrap();
        assert_eq!(chunked.scaler, whole.scaler, "chunk_rows {chunk_rows}");
        assert_eq!(chunked.train.labels(), whole.train.labels());
        assert_eq!(chunked.test.labels(), whole.test.labels());
        for (split_c, split_w) in [(&chunked.train, &whole.train), (&chunked.test, &whole.test)] {
            for (a, b) in split_c
                .features()
                .as_slice()
                .iter()
                .zip(split_w.features().as_slice())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk_rows {chunk_rows}");
            }
        }
        assert_eq!(chunked.content_digest(), whole.content_digest());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_source_matches_csv_text_source() {
    // A present file preps exactly like the same bytes inlined as a
    // csv_text source: the file layer adds no arithmetic.
    let (path, sum) = write_dataset("csvtext", 300);
    let text = std::fs::read_to_string(&path).unwrap();
    let from_file = prepare_data(&file_source(&path, Some(sum), None), 7, 0.3).unwrap();
    let from_text = prepare_data(&DataSource::CsvText { text }, 7, 0.3).unwrap();
    assert_eq!(from_file, from_text);
    assert_eq!(from_file.content_digest(), from_text.content_digest());
    std::fs::remove_file(&path).ok();
}

#[test]
fn absent_file_falls_back_to_synthetic_exactly() {
    let missing = temp_dir("fallback").join("never-downloaded.csv");
    // Pinned checksum on an absent file is still a clean fallback —
    // there is nothing to validate, and CI must stay green offline.
    let fallback = prepare_data(&file_source(&missing, Some(42), None), 11, 0.3).unwrap();
    let synthetic = prepare_data(&DataSource::SyntheticSpambase { rows: 4601 }, 11, 0.3).unwrap();
    assert_eq!(fallback, synthetic);
    // The chunked knobs don't change the fallback either.
    let chunked = prepare_data(&file_source(&missing, None, Some(256)), 11, 0.3).unwrap();
    assert_eq!(chunked, synthetic);
}

#[test]
fn checksum_mismatch_is_an_error_not_a_fallback() {
    let (path, sum) = write_dataset("mismatch", 120);
    for chunk_rows in [None, Some(32)] {
        match prepare_data(&file_source(&path, Some(sum ^ 1), chunk_rows), 3, 0.3) {
            Err(SimError::Ingest(poisongame_io::IngestError::ChecksumMismatch {
                expected,
                actual,
                ..
            })) => {
                assert_eq!(expected, sum ^ 1);
                assert_eq!(actual, sum);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_rows_are_structured_errors() {
    let dir = temp_dir("corrupt");
    let path = dir.join("bad.csv");
    std::fs::write(&path, "1,2,1\n3,nope,0\n").unwrap();
    let source = DataSource::File {
        path: path.display().to_string(),
        checksum: None,
        format: "csv".to_string(),
        chunk_rows: Some(16),
        max_inflight_chunks: None,
    };
    match prepare_data(&source, 3, 0.3) {
        Err(SimError::Ingest(poisongame_io::IngestError::BadFloat { line: 2, .. })) => {}
        other => panic!("expected BadFloat at line 2, got {other:?}"),
    }
    // Truncated final row.
    std::fs::write(&path, "1,2,1\n3,4,0").unwrap();
    assert!(matches!(
        prepare_data(&source, 3, 0.3),
        Err(SimError::Ingest(
            poisongame_io::IngestError::UnterminatedRow { line: 2 }
        ))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn ragged_arity_change_at_chunk_boundary_is_bad_arity() {
    // Width flips exactly at a chunk boundary, so with the
    // width-inferring `csv` format every chunk in the parse wave is
    // internally consistent — only the cross-chunk width check can
    // catch the raggedness. Both directions must be a structured
    // error: a wider second chunk must not panic the scatter loop, a
    // narrower one must not scatter misaligned rows silently.
    let dir = temp_dir("ragged");
    let path = dir.join("ragged.csv");
    for (text, expected, found) in [
        ("1,2,1\n3,4,0\n1,2,3,1\n4,5,6,0\n", 3, 4),
        ("1,2,3,1\n4,5,6,0\n1,2,1\n3,4,0\n", 4, 3),
    ] {
        std::fs::write(&path, text).unwrap();
        let source = DataSource::File {
            path: path.display().to_string(),
            checksum: None,
            format: "csv".to_string(),
            chunk_rows: Some(2),
            max_inflight_chunks: Some(4),
        };
        match prepare_data(&source, 3, 0.3) {
            Err(SimError::Ingest(poisongame_io::IngestError::BadArity {
                line: 3,
                expected: e,
                found: f,
            })) => {
                assert_eq!((e, f), (expected, found), "{text:?}");
            }
            other => panic!("{text:?}: expected BadArity at line 3, got {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn degenerate_knobs_are_rejected() {
    let (path, _) = write_dataset("knobs", 40);
    assert!(matches!(
        prepare_data(&file_source(&path, None, Some(0)), 3, 0.3),
        Err(SimError::Ingest(poisongame_io::IngestError::ZeroChunkRows))
    ));
    let source = DataSource::File {
        path: path.display().to_string(),
        checksum: None,
        format: "spambase".to_string(),
        chunk_rows: Some(8),
        max_inflight_chunks: Some(0),
    };
    assert!(matches!(
        prepare_data(&source, 3, 0.3),
        Err(SimError::Ingest(
            poisongame_io::IngestError::ZeroInflightChunks
        ))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_source_json_round_trips() {
    use poisongame_sim::pipeline::ExperimentConfig;
    let (path, sum) = write_dataset("json", 40);
    let config = ExperimentConfig {
        source: file_source(&path, Some(sum), Some(128)),
        ..ExperimentConfig::paper()
    };
    let back = ExperimentConfig::from_json_str(&config.to_json_string()).unwrap();
    assert_eq!(back, config);
    // Optional fields default: no checksum, no chunking, spambase
    // format.
    let minimal = format!(
        r#"{{"source":{{"type":"file","path":"{0}"}}}}"#,
        "data/x.csv"
    );
    let parsed = ExperimentConfig::from_json_str(&minimal).unwrap();
    assert_eq!(
        parsed.source,
        DataSource::File {
            path: "data/x.csv".to_string(),
            checksum: None,
            format: "spambase".to_string(),
            chunk_rows: None,
            max_inflight_chunks: None,
        }
    );
    // Degenerate knobs and unknown formats die at parse time.
    for bad in [
        r#"{"source":{"type":"file","path":"x.csv","chunk_rows":0}}"#,
        r#"{"source":{"type":"file","path":"x.csv","max_inflight_chunks":0}}"#,
        r#"{"source":{"type":"file","path":"x.csv","format":"parquet"}}"#,
        r#"{"source":{"type":"file"}}"#,
    ] {
        assert!(
            matches!(ExperimentConfig::from_json_str(bad), Err(SimError::Spec(_))),
            "{bad}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn prep_key_ignores_chunking_knobs() {
    use poisongame_sim::engine::prep_key;
    let a = prep_key(
        &file_source(&PathBuf::from("data/spam.csv"), Some(9), None),
        1,
        0.3,
    );
    let b = prep_key(
        &file_source(&PathBuf::from("data/spam.csv"), Some(9), Some(512)),
        1,
        0.3,
    );
    // Chunked and whole-file produce bit-identical preparations, so
    // they must share a cache entry.
    assert_eq!(a, b);
    assert_eq!(a.content_hash(), b.content_hash());
    let other = prep_key(
        &file_source(&PathBuf::from("data/other.csv"), Some(9), None),
        1,
        0.3,
    );
    assert_ne!(a, other);
    let no_sum = prep_key(
        &file_source(&PathBuf::from("data/spam.csv"), None, None),
        1,
        0.3,
    );
    assert_ne!(a, no_sum);
}
