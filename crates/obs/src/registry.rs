//! Named metric registry: counters, gauges and histograms, with
//! Prometheus-style label sets and mergeable snapshots.

use crate::hist::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotone counter (relaxed atomic `u64`).
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Create a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if cfg!(feature = "noop") {
            let _ = n;
            return;
        }
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge (relaxed atomic `i64`).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Create a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        if cfg!(feature = "noop") {
            let _ = v;
            return;
        }
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if cfg!(feature = "noop") {
            let _ = delta;
            return;
        }
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Settable gauge.
    Gauge,
    /// Log-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// Lowercase name used on the wire and in Prometheus `# TYPE`.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    /// Parse the wire name back. Returns `None` for unknown kinds.
    pub fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// An owned label set: `(key, value)` pairs in registration order.
pub type Labels = Vec<(String, String)>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    metrics: Vec<(Labels, Metric)>,
}

/// A named home for metrics.
///
/// Registration is get-or-register: asking for the same family name
/// and label set again returns the *same* underlying metric, so call
/// sites can register eagerly without coordinating. Registering a
/// name that already exists with a different kind panics — that is a
/// programming error, not a runtime condition.
///
/// Registration takes a mutex and scans; it is meant to happen once
/// per call site (cache the returned `Arc`), not per observation.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry {
            families: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide registry every tier records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn with_family<T>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        get: impl Fn(&Metric) -> Option<T>,
        make: impl FnOnce() -> (Metric, T),
    ) -> T {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric family {name:?} registered as {} and {}",
                    f.kind.as_str(),
                    kind.as_str()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    metrics: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, metric)) = family
            .metrics
            .iter()
            .find(|(existing, _)| label_eq(existing, labels))
        {
            return get(metric).expect("family kind already checked");
        }
        let owned: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let (metric, handle) = make();
        family.metrics.push((owned, metric));
        handle
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.with_family(
            name,
            help,
            MetricKind::Counter,
            labels,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Metric::Counter(Arc::clone(&c)), c)
            },
        )
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.with_family(
            name,
            help,
            MetricKind::Gauge,
            labels,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Metric::Gauge(Arc::clone(&g)), g)
            },
        )
    }

    /// Get or register a histogram.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.with_family(
            name,
            help,
            MetricKind::Histogram,
            labels,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (Metric::Histogram(Arc::clone(&h)), h)
            },
        )
    }

    /// Copy the current value of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        RegistrySnapshot {
            families: families
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    metrics: f
                        .metrics
                        .iter()
                        .map(|(labels, metric)| MetricSnapshot {
                            labels: labels.clone(),
                            value: match metric {
                                Metric::Counter(c) => MetricValue::Counter(c.get()),
                                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn label_eq(owned: &[(String, String)], borrowed: &[(&str, &str)]) -> bool {
    owned.len() == borrowed.len()
        && owned
            .iter()
            .zip(borrowed.iter())
            .all(|((ok, ov), (bk, bv))| ok == bk && ov == bv)
}

/// Point-in-time value of one labeled metric.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// The metric's label set.
    pub labels: Labels,
    /// The captured value.
    pub value: MetricValue,
}

/// Captured value of a metric, by kind.
///
/// The histogram variant inlines its ~0.5 KiB bucket array rather
/// than boxing it: registries hold tens of metrics, snapshots are
/// transient, and unboxed access keeps the read path allocation-free.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram totals.
    Histogram(HistogramSnapshot),
}

/// Point-in-time copy of a metric family.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnapshot {
    /// Family name (Prometheus metric name).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// One entry per registered label set.
    pub metrics: Vec<MetricSnapshot>,
}

/// Point-in-time copy of a whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// All families, in registration order.
    pub families: Vec<FamilySnapshot>,
}

impl RegistrySnapshot {
    /// Find a family by name.
    pub fn find(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of all counter values in a family (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.find(name)
            .map(|f| {
                f.metrics
                    .iter()
                    .filter_map(|m| match &m.value {
                        MetricValue::Counter(v) => Some(*v),
                        _ => None,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }
}

// Value-asserting tests are meaningless with recording compiled out.
#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", &[("shard", "0")]);
        let b = r.counter("x_total", "help", &[("shard", "0")]);
        let c = r.counter("x_total", "help", &[("shard", "1")]);
        a.inc();
        b.add(2);
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(c.get(), 1);
        let snap = r.snapshot();
        let fam = snap.find("x_total").expect("registered");
        assert_eq!(fam.metrics.len(), 2);
        assert_eq!(snap.counter_total("x_total"), 4);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("y", "help", &[]);
        let _ = r.gauge("y", "help", &[]);
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let r = Registry::new();
        r.counter("c_total", "c", &[]).add(7);
        r.gauge("g", "g", &[]).set(-3);
        r.histogram("h_nanos", "h", &[]).record(100);
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("c_total"), 7);
        match &snap.find("g").unwrap().metrics[0].value {
            MetricValue::Gauge(v) => assert_eq!(*v, -3),
            other => panic!("wrong kind: {other:?}"),
        }
        match &snap.find("h_nanos").unwrap().metrics[0].value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 100);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
