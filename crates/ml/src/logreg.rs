//! L2-regularized logistic regression trained by SGD.
//!
//! Used as an ablation baseline for the victim model: the game-theoretic
//! defense does not depend on the SVM specifically, only on the induced
//! accuracy curves.

use crate::error::MlError;
use crate::kernel::BatchScratch;
use crate::loss;
use crate::model::{
    check_trainable, check_warm_start, Classifier, FitKernel, LinearState, TrainConfig,
};
use poisongame_data::DataView;
use poisongame_linalg::rng::{shuffled_indices, Xoshiro256StarStar};
use poisongame_linalg::vector;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Binary logistic regression with L2 regularization.
///
/// # Example
///
/// ```
/// use poisongame_data::synth::gaussian_blobs;
/// use poisongame_linalg::Xoshiro256StarStar;
/// use poisongame_ml::{logreg::LogisticRegression, Classifier, TrainConfig};
/// use rand::SeedableRng;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(3);
/// let data = gaussian_blobs(80, 2, 3.0, 0.5, &mut rng);
/// let mut model = LogisticRegression::new(TrainConfig { epochs: 60, ..TrainConfig::default() });
/// model.fit(&data).unwrap();
/// assert!(model.accuracy_on(&data) > 0.95);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    config: TrainConfig,
    weights: Option<Vec<f64>>,
    bias: f64,
}

impl LogisticRegression {
    /// Unfitted model with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            weights: None,
            bias: 0.0,
        }
    }

    /// Unfitted model with defaults.
    pub fn with_defaults() -> Self {
        Self::new(TrainConfig::default())
    }

    /// Fitted weights, if trained.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicted probability of the positive class.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::decision_function`].
    pub fn predict_proba(&self, x: &[f64]) -> Result<f64, MlError> {
        Ok(loss::sigmoid(self.decision_function(x)?))
    }

    /// The shared SGD loop: cold starts pass `init = None` (weights at
    /// the origin — the historical path, bit for bit), warm starts the
    /// neighbouring cell's state.
    fn fit_impl(&mut self, data: &dyn DataView, init: Option<&LinearState>) -> Result<(), MlError> {
        self.config.validate()?;
        check_trainable(data)?;

        let dim = data.dim();
        let n = data.len();
        let (mut w, mut b) = match init {
            Some(state) => {
                check_warm_start(state, dim)?;
                (state.weights.clone(), state.bias)
            }
            None => (vec![0.0; dim], 0.0),
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(self.config.seed);
        let mut t: u64 = 0;
        let mut scratch = match self.config.kernel {
            FitKernel::Minibatch { batch } => Some((batch, BatchScratch::new(dim, batch.min(n)))),
            FitKernel::RowSgd => None,
        };

        for epoch in 0..self.config.epochs {
            let order = shuffled_indices(n, &mut rng);
            match scratch.as_mut() {
                None => {
                    for &i in &order {
                        t += 1;
                        let eta = self.config.schedule.rate(t);
                        let x = data.point(i);
                        let y = data.label(i).to_signed();
                        let margin = y * (vector::dot(&w, x) + b);
                        // dL/dw = logistic_grad(margin) * y * x + lambda * w
                        let g = loss::logistic_grad(margin) * y;
                        let shrink = 1.0 - eta * self.config.lambda;
                        if shrink > 0.0 {
                            vector::scale(shrink, &mut w);
                        }
                        vector::axpy(-eta * g, x, &mut w);
                        if self.config.fit_bias {
                            b -= eta * g;
                        }
                    }
                }
                Some((batch, scratch)) => {
                    // One schedule step per batch; every row contributes
                    // its logistic gradient, averaged over the batch.
                    for chunk in order.chunks(*batch) {
                        t += 1;
                        let eta = self.config.schedule.rate(t);
                        scratch.gather(data, chunk);
                        scratch.compute_margins(&w, b);
                        let blen = chunk.len() as f64;
                        scratch.picked.clear();
                        scratch.coeffs.clear();
                        let mut grad_sum = 0.0;
                        for j in 0..chunk.len() {
                            let g = loss::logistic_grad(scratch.margins[j]) * scratch.labels[j];
                            scratch.picked.push(j);
                            scratch.coeffs.push(-eta * g / blen);
                            grad_sum += g;
                        }
                        let shrink = 1.0 - eta * self.config.lambda;
                        scratch.apply(if shrink > 0.0 { shrink } else { 1.0 }, &mut w);
                        if self.config.fit_bias {
                            b -= eta * grad_sum / blen;
                        }
                    }
                }
            }
            if !vector::all_finite(&w) || !b.is_finite() {
                return Err(MlError::Diverged { epoch });
            }
        }

        self.weights = Some(w);
        self.bias = if self.config.fit_bias { b } else { 0.0 };
        Ok(())
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &dyn DataView) -> Result<(), MlError> {
        self.fit_impl(data, None)
    }

    fn fit_from(&mut self, data: &dyn DataView, init: &LinearState) -> Result<(), MlError> {
        self.fit_impl(data, Some(init))
    }

    fn linear_state(&self) -> Option<LinearState> {
        self.weights.as_ref().map(|w| LinearState {
            weights: w.clone(),
            bias: self.bias,
        })
    }

    fn decision_function(&self, x: &[f64]) -> Result<f64, MlError> {
        let w = self.weights.as_ref().ok_or(MlError::NotFitted)?;
        if x.len() != w.len() {
            return Err(MlError::DimensionMismatch {
                expected: w.len(),
                found: x.len(),
            });
        }
        Ok(vector::dot(w, x) + self.bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_data::synth::gaussian_blobs;
    use poisongame_data::Dataset;

    fn blobs(seed: u64) -> Dataset {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        gaussian_blobs(100, 3, 3.0, 0.6, &mut rng)
    }

    #[test]
    fn learns_separable_data() {
        let data = blobs(21);
        let mut m = LogisticRegression::new(TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        });
        m.fit(&data).unwrap();
        assert!(m.accuracy_on(&data) > 0.97);
    }

    #[test]
    fn probabilities_are_calibrated_to_side() {
        let data = blobs(22);
        let mut m = LogisticRegression::new(TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        });
        m.fit(&data).unwrap();
        for (x, y) in data.iter().take(30) {
            let p = m.predict_proba(x).unwrap();
            assert!((0.0..=1.0).contains(&p));
            if y == poisongame_data::Label::Positive && m.predict(x).unwrap() == y {
                assert!(p > 0.5);
            }
        }
    }

    #[test]
    fn unfitted_errors() {
        let m = LogisticRegression::with_defaults();
        assert!(matches!(
            m.predict_proba(&[1.0]).unwrap_err(),
            MlError::NotFitted
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(23);
        let cfg = TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        };
        let mut a = LogisticRegression::new(cfg.clone());
        let mut b = LogisticRegression::new(cfg);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn rejects_untrainable_sets() {
        let mut m = LogisticRegression::with_defaults();
        assert!(m.fit(&Dataset::empty(2)).is_err());
    }

    #[test]
    fn minibatch_kernel_learns_like_row_sgd() {
        let data = blobs(24);
        let cfg = TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        };
        let mut row = LogisticRegression::new(cfg.clone());
        row.fit(&data).unwrap();
        let mut mb = LogisticRegression::new(TrainConfig {
            kernel: FitKernel::Minibatch { batch: 16 },
            ..cfg
        });
        mb.fit(&data).unwrap();
        let (ra, ma) = (row.accuracy_on(&data), mb.accuracy_on(&data));
        assert!((ra - ma).abs() <= 0.03, "row {ra} vs minibatch {ma}");
    }
}
