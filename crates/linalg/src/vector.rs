//! Free functions over `&[f64]` slices.
//!
//! All binary operations panic on dimension mismatch in debug terms only
//! when documented; the checked variants return [`LinalgError`]. The
//! poisoning-game pipeline works with moderate dimensionality (tens of
//! features), so simple scalar loops are more than fast enough and keep
//! the code auditable.

use crate::error::LinalgError;

/// Inner product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// let d = poisongame_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(d, 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Checked variant of [`dot`].
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
pub fn try_dot(a: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(dot(a, b))
}

/// `y ← y + alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Multiply every element of `x` in place by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise sum returning a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` returning a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Euclidean (L2) norm.
///
/// Uses a scaled accumulation so very large components do not overflow.
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return if max == 0.0 { 0.0 } else { f64::INFINITY };
    }
    let sum: f64 = x.iter().map(|v| (v / max) * (v / max)).sum();
    max * sum.sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L∞ norm (maximum absolute value); `0.0` for an empty slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// let d = poisongame_linalg::vector::euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]);
/// assert_eq!(d, 5.0);
/// ```
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean_distance: dimension mismatch");
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        sum += d * d;
    }
    sum.sqrt()
}

/// Squared Euclidean distance (avoids the square root when only ordering
/// matters, e.g. nearest-neighbour queries).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Manhattan (L1) distance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn manhattan_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "manhattan_distance: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Normalize `x` in place to unit L2 norm.
///
/// # Errors
///
/// Returns [`LinalgError::DomainError`] if the norm is zero or non-finite
/// (the vector is left untouched in that case).
pub fn normalize(x: &mut [f64]) -> Result<(), LinalgError> {
    let n = norm2(x);
    if n == 0.0 || !n.is_finite() {
        return Err(LinalgError::DomainError {
            what: "norm",
            value: n,
        });
    }
    scale(1.0 / n, x);
    Ok(())
}

/// Linear interpolation `a + t * (b - a)` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
}

/// Project `point` onto the sphere of radius `radius` centred at `center`.
///
/// If `point == center` the projection is ill-defined; the first axis
/// direction is used.
///
/// # Panics
///
/// Panics if the slices have different lengths or `radius < 0`.
pub fn project_to_sphere(point: &[f64], center: &[f64], radius: f64) -> Vec<f64> {
    assert!(radius >= 0.0, "project_to_sphere: negative radius");
    assert_eq!(
        point.len(),
        center.len(),
        "project_to_sphere: dimension mismatch"
    );
    let mut dir = sub(point, center);
    let n = norm2(&dir);
    if n == 0.0 {
        dir = vec![0.0; point.len()];
        if !dir.is_empty() {
            dir[0] = 1.0;
        }
        return add(center, &scale_copy(radius, &dir));
    }
    add(center, &scale_copy(radius / n, &dir))
}

/// Return `alpha * x` as a new vector.
pub fn scale_copy(alpha: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| alpha * v).collect()
}

/// True if every element is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Index of the maximum element (first on ties); `None` for empty input
/// or if every element is NaN.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first on ties); `None` for empty input
/// or if every element is NaN.
pub fn argmin(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn try_dot_rejects_mismatch() {
        let e = try_dot(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(e, LinalgError::DimensionMismatch { left: 1, right: 2 });
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms_agree_on_axis_vector() {
        let x = [0.0, -3.0, 0.0];
        assert_eq!(norm1(&x), 3.0);
        assert_eq!(norm2(&x), 3.0);
        assert_eq!(norm_inf(&x), 3.0);
    }

    #[test]
    fn norm2_handles_huge_components_without_overflow() {
        let x = [1e200, 1e200];
        let n = norm2(&x);
        assert!(n.is_finite());
        assert!((n - 1e200 * 2.0f64.sqrt()).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_of_zero_vector_is_zero() {
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn distance_triangle_inequality_spot_check() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let c = [2.0, 0.0];
        assert!(
            euclidean_distance(&a, &c)
                <= euclidean_distance(&a, &b) + euclidean_distance(&b, &c) + 1e-12
        );
    }

    #[test]
    fn squared_distance_matches_euclidean() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert!((squared_distance(&a, &b).sqrt() - euclidean_distance(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn manhattan_distance_basic() {
        assert_eq!(manhattan_distance(&[0.0, 0.0], &[1.0, -2.0]), 3.0);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut x = vec![3.0, 4.0];
        normalize(&mut x).unwrap();
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_rejects_zero_vector() {
        let mut x = vec![0.0, 0.0];
        assert!(normalize(&mut x).is_err());
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn project_to_sphere_lands_on_radius() {
        let c = [1.0, 1.0];
        let p = [5.0, 1.0];
        let proj = project_to_sphere(&p, &c, 2.0);
        assert!((euclidean_distance(&proj, &c) - 2.0).abs() < 1e-12);
        assert_eq!(proj, vec![3.0, 1.0]);
    }

    #[test]
    fn project_to_sphere_degenerate_center_point() {
        let c = [1.0, 1.0];
        let proj = project_to_sphere(&c, &c, 2.0);
        assert!((euclidean_distance(&proj, &c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 10.0];
        let b = [10.0, 0.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![5.0, 5.0]);
    }

    #[test]
    fn argmax_argmin_with_nan_and_ties() {
        let x = [f64::NAN, 2.0, 5.0, 5.0, -1.0];
        assert_eq!(argmax(&x), Some(2));
        assert_eq!(argmin(&x), Some(4));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(all_finite(&[]));
    }
}
