//! Game curves calibrated to the **paper's own published numbers** —
//! the most faithful Table 1 reproduction available.
//!
//! The paper estimates `E(p)` and `Γ(p)` from its Figure 1 and feeds
//! them to Algorithm 1; the raw curves were never released. They can,
//! however, be partially *inverted from Table 1*: the equal-product
//! equilibrium condition (§4.2) ties the published probabilities to
//! effect-curve ratios. For `n = 2` with support `{5.8 %, 15.7 %}` and
//! probabilities `{51.2 %, 48.8 %}`:
//!
//! ```text
//!   cdf(5.8%)·E(5.8%) = cdf(15.7%)·E(15.7%)
//!   0.512·E(5.8%)     = 1.0·E(15.7%)        ⇒  E(15.7%)/E(5.8%) = 0.512
//! ```
//!
//! An exponential effect curve through that ratio
//! (`E(p) = E₀·e^{−6.8·p}`), a gently convex cost curve consistent
//! with Figure 1's clean series, and the paper's scale (`N = 644`,
//! baseline accuracy ≈ 0.93, mixed accuracy 85.6 %) pin down the
//! remaining degrees of freedom. Running our Algorithm 1 on these
//! curves reproduces the paper's Table 1 regime quantitatively (see
//! `EXPERIMENTS.md`).

use crate::curves::{CostCurve, EffectCurve};
use crate::error::CoreError;
use crate::game_model::PoisonGame;

/// The paper's clean, unfiltered baseline accuracy (Spambase linear
/// SVM; Figure 1 at 0 % removal).
pub const PAPER_BASELINE_ACCURACY: f64 = 0.93;

/// The paper's poison budget: 20 % of 3220 training rows.
pub const PAPER_N_POISON: usize = 644;

/// Effect-curve decay rate implied by Table 1's `n = 2` row
/// (`ln(1/0.512) / (0.157 − 0.058) ≈ 6.76`).
pub const PAPER_EFFECT_DECAY: f64 = 6.76;

/// Effect curve `E(p) = E₀·e^{−6.76·p}` sampled on a fine grid up to
/// the profit threshold `T_a ≈ 17.5 %`.
///
/// The threshold placement is itself implied by Table 1: the deepest
/// equilibrium radii (15.7 % / 16.3 %) must sit just inside `T_a`,
/// otherwise Algorithm 1's objective `N·E(r_min) + E[Γ]` would keep
/// pushing the support deeper (our optimizer confirms this: with a
/// slower-vanishing `E` it drives `r_min` toward 40 %+).
///
/// `E₀` is chosen so the defender's equilibrium loss at the paper's
/// `n = 2` support reproduces the published 85.6 % accuracy:
/// `N·E(0.157) + E[Γ] = 0.93 − 0.856`.
///
/// # Errors
///
/// Never fails for the built-in constants; the `Result` mirrors the
/// fallible curve constructors.
pub fn paper_effect_curve() -> Result<EffectCurve, CoreError> {
    // N·E(0.157) = 0.074 − E[Γ] ≈ 0.074 − 0.0452 = 0.0288
    // ⇒ E(0.157) = 4.47e-5 ⇒ E₀ = E(0.157)·e^{6.76·0.157} = 1.29e-4.
    let e0 = 1.29e-4;
    let mut samples: Vec<(f64, f64)> = (0..=16)
        .map(|k| {
            let p = k as f64 * 0.01;
            (p, e0 * (-PAPER_EFFECT_DECAY * p).exp())
        })
        .collect();
    // Beyond the profit threshold the attacker gains nothing.
    samples.push((0.175, 0.0));
    samples.push((0.25, -2.0e-5));
    samples.push((0.50, -5.0e-5));
    EffectCurve::from_samples(&samples)
}

/// Cost curve `Γ(p) = 0.65·p^{1.2}` — steep enough that filtering at
/// the profit threshold (`Γ(0.175) = 0.080`) costs more than the
/// mixed equilibrium's loss (0.074). This steepness is itself implied
/// by Table 1: if `Γ(T_a)` were below the published equilibrium loss,
/// the pure strategy "filter exactly at `T_a`" would dominate every
/// mixture and Table 1's mixed accuracy could not beat the pure sweep
/// — consistent with Figure 1's visibly declining clean series and the
/// remark that the defender "loses incentive to increase filter
/// strength at some point between 10% and 30%".
///
/// # Errors
///
/// Never fails for the built-in constants.
pub fn paper_cost_curve() -> Result<CostCurve, CoreError> {
    let samples: Vec<(f64, f64)> = (0..=20)
        .map(|k| {
            let p = k as f64 * 0.025;
            (p, 0.65 * p.powf(1.2))
        })
        .collect();
    CostCurve::from_samples(&samples)
}

/// The poisoning game with the paper-calibrated curves and budget.
///
/// # Errors
///
/// Never fails for the built-in constants.
pub fn paper_game() -> Result<PoisonGame, CoreError> {
    PoisonGame::new(paper_effect_curve()?, paper_cost_curve()?, PAPER_N_POISON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use crate::ne::diagnose;
    use crate::strategy::DefenderMixedStrategy;

    #[test]
    fn curves_have_paper_shape() {
        let e = paper_effect_curve().unwrap();
        // The Table 1 ratio is baked in.
        let ratio = e.eval(0.157) / e.eval(0.058);
        assert!((ratio - 0.512).abs() < 0.01, "ratio {ratio}");
        // Profit threshold just past the deepest Table 1 radius.
        let t = e.profit_threshold().unwrap();
        assert!((0.16..0.19).contains(&t), "threshold {t}");
        let g = paper_cost_curve().unwrap();
        assert_eq!(g.eval(0.0), 0.0);
        assert!(g.as_piecewise().is_non_decreasing());
    }

    #[test]
    fn algorithm1_on_paper_curves_lands_in_paper_regime() {
        let game = paper_game().unwrap();
        let result = Algorithm1::with_support_size(2).solve(&game).unwrap();
        let support = result.strategy.support();
        // The equilibrium support sits in the shallow-filter zone the
        // paper reports ({5.8 %, 15.7 %}).
        assert!(support[0] < 0.12, "r1 = {}", support[0]);
        assert!(support[1] < 0.30, "r2 = {}", support[1]);
        // Predicted accuracy within two points of the published 85.6 %.
        let acc = PAPER_BASELINE_ACCURACY - result.defender_loss;
        assert!((acc - 0.856).abs() < 0.02, "accuracy {acc}");
        // And the NE conditions hold.
        let d = diagnose(&result.strategy, game.effect(), 1e-6);
        assert!(d.satisfies_ne_conditions());
    }

    #[test]
    fn mixed_beats_all_pure_on_paper_curves() {
        let game = paper_game().unwrap();
        let result = Algorithm1::with_support_size(3).solve(&game).unwrap();
        for k in 0..=49 {
            let theta = 0.01 * k as f64;
            let pure = DefenderMixedStrategy::pure(theta).unwrap();
            let pure_loss = pure.defender_loss(game.effect(), game.cost(), game.n_points());
            assert!(
                result.defender_loss < pure_loss + 1e-12,
                "pure θ={theta} matches mixed"
            );
        }
    }

    #[test]
    fn accuracy_plateaus_after_n3_on_paper_curves() {
        let game = paper_game().unwrap();
        let l3 = Algorithm1::with_support_size(3)
            .solve(&game)
            .unwrap()
            .defender_loss;
        let l5 = Algorithm1::with_support_size(5)
            .solve(&game)
            .unwrap()
            .defender_loss;
        assert!((l3 - l5).abs() < 0.005, "n=3 {l3} vs n=5 {l5}");
    }
}
