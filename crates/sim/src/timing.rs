//! Process-global accounting of where evaluation time goes: dataset
//! preparation vs model fitting vs held-out evaluation.
//!
//! The counters are cumulative, monotone atomics rather than
//! per-request fields for a load-bearing reason: the serving tier
//! asserts that responses to identical requests are *byte-identical*
//! across connections, so wall-clock measurements must never ride on
//! the response path. Callers (the server's `stats` request, the load
//! generator's summary) read one [`snapshot`] at the end of a run and
//! difference it against an earlier one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static PREP_MICROS: AtomicU64 = AtomicU64::new(0);
static FIT_MICROS: AtomicU64 = AtomicU64::new(0);
static EVAL_MICROS: AtomicU64 = AtomicU64::new(0);

fn add(counter: &AtomicU64, elapsed: Duration) {
    counter.fetch_add(
        elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
        Ordering::Relaxed,
    );
}

/// Credit `elapsed` to dataset preparation (generate → split → scale).
pub fn record_prep(elapsed: Duration) {
    add(&PREP_MICROS, elapsed);
}

/// Credit `elapsed` to model fitting.
pub fn record_fit(elapsed: Duration) {
    add(&FIT_MICROS, elapsed);
}

/// Credit `elapsed` to held-out evaluation.
pub fn record_eval(elapsed: Duration) {
    add(&EVAL_MICROS, elapsed);
}

/// A point-in-time reading of the cumulative phase counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingSnapshot {
    /// Microseconds spent preparing datasets since process start.
    pub prep_micros: u64,
    /// Microseconds spent fitting models since process start.
    pub fit_micros: u64,
    /// Microseconds spent evaluating fitted models since process start.
    pub eval_micros: u64,
}

impl TimingSnapshot {
    /// Phase-wise difference against an earlier snapshot (saturating,
    /// so a stale `earlier` cannot underflow).
    pub fn since(&self, earlier: &TimingSnapshot) -> TimingSnapshot {
        TimingSnapshot {
            prep_micros: self.prep_micros.saturating_sub(earlier.prep_micros),
            fit_micros: self.fit_micros.saturating_sub(earlier.fit_micros),
            eval_micros: self.eval_micros.saturating_sub(earlier.eval_micros),
        }
    }
}

/// Read the cumulative counters. Concurrent recorders make this a
/// momentary reading, not a consistent cut — fine for the coarse
/// breakdown it feeds.
pub fn snapshot() -> TimingSnapshot {
    TimingSnapshot {
        prep_micros: PREP_MICROS.load(Ordering::Relaxed),
        fit_micros: FIT_MICROS.load(Ordering::Relaxed),
        eval_micros: EVAL_MICROS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_difference() {
        let before = snapshot();
        record_prep(Duration::from_micros(5));
        record_fit(Duration::from_micros(7));
        record_eval(Duration::from_micros(11));
        let delta = snapshot().since(&before);
        // Other tests in the same process may also record; lower bounds
        // are the only safe assertion.
        assert!(delta.prep_micros >= 5);
        assert!(delta.fit_micros >= 7);
        assert!(delta.eval_micros >= 11);
        // Saturating difference never underflows.
        assert_eq!(before.since(&snapshot()).fit_micros, 0);
    }
}
