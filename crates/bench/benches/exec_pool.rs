//! Bench: the PR-8 persistent execution runtime. Two comparisons:
//!
//! * **grid** — a `parallel_map`-shaped fan-out (float-heavy cells
//!   with per-cell derived seeds) at 1-, 8- and 64-cell grids, the
//!   per-call `std::thread::scope` backend this repo used through
//!   PR 7 vs the shared [`WorkerPool`]. Small grids are the serving
//!   tier's shape — one drained batch per shard dispatcher — where
//!   per-call spawn/join dominated.
//! * **gemm** — serial vs pool-parallel [`gemm_nt`] at the paper-scale
//!   shape (Spambase-rows × cells × features) and a wide-feature
//!   shape, both split into `ROW_BLOCK` output bands. Results are
//!   bit-identical by construction; only wall-clock may differ.
//!
//! Both arms of each comparison compute identical bits; each iteration
//! asserts the checksum to keep the comparison honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poisongame_exec::{OnceSlots, WorkerPool};
use poisongame_linalg::gemm::gemm_nt_parallel;
use poisongame_linalg::{Matrix, Xoshiro256StarStar};
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One simulation-cell-sized unit of float work, seeded by index.
fn cell_work(seed: u64) -> f64 {
    let mut acc = 0.0f64;
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for _ in 0..4_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        acc += (state >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    }
    acc
}

/// The pre-PR-8 backend: spawn a scoped pool per call, join it before
/// returning.
fn scoped_map(threads: usize, n: usize) -> Vec<f64> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<f64>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().unwrap() = Some(cell_work(i as u64));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every cell computed"))
        .collect()
}

/// The shared-pool backend: submit tickets, participate, no spawns.
fn pooled_map(participants: usize, n: usize) -> Vec<f64> {
    let slots = OnceSlots::new(n);
    WorkerPool::global().run(n, participants, &|i| slots.set(i, cell_work(i as u64)));
    slots
        .into_options()
        .into_iter()
        .map(|s| s.expect("every cell computed"))
        .collect()
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_pool/grid");
    group.sample_size(20);

    // The fan-out width both backends get: the interesting regime for
    // the serving tier is small grids, where spawn/join overhead is
    // the same order as the work itself.
    const THREADS: usize = 4;
    for cells in [1usize, 8, 64] {
        let expected: f64 = (0..cells).map(|i| cell_work(i as u64)).sum();
        group.bench_with_input(BenchmarkId::new("scoped", cells), &cells, |b, &cells| {
            b.iter(|| {
                let out = scoped_map(THREADS, black_box(cells));
                assert_eq!(out.iter().sum::<f64>().to_bits(), expected.to_bits());
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("pool", cells), &cells, |b, &cells| {
            b.iter(|| {
                let out = pooled_map(THREADS, black_box(cells));
                assert_eq!(out.iter().sum::<f64>().to_bits(), expected.to_bits());
                black_box(out)
            })
        });
    }
    group.finish();
}

fn random_matrix(rows: usize, cols: usize, rng: &mut Xoshiro256StarStar) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.next_f64() * 2.0 - 1.0)
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_pool/gemm");
    group.sample_size(10);

    // (label, m, n, k): paper-scale = Spambase-sized rows × 24 cells ×
    // 57 features; wide = few RHS over a wide feature space.
    for &(label, m, n, k) in &[
        ("paper_4601x24x57", 4601usize, 24usize, 57usize),
        ("wide_2048x8x512", 2048, 8, 512),
    ] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xE8E8);
        let a = random_matrix(m, k, &mut rng);
        let b_mat = random_matrix(n, k, &mut rng);
        let reference = gemm_nt_parallel(&a, &b_mat, 1).unwrap();
        let checksum: f64 = (0..m.min(4)).map(|i| reference.row(i)[0]).sum();

        group.bench_with_input(BenchmarkId::new("serial", label), &(), |bench, ()| {
            bench.iter(|| {
                let out = gemm_nt_parallel(black_box(&a), black_box(&b_mat), 1).unwrap();
                let probe: f64 = (0..m.min(4)).map(|i| out.row(i)[0]).sum();
                assert_eq!(probe.to_bits(), checksum.to_bits());
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("pool", label), &(), |bench, ()| {
            bench.iter(|| {
                let out = gemm_nt_parallel(
                    black_box(&a),
                    black_box(&b_mat),
                    poisongame_exec::hardware_threads().max(2),
                )
                .unwrap();
                let probe: f64 = (0..m.min(4)).map(|i| out.row(i)[0]).sum();
                assert_eq!(probe.to_bits(), checksum.to_bits());
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid, bench_gemm);
criterion_main!(benches);
