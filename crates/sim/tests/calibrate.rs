//! Scratch calibration probe (ignored by default).
use poisongame_core::SolverKind;
use poisongame_defense::{CentroidEstimator, FilterStrength};
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_sim::pipeline::*;
use rand::SeedableRng;

#[test]
#[ignore]
fn probe() {
    let config = ExperimentConfig {
        seed: 7,
        source: DataSource::SyntheticSpambase { rows: 4601 },
        test_fraction: 0.3,
        budget_fraction: 0.2,
        epochs: 400,
        centroid: CentroidEstimator::CoordinateMedian,
        solver: SolverKind::Auto,
        warm_start: false,
        fit_kernel: Default::default(),
        scenario: Default::default(),
    };
    let p = prepare(&config).unwrap();
    let clean = filter_train_eval(
        p.train(),
        &[],
        p.test(),
        FilterStrength::RemoveFraction(0.0),
        &config,
    )
    .unwrap();
    println!("clean acc = {:.4}", clean.accuracy);
    for theta in [0.05, 0.10, 0.20, 0.30, 0.40] {
        let g = filter_train_eval(
            p.train(),
            &[],
            p.test(),
            FilterStrength::RemoveFraction(theta),
            &config,
        )
        .unwrap();
        print!("G({theta})={:.4} ", clean.accuracy - g.accuracy);
    }
    println!();
    for placement in [0.01, 0.03, 0.06, 0.10, 0.20, 0.30, 0.40, 0.48] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let a = attack_filter_train_eval(
            &p,
            placement,
            FilterStrength::RemoveFraction(0.0),
            &config,
            &mut rng,
        )
        .unwrap();
        print!("E({placement})={:.4} ", clean.accuracy - a.accuracy);
    }
    println!();
    // Fig1-style: hugging attack vs active filter (interaction check).
    for theta in [0.02, 0.05, 0.10, 0.20, 0.30, 0.40] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let hug = hugging_placement(&p, theta, 0.01);
        let a = attack_filter_train_eval(
            &p,
            hug,
            FilterStrength::RemoveFraction(theta),
            &config,
            &mut rng,
        )
        .unwrap();
        print!("Fig1({theta})={:.4} ", a.accuracy);
    }
    println!();
}
