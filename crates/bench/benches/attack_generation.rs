//! Ablation bench: poison-synthesis throughput for each attack family.

use criterion::{criterion_group, criterion_main, Criterion};
use poisongame_attack::{
    AttackStrategy, BoundaryAttack, LabelFlipAttack, MixedRadiusAttack, RadiusAllocation,
    RadiusSpec, RandomNoiseAttack,
};
use poisongame_bench::bench_dataset;
use poisongame_linalg::Xoshiro256StarStar;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_attacks(c: &mut Criterion) {
    let data = bench_dataset(1200);
    let n_poison = 240; // the 20 % budget at this scale
    let mut group = c.benchmark_group("attack_generation");

    group.bench_function("boundary", |b| {
        let attack = BoundaryAttack::new(RadiusSpec::Percentile(0.05));
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(1);
            let poison = attack
                .generate(black_box(&data), n_poison, &mut rng)
                .expect("attack generates");
            black_box(poison.len())
        })
    });

    group.bench_function("mixed_radius_3", |b| {
        let attack = MixedRadiusAttack::new(vec![
            RadiusAllocation {
                spec: RadiusSpec::Percentile(0.05),
                count: 80,
            },
            RadiusAllocation {
                spec: RadiusSpec::Percentile(0.10),
                count: 80,
            },
            RadiusAllocation {
                spec: RadiusSpec::Percentile(0.20),
                count: 80,
            },
        ]);
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(2);
            let poison = attack
                .generate(black_box(&data), n_poison, &mut rng)
                .expect("attack generates");
            black_box(poison.len())
        })
    });

    group.bench_function("label_flip", |b| {
        let attack = LabelFlipAttack::new();
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(3);
            let poison = attack
                .generate(black_box(&data), n_poison, &mut rng)
                .expect("attack generates");
            black_box(poison.len())
        })
    });

    group.bench_function("random_noise", |b| {
        let attack = RandomNoiseAttack::new();
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(4);
            let poison = attack
                .generate(black_box(&data), n_poison, &mut rng)
                .expect("attack generates");
            black_box(poison.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
