//! The sphere (radius) filter — the paper's defense mechanism — and the
//! shared [`Filter`] trait / outcome types.

use crate::centroid::CentroidEstimator;
use crate::error::DefenseError;
use poisongame_data::{DataView, Dataset, Label};
use poisongame_linalg::vector;
use serde::{Deserialize, Serialize};

/// How strong the filter is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FilterStrength {
    /// Remove this fraction of each class's points — the farthest ones
    /// from the class centroid. This is the x-axis of the paper's
    /// Figure 1 ("percentage of data points removed by the filter").
    RemoveFraction(f64),
    /// Remove every point farther than this absolute radius from its
    /// class centroid (`θ_d` in the paper's game model).
    AbsoluteRadius(f64),
}

/// A training-data sanitizer: decides which points to keep.
///
/// Filters read their input through [`DataView`], so an owned
/// [`Dataset`] and a copy-on-write
/// [`poisongame_data::PoisonedView`] (shared clean base + owned
/// poison tail) are interchangeable.
pub trait Filter {
    /// Partition `data` into kept and removed indices.
    ///
    /// # Errors
    ///
    /// Implementations reject empty datasets, missing classes and
    /// out-of-range parameters.
    fn split(&self, data: &dyn DataView) -> Result<FilterOutcome, DefenseError>;

    /// Convenience: apply [`Filter::split`] and materialize the kept
    /// dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`Filter::split`] errors.
    fn apply(&self, data: &dyn DataView) -> Result<Dataset, DefenseError> {
        Ok(self.split(data)?.kept_dataset(data))
    }
}

/// Result of filtering: which indices survived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterOutcome {
    /// Indices kept, ascending.
    pub kept_indices: Vec<usize>,
    /// Indices removed, ascending.
    pub removed_indices: Vec<usize>,
    /// The effective radius used per class `[negative, positive]`
    /// (`None` when the class had no points — impossible for
    /// [`RadiusFilter`], which requires both classes).
    pub class_radii: [Option<f64>; 2],
}

impl FilterOutcome {
    /// Materialize the surviving dataset.
    pub fn kept_dataset(&self, data: &dyn DataView) -> Dataset {
        data.select(&self.kept_indices)
    }

    /// Fraction of the original points removed.
    pub fn removed_fraction(&self, data: &dyn DataView) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        self.removed_indices.len() as f64 / data.len() as f64
    }

    /// Split removal counts into poison vs genuine given the ground
    /// truth (indices of injected points) known to the experiment
    /// harness.
    pub fn account(&self, poison_indices: &[usize]) -> FilterAccounting {
        let poison: std::collections::HashSet<usize> = poison_indices.iter().copied().collect();
        let poison_removed = self
            .removed_indices
            .iter()
            .filter(|i| poison.contains(i))
            .count();
        let poison_kept = self
            .kept_indices
            .iter()
            .filter(|i| poison.contains(i))
            .count();
        FilterAccounting {
            poison_removed,
            poison_kept,
            genuine_removed: self.removed_indices.len() - poison_removed,
            genuine_kept: self.kept_indices.len() - poison_kept,
        }
    }
}

/// Ground-truth accounting of a filter run (experiment-side only; the
/// real defender cannot observe this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterAccounting {
    /// Injected points that the filter removed.
    pub poison_removed: usize,
    /// Injected points that survived.
    pub poison_kept: usize,
    /// Genuine points that the filter removed (the defender's cost
    /// `Γ`).
    pub genuine_removed: usize,
    /// Genuine points that survived.
    pub genuine_kept: usize,
}

impl FilterAccounting {
    /// Recall of the detector on poisons (`0.0` when none injected).
    pub fn poison_recall(&self) -> f64 {
        let total = self.poison_removed + self.poison_kept;
        if total == 0 {
            0.0
        } else {
            self.poison_removed as f64 / total as f64
        }
    }

    /// Fraction of genuine data destroyed by the filter.
    pub fn genuine_loss(&self) -> f64 {
        let total = self.genuine_removed + self.genuine_kept;
        if total == 0 {
            0.0
        } else {
            self.genuine_removed as f64 / total as f64
        }
    }
}

/// Which points a filter radius is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterScope {
    /// One centroid for the whole training set — the paper's game
    /// model ("the hypersphere centered at the centroid of the
    /// original dataset"). The default.
    Global,
    /// A centroid per class, removing the strength fraction from each
    /// class independently (the Paudice et al. variant) — kept for
    /// ablations.
    PerClass,
}

/// The paper's defense: sphere filter around a robust centroid.
///
/// # Example
///
/// ```
/// use poisongame_data::synth::gaussian_blobs;
/// use poisongame_defense::{CentroidEstimator, Filter, FilterStrength, RadiusFilter};
/// use poisongame_linalg::Xoshiro256StarStar;
/// use rand::SeedableRng;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(2);
/// let data = gaussian_blobs(50, 2, 3.0, 0.5, &mut rng);
/// let filter = RadiusFilter::new(
///     FilterStrength::RemoveFraction(0.2),
///     CentroidEstimator::CoordinateMedian,
/// );
/// let kept = filter.apply(&data).unwrap();
/// assert!(kept.len() < data.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiusFilter {
    strength: FilterStrength,
    centroid: CentroidEstimator,
    scope: FilterScope,
}

impl RadiusFilter {
    /// New filter with the given strength and centroid estimator,
    /// using the paper's global scope.
    pub fn new(strength: FilterStrength, centroid: CentroidEstimator) -> Self {
        Self {
            strength,
            centroid,
            scope: FilterScope::Global,
        }
    }

    /// Override the scope.
    pub fn with_scope(mut self, scope: FilterScope) -> Self {
        self.scope = scope;
        self
    }

    /// The configured strength.
    pub fn strength(&self) -> FilterStrength {
        self.strength
    }

    /// The configured centroid estimator.
    pub fn centroid_estimator(&self) -> CentroidEstimator {
        self.centroid
    }

    /// The configured scope.
    pub fn scope(&self) -> FilterScope {
        self.scope
    }

    /// Partition one index group by distance under the configured
    /// strength; returns the effective radius.
    fn partition(
        &self,
        idx: &[usize],
        distances: &[f64],
        kept: &mut Vec<usize>,
        removed: &mut Vec<usize>,
    ) -> f64 {
        match self.strength {
            FilterStrength::AbsoluteRadius(r) => {
                for (&i, &d) in idx.iter().zip(distances) {
                    if d <= r {
                        kept.push(i);
                    } else {
                        removed.push(i);
                    }
                }
                r
            }
            FilterStrength::RemoveFraction(f) => {
                // The paper's Figure 1 axis is "percentage of data
                // points removed by the filter", so the strength is
                // honored exactly: the ⌊f·n⌉ points farthest from the
                // centroid are removed, with distance ties broken
                // deterministically by index. (A pure radius-threshold
                // rule lets an attacker park an arbitrarily large
                // tied-at-the-cutoff cluster the filter could never
                // remove.)
                let k = ((idx.len() as f64) * f).round() as usize;
                let mut order: Vec<usize> = (0..idx.len()).collect();
                order.sort_by(|&a, &b| {
                    distances[b]
                        .partial_cmp(&distances[a])
                        .expect("finite distances")
                        .then(idx[a].cmp(&idx[b]))
                });
                for (rank, &local) in order.iter().enumerate() {
                    if rank < k {
                        removed.push(idx[local]);
                    } else {
                        kept.push(idx[local]);
                    }
                }
                // Effective radius: the largest kept distance.
                order.get(k).map(|&local| distances[local]).unwrap_or(0.0)
            }
        }
    }

    fn validate(&self) -> Result<(), DefenseError> {
        match self.strength {
            FilterStrength::RemoveFraction(f) => {
                if !(0.0..1.0).contains(&f) || f.is_nan() {
                    return Err(DefenseError::BadParameter {
                        what: "remove_fraction",
                        value: f,
                    });
                }
            }
            FilterStrength::AbsoluteRadius(r) => {
                if r < 0.0 || !r.is_finite() {
                    return Err(DefenseError::BadParameter {
                        what: "radius",
                        value: r,
                    });
                }
            }
        }
        Ok(())
    }
}

impl Filter for RadiusFilter {
    fn split(&self, data: &dyn DataView) -> Result<FilterOutcome, DefenseError> {
        self.validate()?;
        if data.is_empty() {
            return Err(DefenseError::EmptyDataset);
        }

        let mut kept = Vec::with_capacity(data.len());
        let mut removed = Vec::new();
        let mut class_radii = [None, None];

        match self.scope {
            FilterScope::Global => {
                let idx: Vec<usize> = (0..data.len()).collect();
                let points: Vec<&[f64]> = idx.iter().map(|&i| data.point(i)).collect();
                let center = self.centroid.estimate(&points)?;
                let distances: Vec<f64> = points
                    .iter()
                    .map(|p| vector::euclidean_distance(p, &center))
                    .collect();
                let radius = self.partition(&idx, &distances, &mut kept, &mut removed);
                class_radii = [Some(radius), Some(radius)];
            }
            FilterScope::PerClass => {
                for (slot, label) in Label::both().iter().enumerate() {
                    let idx = data.class_indices(*label);
                    if idx.is_empty() {
                        return Err(DefenseError::MissingClass);
                    }
                    let points: Vec<&[f64]> = idx.iter().map(|&i| data.point(i)).collect();
                    let center = self.centroid.estimate(&points)?;
                    let distances: Vec<f64> = points
                        .iter()
                        .map(|p| vector::euclidean_distance(p, &center))
                        .collect();
                    class_radii[slot] =
                        Some(self.partition(&idx, &distances, &mut kept, &mut removed));
                }
            }
        }

        kept.sort_unstable();
        removed.sort_unstable();
        Ok(FilterOutcome {
            kept_indices: kept,
            removed_indices: removed,
            class_radii,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poisongame_data::synth::gaussian_blobs;
    use poisongame_linalg::Xoshiro256StarStar;
    use rand::SeedableRng;

    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        gaussian_blobs(n, 3, 4.0, 0.7, &mut rng)
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let data = blobs(1, 50);
        let f = RadiusFilter::new(FilterStrength::RemoveFraction(0.0), CentroidEstimator::Mean);
        let outcome = f.split(&data).unwrap();
        assert_eq!(outcome.kept_indices.len(), data.len());
        assert!(outcome.removed_indices.is_empty());
        assert_eq!(outcome.removed_fraction(&data), 0.0);
    }

    #[test]
    fn fraction_removes_roughly_that_share_per_class() {
        let data = blobs(2, 200);
        let f = RadiusFilter::new(
            FilterStrength::RemoveFraction(0.25),
            CentroidEstimator::Mean,
        )
        .with_scope(FilterScope::PerClass);
        let outcome = f.split(&data).unwrap();
        let frac = outcome.removed_fraction(&data);
        assert!((frac - 0.25).abs() < 0.03, "removed fraction {frac}");
    }

    #[test]
    fn removed_points_are_the_farthest() {
        let data = blobs(3, 80);
        let f = RadiusFilter::new(FilterStrength::RemoveFraction(0.2), CentroidEstimator::Mean)
            .with_scope(FilterScope::PerClass);
        let outcome = f.split(&data).unwrap();
        // Every removed point must be farther from its class centroid
        // than every kept point of the same class.
        for label in Label::both() {
            let idx = data.class_indices(label);
            let points: Vec<&[f64]> = idx.iter().map(|&i| data.point(i)).collect();
            let center = CentroidEstimator::Mean.estimate(&points).unwrap();
            let dist = |i: usize| vector::euclidean_distance(data.point(i), &center);
            let max_kept = outcome
                .kept_indices
                .iter()
                .filter(|i| data.label(**i) == label)
                .map(|&i| dist(i))
                .fold(0.0f64, f64::max);
            for &i in outcome
                .removed_indices
                .iter()
                .filter(|i| data.label(**i) == label)
            {
                assert!(dist(i) >= max_kept - 1e-9);
            }
        }
    }

    #[test]
    fn huge_absolute_radius_keeps_all() {
        let data = blobs(4, 40);
        let f = RadiusFilter::new(
            FilterStrength::AbsoluteRadius(1e9),
            CentroidEstimator::CoordinateMedian,
        );
        let outcome = f.split(&data).unwrap();
        assert_eq!(outcome.kept_indices.len(), data.len());
        assert!(outcome.class_radii[0].unwrap() > 1e8);
    }

    #[test]
    fn zero_absolute_radius_removes_almost_all() {
        let data = blobs(5, 40);
        let f = RadiusFilter::new(FilterStrength::AbsoluteRadius(0.0), CentroidEstimator::Mean);
        let outcome = f.split(&data).unwrap();
        assert!(outcome.kept_indices.len() <= 2);
    }

    #[test]
    fn parameter_validation() {
        let data = blobs(6, 20);
        for bad in [
            FilterStrength::RemoveFraction(-0.1),
            FilterStrength::RemoveFraction(1.0),
            FilterStrength::RemoveFraction(f64::NAN),
            FilterStrength::AbsoluteRadius(-1.0),
            FilterStrength::AbsoluteRadius(f64::INFINITY),
        ] {
            let f = RadiusFilter::new(bad, CentroidEstimator::Mean);
            assert!(f.split(&data).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn empty_and_single_class_rejected() {
        let f = RadiusFilter::new(FilterStrength::RemoveFraction(0.1), CentroidEstimator::Mean);
        assert!(matches!(
            f.split(&Dataset::empty(2)).unwrap_err(),
            DefenseError::EmptyDataset
        ));
        let single = Dataset::from_rows(
            vec![vec![1.0, 1.0], vec![2.0, 2.0]],
            vec![Label::Positive, Label::Positive],
        )
        .unwrap();
        // Global scope is label-blind: a single-class set is fine.
        assert!(f.split(&single).is_ok());
        // Per-class scope needs both classes.
        assert!(matches!(
            f.with_scope(FilterScope::PerClass)
                .split(&single)
                .unwrap_err(),
            DefenseError::MissingClass
        ));
    }

    #[test]
    fn global_scope_removes_exact_global_fraction() {
        let data = blobs(12, 100);
        let f = RadiusFilter::new(
            FilterStrength::RemoveFraction(0.15),
            CentroidEstimator::CoordinateMedian,
        );
        let outcome = f.split(&data).unwrap();
        assert_eq!(outcome.removed_indices.len(), 30); // 15% of 200
        assert_eq!(outcome.class_radii[0], outcome.class_radii[1]);
    }

    #[test]
    fn outcome_partition_is_complete_and_disjoint() {
        let data = blobs(7, 60);
        let f = RadiusFilter::new(FilterStrength::RemoveFraction(0.3), CentroidEstimator::Mean);
        let outcome = f.split(&data).unwrap();
        let mut all: Vec<usize> = outcome
            .kept_indices
            .iter()
            .chain(&outcome.removed_indices)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..data.len()).collect::<Vec<_>>());
    }

    #[test]
    fn accounting_tracks_poison() {
        let data = blobs(8, 30);
        let f = RadiusFilter::new(FilterStrength::RemoveFraction(0.2), CentroidEstimator::Mean);
        let outcome = f.split(&data).unwrap();
        // Pretend the first five indices are poison.
        let acc = outcome.account(&[0, 1, 2, 3, 4]);
        assert_eq!(acc.poison_removed + acc.poison_kept, 5);
        assert_eq!(acc.genuine_removed + acc.genuine_kept, data.len() - 5);
        assert!(acc.poison_recall() <= 1.0);
        assert!(acc.genuine_loss() <= 1.0);
    }

    #[test]
    fn kept_dataset_matches_indices() {
        let data = blobs(9, 30);
        let f = RadiusFilter::new(FilterStrength::RemoveFraction(0.1), CentroidEstimator::Mean);
        let outcome = f.split(&data).unwrap();
        let kept = outcome.kept_dataset(&data);
        assert_eq!(kept.len(), outcome.kept_indices.len());
        assert_eq!(kept.point(0), data.point(outcome.kept_indices[0]));
    }

    #[test]
    fn accounting_empty_poison_set() {
        let acc = FilterAccounting {
            poison_removed: 0,
            poison_kept: 0,
            genuine_removed: 2,
            genuine_kept: 8,
        };
        assert_eq!(acc.poison_recall(), 0.0);
        assert!((acc.genuine_loss() - 0.2).abs() < 1e-12);
    }
}
