//! Property-based tests on the game model's NE machinery: the
//! `findPercentage` closed form always equalizes the attacker's gain,
//! for any valid decreasing effect curve and any support inside the
//! profitable zone. Randomized inputs come from the workspace's
//! deterministic generator, so every run tests the same cases.

use poisongame_core::ne::{diagnose, equalizing_strategy};
use poisongame_core::EffectCurve;
use poisongame_linalg::Xoshiro256StarStar;
use rand::SeedableRng;
use std::collections::BTreeSet;

const CASES: usize = 128;

/// A strictly positive, decreasing effect curve on [0, 0.5].
fn effect_curve(rng: &mut Xoshiro256StarStar) -> EffectCurve {
    let e0 = 1e-5 + rng.next_f64() * (1e-2 - 1e-5);
    let decay = 0.5 + rng.next_f64() * 7.5;
    let samples: Vec<(f64, f64)> = (0..=10)
        .map(|k| {
            let p = k as f64 * 0.05;
            (p, e0 * (-decay * p).exp())
        })
        .collect();
    EffectCurve::from_samples(&samples).expect("valid samples")
}

/// A sorted support of 2..=5 distinct percentiles in (0, 0.45).
fn support(rng: &mut Xoshiro256StarStar) -> Vec<f64> {
    let size = 2 + (rng.next_raw() as usize) % 4;
    let mut set = BTreeSet::new();
    while set.len() < size {
        set.insert(1 + (rng.next_raw() as u32) % 89);
    }
    set.into_iter().map(|k| k as f64 * 0.005).collect()
}

#[test]
fn equalizing_strategy_satisfies_ne_conditions() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xEC_0411);
    for _ in 0..CASES {
        let e = effect_curve(&mut rng);
        let s = support(&mut rng);
        let strategy = equalizing_strategy(&s, &e).unwrap();
        let d = diagnose(&strategy, &e, 1e-6);
        assert!(d.mixes_two_or_more);
        assert!(d.products_equalized, "spread {}", d.product_spread);
        // Probabilities are a distribution.
        let sum: f64 = strategy.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(strategy.probabilities().iter().all(|&q| q >= -1e-12));
    }
}

#[test]
fn attacker_gain_equals_deepest_effect() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x6A17);
    for _ in 0..CASES {
        let e = effect_curve(&mut rng);
        let s = support(&mut rng);
        let strategy = equalizing_strategy(&s, &e).unwrap();
        let deepest = *s.last().unwrap();
        let gain = strategy.attacker_gain(&e);
        assert!((gain - e.eval(deepest)).abs() < 1e-9 * gain.max(1e-12));
    }
}

#[test]
fn survival_probability_is_monotone_cdf() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5324);
    for _ in 0..CASES {
        let e = effect_curve(&mut rng);
        let s = support(&mut rng);
        let strategy = equalizing_strategy(&s, &e).unwrap();
        let mut prev = 0.0;
        for k in 0..=50 {
            let p = k as f64 * 0.01;
            let surv = strategy.survival_probability(p);
            assert!(surv + 1e-12 >= prev);
            assert!((0.0..=1.0 + 1e-9).contains(&surv));
            prev = surv;
        }
        assert!((strategy.survival_probability(0.99) - 1.0).abs() < 1e-9);
    }
}
