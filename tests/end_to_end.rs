//! Cross-crate integration tests: the full pipeline from synthetic
//! data through attack, defense, curve estimation and Algorithm 1.

use poisongame::core::ne::diagnose;
use poisongame::core::SolverKind;
use poisongame::core::{Algorithm1, Algorithm1Config, DefenderMixedStrategy};
use poisongame::defense::CentroidEstimator;
use poisongame::sim::estimate::estimate_curves;
use poisongame::sim::fig1::{run_fig1, Fig1Config};
use poisongame::sim::pipeline::{DataSource, ExperimentConfig};
use poisongame::sim::scenario::Scenario;
use poisongame::sim::table1::run_table1;

fn quick_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        source: DataSource::SyntheticSpambase { rows: 700 },
        test_fraction: 0.3,
        budget_fraction: 0.2,
        epochs: 60,
        centroid: CentroidEstimator::CoordinateMedian,
        solver: SolverKind::Auto,
        warm_start: false,
        fit_kernel: poisongame::ml::FitKernel::RowSgd,
        scenario: Scenario::default(),
    }
}

#[test]
fn fig1_reproduces_paper_shape() {
    let sweep = Fig1Config {
        strengths: vec![0.0, 0.05, 0.10, 0.20, 0.30],
        placement_slack: 0.01,
    };
    let r = run_fig1(&quick_config(11), &sweep).unwrap();

    // Shape check 1: the unfiltered attack does real damage.
    let at_zero = r.rows[0].accuracy_under_attack;
    assert!(
        at_zero < r.baseline_accuracy - 0.05,
        "attack too weak: {} vs baseline {}",
        at_zero,
        r.baseline_accuracy
    );
    // Shape check 2: some positive filter strength beats no filter
    // under attack (filtering helps even though the attacker adapts).
    let best = r.best_pure();
    assert!(best.removed_fraction > 0.0);
    assert!(best.accuracy_under_attack > at_zero + 0.01);
    // Shape check 3: the clean series never collapses (the filter's
    // cost is bounded) and stays above the attacked series at 0.
    for row in &r.rows {
        assert!(row.accuracy_clean > at_zero);
    }
}

#[test]
fn curves_feed_algorithm1_and_satisfy_ne_conditions() {
    let config = quick_config(23);
    let curves =
        estimate_curves(&config, &[0.02, 0.10, 0.20, 0.35], &[0.0, 0.05, 0.15, 0.30]).unwrap();
    let game = curves.game().unwrap();
    let result = Algorithm1::with_support_size(2).solve(&game).unwrap();

    // NE structure from §4.2 must hold on *estimated* curves too.
    let d = diagnose(&result.strategy, game.effect(), 1e-6);
    assert!(d.satisfies_ne_conditions(), "{d:?}");

    // The mixed loss is no worse than any pure strategy's loss.
    for k in 0..=10 {
        let theta = 0.05 * k as f64;
        if theta >= 0.5 {
            break;
        }
        let pure = DefenderMixedStrategy::pure(theta).unwrap();
        let pure_loss = pure.defender_loss(game.effect(), game.cost(), game.n_points());
        assert!(
            result.defender_loss <= pure_loss + 1e-9,
            "pure θ={theta} beats mixed: {pure_loss} < {}",
            result.defender_loss
        );
    }
}

#[test]
fn solver_is_swappable_via_experiment_config() {
    // The acceptance bar for the solver refactor: every solver is
    // selectable purely through configuration, and the experiment
    // output stays a valid mixed defense regardless of the choice.
    let mut config = quick_config(53);
    config.epochs = 30;
    config.source = DataSource::SyntheticSpambase { rows: 500 };
    // Opt into the warm start so the solver choice reaches Algorithm 1.
    config.warm_start = true;
    let curves = estimate_curves(&config, &[0.02, 0.15, 0.35], &[0.0, 0.1, 0.3]).unwrap();
    let game = curves.game().unwrap();

    for solver in [
        SolverKind::Auto,
        SolverKind::Simplex,
        SolverKind::FictitiousPlay,
        SolverKind::MultiplicativeWeights,
    ] {
        config.solver = solver;
        let t = run_table1(&config, &curves, &[2], 0.8).unwrap();
        let row = &t.rows[0];
        assert_eq!(row.support.len(), 2, "{solver:?}");
        assert!(
            (row.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "{solver:?}"
        );
        assert!((0.0..=1.0).contains(&row.empirical_accuracy), "{solver:?}");

        // The same choice drives Algorithm 1's warm start directly.
        let warm = Algorithm1::new(Algorithm1Config {
            n_radii: 2,
            solver,
            warm_start: true,
            ..Algorithm1Config::default()
        })
        .solve(&game)
        .unwrap();
        assert_eq!(warm.strategy.support().len(), 2, "{solver:?}");
    }
}

#[test]
fn table1_mixed_defense_close_to_or_above_best_pure() {
    let config = quick_config(37);
    let sweep = Fig1Config {
        strengths: vec![0.0, 0.05, 0.15, 0.30],
        placement_slack: 0.01,
    };
    let fig1 = run_fig1(&config, &sweep).unwrap();
    let curves =
        estimate_curves(&config, &[0.02, 0.10, 0.20, 0.35], &[0.0, 0.05, 0.15, 0.30]).unwrap();
    let t = run_table1(
        &config,
        &curves,
        &[2],
        fig1.best_pure().accuracy_under_attack,
    )
    .unwrap();
    let row = &t.rows[0];
    // The pure sweep's best point benefits from evaluation noise (a max
    // over noisy measurements), so allow a small tolerance — at paper
    // scale the mixed defense clears the bar outright (EXPERIMENTS.md).
    assert!(
        row.empirical_accuracy >= t.best_pure_accuracy - 0.05,
        "mixed {} far below best pure {}",
        row.empirical_accuracy,
        t.best_pure_accuracy
    );
    // And it must clearly beat the undefended posture.
    let undefended = fig1.rows[0].accuracy_under_attack;
    assert!(
        row.empirical_accuracy > undefended,
        "mixed {} vs undefended {}",
        row.empirical_accuracy,
        undefended
    );
}
