//! The deterministic repeated-game simulator and its diagnostics.
//!
//! Two [`Learner`]s — the attacker maximizing, the defender minimizing
//! — play `T` rounds of the zero-sum game a [`RoundPayoff`] provider
//! scores. Each round both sides read their current mixed strategy,
//! receive full-information feedback, and update. The simulator
//! records convergence diagnostics at checkpoints:
//!
//! * **external regret** per player — how much the best fixed action
//!   in hindsight beats the realized play, averaged per round (the
//!   quantity no-regret learners drive to zero);
//! * **exploitability** of the time-averaged strategy profile — the
//!   total gain available to best-responding deviators (zero exactly
//!   at a Nash equilibrium);
//! * **NE gap** — distance of the averaged profile's value from the
//!   one-shot equilibrium value the reference solver computes; the
//!   repeated game thereby independently validates the static
//!   Algorithm 1 / LP equilibrium.
//!
//! Everything is sequential and seeded: traces are bit-identical for a
//! fixed seed, across machines and across however many worker threads
//! the payoff matrix was prefilled with.

use crate::error::OnlineError;
use crate::learner::LearnerKind;
use crate::payoff::RoundPayoff;
use poisongame_linalg::Xoshiro256StarStar;
use poisongame_sim::jsonio::{self, Json};
use poisongame_theory::{sample_index, MatrixGame, MixedStrategy, SolverKind};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// What each learner observes per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Feedback {
    /// The expected payoff of each action against the opponent's
    /// current **mixed** strategy — deterministic, the fastest road to
    /// the equilibrium (the default).
    #[default]
    Expected,
    /// The payoff of each action against the opponent's **realized**
    /// pure action, sampled from their mixed strategy with the
    /// config's seed — the streaming flavor, where each round is one
    /// concrete poisoned batch against one concrete filter.
    Sampled,
}

impl Feedback {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Feedback::Expected => "expected",
            Feedback::Sampled => "sampled",
        }
    }

    /// Parse the stable wire name.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::Spec`] for an unknown name.
    pub fn from_name(name: &str) -> Result<Self, OnlineError> {
        match name {
            "expected" => Ok(Feedback::Expected),
            "sampled" => Ok(Feedback::Sampled),
            other => Err(OnlineError::Spec(format!("unknown feedback `{other}`"))),
        }
    }
}

/// Configuration of one repeated-game run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlayConfig {
    /// Rounds to play.
    pub rounds: usize,
    /// The attacker's update rule.
    pub attacker: LearnerKind,
    /// The defender's update rule.
    pub defender: LearnerKind,
    /// Per-round feedback mode.
    pub feedback: Feedback,
    /// Seed for [`Feedback::Sampled`] action draws (unused by
    /// [`Feedback::Expected`], but always recorded verbatim in the
    /// trace — feeding a trace's `seed` back here reproduces its run).
    /// The sampling RNG derives from it under a fixed salt, so play
    /// draws never alias data/training streams keyed by the same
    /// master seed.
    pub seed: u64,
    /// Record diagnostics every this many rounds (`0` = auto:
    /// `max(rounds / 16, 1)`); the final round is always a checkpoint.
    pub checkpoint_every: usize,
    /// Solver for the reference one-shot equilibrium the trace's NE
    /// gap is measured against (also feeds
    /// [`LearnerKind::FixedNe`] baselines).
    pub solver: SolverKind,
}

impl Default for PlayConfig {
    fn default() -> Self {
        Self {
            rounds: 2_000,
            attacker: LearnerKind::RegretMatching,
            defender: LearnerKind::RegretMatching,
            feedback: Feedback::Expected,
            seed: 0,
            checkpoint_every: 0,
            solver: SolverKind::Auto,
        }
    }
}

impl PlayConfig {
    fn resolved_checkpoint(&self) -> usize {
        if self.checkpoint_every > 0 {
            self.checkpoint_every
        } else {
            (self.rounds / 16).max(1)
        }
    }
}

/// One diagnostics checkpoint of a repeated-game run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlinePoint {
    /// Rounds played so far.
    pub round: usize,
    /// The attacker's average external regret (clamped at zero).
    pub attacker_regret: f64,
    /// The defender's average external regret (clamped at zero).
    pub defender_regret: f64,
    /// Exploitability of the time-averaged strategy profile.
    pub exploitability: f64,
    /// Value of the time-averaged profile (attacker payoff).
    pub average_value: f64,
    /// `|average_value − ne_value|` — distance to the one-shot
    /// equilibrium.
    pub ne_gap: f64,
}

impl OnlinePoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("round", Json::Num(self.round as f64)),
            ("attacker_regret", Json::Num(self.attacker_regret)),
            ("defender_regret", Json::Num(self.defender_regret)),
            ("exploitability", Json::Num(self.exploitability)),
            ("average_value", Json::Num(self.average_value)),
            ("ne_gap", Json::Num(self.ne_gap)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, OnlineError> {
        let spec = |e: poisongame_sim::SimError| OnlineError::Spec(e.to_string());
        jsonio::check_keys(
            value,
            "online point",
            &[
                "round",
                "attacker_regret",
                "defender_regret",
                "exploitability",
                "average_value",
                "ne_gap",
            ],
        )
        .map_err(spec)?;
        let num = |key: &str| -> Result<f64, OnlineError> {
            let v = value
                .get(key)
                .ok_or_else(|| OnlineError::Spec(format!("online point needs `{key}`")))?;
            jsonio::require_num(v, key).map_err(spec)
        };
        let round = value
            .get("round")
            .ok_or_else(|| OnlineError::Spec("online point needs `round`".into()))
            .and_then(|v| jsonio::require_u64(v, "round").map_err(spec))?;
        Ok(Self {
            round: round as usize,
            attacker_regret: num("attacker_regret")?,
            defender_regret: num("defender_regret")?,
            exploitability: num("exploitability")?,
            average_value: num("average_value")?,
            ne_gap: num("ne_gap")?,
        })
    }
}

/// The serialized record of one repeated-game run: checkpointed
/// convergence diagnostics plus the final time-averaged strategies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineTrace {
    /// Rounds played.
    pub rounds: usize,
    /// The attacker's learner name.
    pub attacker: String,
    /// The defender's learner name.
    pub defender: String,
    /// Feedback mode the run used.
    pub feedback: Feedback,
    /// Seed the run used (drives [`Feedback::Sampled`] draws).
    pub seed: u64,
    /// The one-shot equilibrium value of the same game (reference).
    pub ne_value: f64,
    /// Diagnostics checkpoints in round order (the last one is the
    /// final round).
    pub points: Vec<OnlinePoint>,
    /// The attacker's time-averaged strategy after the final round.
    pub attacker_average: Vec<f64>,
    /// The defender's time-averaged strategy after the final round.
    pub defender_average: Vec<f64>,
}

impl OnlineTrace {
    /// The final checkpoint (always present: `play` records the last
    /// round unconditionally).
    pub fn last(&self) -> &OnlinePoint {
        self.points.last().expect("play always checkpoints the end")
    }

    /// JSON form (floats round-trip bit-exactly via shortest-format
    /// rendering; the seed survives beyond 2^53 as a decimal string).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rounds", Json::Num(self.rounds as f64)),
            ("attacker", Json::str(&self.attacker)),
            ("defender", Json::str(&self.defender)),
            ("feedback", Json::str(self.feedback.name())),
            ("seed", jsonio::big_u64_to_json(self.seed)),
            ("ne_value", Json::Num(self.ne_value)),
            (
                "points",
                Json::Arr(self.points.iter().map(OnlinePoint::to_json).collect()),
            ),
            ("attacker_average", Json::nums(&self.attacker_average)),
            ("defender_average", Json::nums(&self.defender_average)),
        ])
    }

    /// Render as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parse the JSON form produced by [`OnlineTrace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::Spec`] on missing or wrongly-typed
    /// fields.
    pub fn from_json(value: &Json) -> Result<Self, OnlineError> {
        let spec = |e: poisongame_sim::SimError| OnlineError::Spec(e.to_string());
        jsonio::check_keys(
            value,
            "online trace",
            &[
                "rounds",
                "attacker",
                "defender",
                "feedback",
                "seed",
                "ne_value",
                "points",
                "attacker_average",
                "defender_average",
            ],
        )
        .map_err(spec)?;
        let field = |key: &str| -> Result<&Json, OnlineError> {
            value
                .get(key)
                .ok_or_else(|| OnlineError::Spec(format!("online trace needs `{key}`")))
        };
        let string = |key: &str| -> Result<String, OnlineError> {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| OnlineError::Spec(format!("`{key}` must be a string")))
        };
        let points = field("points")?
            .as_array()
            .ok_or_else(|| OnlineError::Spec("`points` must be an array".into()))?
            .iter()
            .map(OnlinePoint::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if points.is_empty() {
            return Err(OnlineError::Spec("`points` must not be empty".into()));
        }
        Ok(Self {
            rounds: jsonio::require_u64(field("rounds")?, "rounds").map_err(spec)? as usize,
            attacker: string("attacker")?,
            defender: string("defender")?,
            feedback: Feedback::from_name(&string("feedback")?)?,
            seed: jsonio::big_u64(field("seed")?, "seed").map_err(spec)?,
            ne_value: jsonio::require_num(field("ne_value")?, "ne_value").map_err(spec)?,
            points,
            attacker_average: jsonio::num_array(value, "attacker_average").map_err(spec)?,
            defender_average: jsonio::num_array(value, "defender_average").map_err(spec)?,
        })
    }
}

fn normalized(sums: &[f64], t: usize) -> Vec<f64> {
    sums.iter().map(|s| s / t as f64).collect()
}

/// Play `config.rounds` rounds of the game `payoff` scores and return
/// the diagnostics trace.
///
/// The provider's matrix is materialized up front (memoized mode):
/// the one-shot reference equilibrium is solved on it, and every
/// subsequent round is pure matrix-vector work, so long horizons run
/// at solver speed regardless of how expensive a single empirical
/// payoff evaluation is.
///
/// # Errors
///
/// Returns [`OnlineError::BadParameter`] for `rounds == 0`, and
/// propagates payoff materialization, reference-solve and
/// learner-construction failures.
pub fn play(payoff: &mut dyn RoundPayoff, config: &PlayConfig) -> Result<OnlineTrace, OnlineError> {
    if config.rounds == 0 {
        return Err(OnlineError::BadParameter {
            what: "rounds",
            value: 0.0,
        });
    }
    let game = payoff.matrix()?;
    play_on_matrix(&game, config)
}

/// [`play`] against an already-materialized payoff matrix.
///
/// # Errors
///
/// Same conditions as [`play`] minus materialization.
pub fn play_on_matrix(game: &MatrixGame, config: &PlayConfig) -> Result<OnlineTrace, OnlineError> {
    if config.rounds == 0 {
        return Err(OnlineError::BadParameter {
            what: "rounds",
            value: 0.0,
        });
    }
    let (m, n) = game.shape();

    // The one-shot reference: NE value for the gap diagnostic, NE
    // strategies for the fixed-NE baselines.
    let reference = config.solver.instantiate(game).solve(game)?;
    let ne_value = reference.value;

    let mut attacker = config.attacker.build(m, &reference.row_strategy)?;
    let mut defender = config.defender.build(n, &reference.column_strategy)?;
    // Domain separation ("play"): the recorded seed is the caller's
    // verbatim, the sampling stream is salted away from the
    // data/training streams the same master seed drives elsewhere.
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed ^ 0x706c_6179);

    let mut x_sum = vec![0.0f64; m];
    let mut y_sum = vec![0.0f64; n];
    let mut attacker_cumulative = vec![0.0f64; m];
    let mut defender_cumulative = vec![0.0f64; n];
    let mut attacker_realized = 0.0f64;
    let mut defender_realized = 0.0f64;

    let checkpoint = config.resolved_checkpoint();
    let mut points = Vec::new();

    for t in 1..=config.rounds {
        let x = attacker.strategy().to_vec();
        let y = defender.strategy().to_vec();

        // Feedback: the payoff vector each side observes this round.
        // The defender's is negated so both learners maximize.
        let (attacker_payoffs, defender_payoffs) = match config.feedback {
            Feedback::Expected => {
                let att = game.row_values_slice(&y)?;
                let def: Vec<f64> = game
                    .column_values_slice(&x)?
                    .into_iter()
                    .map(|v| -v)
                    .collect();
                (att, def)
            }
            Feedback::Sampled => {
                let i = sample_index(&x, &mut rng);
                let j = sample_index(&y, &mut rng);
                let att: Vec<f64> = (0..m).map(|a| game.payoff(a, j)).collect();
                let def: Vec<f64> = (0..n).map(|d| -game.payoff(i, d)).collect();
                (att, def)
            }
        };

        for (s, &p) in x_sum.iter_mut().zip(&x) {
            *s += p;
        }
        for (s, &p) in y_sum.iter_mut().zip(&y) {
            *s += p;
        }
        for (c, &u) in attacker_cumulative.iter_mut().zip(&attacker_payoffs) {
            *c += u;
        }
        for (c, &u) in defender_cumulative.iter_mut().zip(&defender_payoffs) {
            *c += u;
        }
        attacker_realized += x
            .iter()
            .zip(&attacker_payoffs)
            .map(|(p, u)| p * u)
            .sum::<f64>();
        defender_realized += y
            .iter()
            .zip(&defender_payoffs)
            .map(|(p, u)| p * u)
            .sum::<f64>();

        attacker.observe(&attacker_payoffs);
        defender.observe(&defender_payoffs);

        if t % checkpoint == 0 || t == config.rounds {
            let avg_x = MixedStrategy::from_weights(normalized(&x_sum, t))?;
            let avg_y = MixedStrategy::from_weights(normalized(&y_sum, t))?;
            let average_value = game.expected_payoff(&avg_x, &avg_y)?;
            let exploitability = game.exploitability(&avg_x, &avg_y)?;
            let best = |cum: &[f64]| cum.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            points.push(OnlinePoint {
                round: t,
                attacker_regret: ((best(&attacker_cumulative) - attacker_realized) / t as f64)
                    .max(0.0),
                defender_regret: ((best(&defender_cumulative) - defender_realized) / t as f64)
                    .max(0.0),
                exploitability,
                average_value,
                ne_gap: (average_value - ne_value).abs(),
            });
        }
    }

    Ok(OnlineTrace {
        rounds: config.rounds,
        attacker: attacker.name().to_string(),
        defender: defender.name().to_string(),
        feedback: config.feedback,
        seed: config.seed,
        ne_value,
        points,
        attacker_average: normalized(&x_sum, config.rounds),
        defender_average: normalized(&y_sum, config.rounds),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::MatrixPayoff;

    fn pennies() -> MatrixGame {
        MatrixGame::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap()
    }

    fn rps() -> MatrixGame {
        MatrixGame::from_rows(&[
            vec![0.0, -1.0, 1.0],
            vec![1.0, 0.0, -1.0],
            vec![-1.0, 1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn self_play_converges_on_matching_pennies() {
        let config = PlayConfig {
            rounds: 20_000,
            ..PlayConfig::default()
        };
        let trace = play(&mut MatrixPayoff::new(pennies()), &config).unwrap();
        let last = trace.last();
        assert_eq!(last.round, 20_000);
        assert!(last.ne_gap < 1e-2, "gap {}", last.ne_gap);
        assert!(last.exploitability < 0.05, "expl {}", last.exploitability);
        assert!(last.attacker_regret < 0.05);
        // Averaged strategies near uniform.
        for p in trace.attacker_average.iter().chain(&trace.defender_average) {
            assert!((p - 0.5).abs() < 0.05, "{p}");
        }
        // Regret is non-increasing over the tail of the run.
        let first = &trace.points[0];
        assert!(last.attacker_regret <= first.attacker_regret + 1e-12);
    }

    #[test]
    fn hedge_vs_fictitious_play_converges_on_rps() {
        let config = PlayConfig {
            rounds: 30_000,
            attacker: LearnerKind::Hedge,
            defender: LearnerKind::FictitiousPlay,
            ..PlayConfig::default()
        };
        let trace = play(&mut MatrixPayoff::new(rps()), &config).unwrap();
        assert_eq!(trace.attacker, "hedge");
        assert_eq!(trace.defender, "fictitious_play");
        assert!(trace.last().ne_gap < 2e-2, "gap {}", trace.last().ne_gap);
    }

    #[test]
    fn fixed_ne_baseline_is_already_converged() {
        let config = PlayConfig {
            rounds: 500,
            attacker: LearnerKind::FixedNe,
            defender: LearnerKind::FixedNe,
            ..PlayConfig::default()
        };
        let trace = play(&mut MatrixPayoff::new(pennies()), &config).unwrap();
        assert!(trace.last().ne_gap < 1e-9);
        assert!(trace.last().exploitability < 1e-9);
    }

    #[test]
    fn fixed_pure_attacker_is_exploited() {
        // A pure attacker against an adaptive defender: the defender
        // learns the counter and drives the attacker's value below the
        // equilibrium (for pennies: to the minimum).
        let config = PlayConfig {
            rounds: 5_000,
            attacker: LearnerKind::FixedPure { action: 0 },
            defender: LearnerKind::RegretMatching,
            ..PlayConfig::default()
        };
        let trace = play(&mut MatrixPayoff::new(pennies()), &config).unwrap();
        assert!(
            trace.last().average_value < trace.ne_value - 0.5,
            "adaptive defender should beat a pure attacker: {} vs NE {}",
            trace.last().average_value,
            trace.ne_value
        );
    }

    #[test]
    fn sampled_feedback_is_seeded_and_still_converges() {
        let config = PlayConfig {
            rounds: 60_000,
            feedback: Feedback::Sampled,
            seed: 77,
            ..PlayConfig::default()
        };
        let a = play(&mut MatrixPayoff::new(pennies()), &config).unwrap();
        let b = play(&mut MatrixPayoff::new(pennies()), &config).unwrap();
        assert_eq!(a, b, "same seed, same trace");
        assert!(a.last().ne_gap < 0.05, "gap {}", a.last().ne_gap);
        let other = play(
            &mut MatrixPayoff::new(pennies()),
            &PlayConfig { seed: 78, ..config },
        )
        .unwrap();
        assert_ne!(a, other, "different seed, different sampled trace");
    }

    #[test]
    fn checkpoints_cover_the_run_and_end_on_the_final_round() {
        let config = PlayConfig {
            rounds: 1_000,
            checkpoint_every: 300,
            ..PlayConfig::default()
        };
        let trace = play(&mut MatrixPayoff::new(pennies()), &config).unwrap();
        let rounds: Vec<usize> = trace.points.iter().map(|p| p.round).collect();
        assert_eq!(rounds, vec![300, 600, 900, 1_000]);
    }

    #[test]
    fn zero_rounds_rejected() {
        let config = PlayConfig {
            rounds: 0,
            ..PlayConfig::default()
        };
        assert!(play(&mut MatrixPayoff::new(pennies()), &config).is_err());
    }

    #[test]
    fn trace_json_round_trips_bit_exactly() {
        let config = PlayConfig {
            rounds: 512,
            attacker: LearnerKind::Hedge,
            defender: LearnerKind::RegretMatching,
            feedback: Feedback::Sampled,
            seed: u64::MAX - 3,
            ..PlayConfig::default()
        };
        let trace = play(&mut MatrixPayoff::new(rps()), &config).unwrap();
        let wire = trace.to_json_string();
        let back = OnlineTrace::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.seed, u64::MAX - 3, "big seed survives the wire");
        for (a, b) in back.points.iter().zip(&trace.points) {
            assert_eq!(
                a.average_value.to_bits(),
                b.average_value.to_bits(),
                "floats must survive the wire bit-exactly"
            );
        }
        // Malformed documents are structured errors.
        assert!(OnlineTrace::from_json(&Json::parse("{}").unwrap()).is_err());
        let mut missing_points = trace.to_json();
        if let Json::Obj(fields) = &mut missing_points {
            fields.retain(|(k, _)| k != "points");
        }
        assert!(OnlineTrace::from_json(&missing_points).is_err());
        // A non-integer checkpoint round is rejected, not truncated.
        let mut bad_round = trace.to_json();
        if let Json::Obj(fields) = &mut bad_round {
            for (key, value) in fields.iter_mut() {
                if key == "points" {
                    if let Json::Arr(points) = value {
                        if let Json::Obj(point) = &mut points[0] {
                            for (pk, pv) in point.iter_mut() {
                                if pk == "round" {
                                    *pv = Json::Num(2.5);
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(OnlineTrace::from_json(&bad_round).is_err());
    }

    #[test]
    fn feedback_names_round_trip() {
        for f in [Feedback::Expected, Feedback::Sampled] {
            assert_eq!(Feedback::from_name(f.name()).unwrap(), f);
        }
        assert!(Feedback::from_name("oracle").is_err());
    }
}
