//! Finite two-player zero-sum game substrate.
//!
//! The paper's poisoning game is continuous, but its defender-NE
//! approximation (Algorithm 1) is validated here against *discretized*
//! matrix games solved exactly. This crate provides that machinery:
//! payoff matrices, validated mixed strategies, pure-equilibrium
//! (saddle-point) detection, and three independent solvers — a
//! hand-written primal simplex LP solver (exact), fictitious play and
//! multiplicative weights (iterative) — plus exploitability as the
//! universal quality measure.
//!
//! Convention: the **row player maximizes** the payoff, the **column
//! player minimizes** it. In the poisoning game the attacker is the
//! row player and the defender the column player.
//!
//! # Example
//!
//! ```
//! use poisongame_theory::{MatrixGame, solve_lp};
//!
//! // Rock-paper-scissors: the unique NE is uniform for both players.
//! let rps = MatrixGame::from_rows(&[
//!     vec![0.0, -1.0, 1.0],
//!     vec![1.0, 0.0, -1.0],
//!     vec![-1.0, 1.0, 0.0],
//! ]).unwrap();
//! let solution = solve_lp(&rps).unwrap();
//! assert!(solution.value.abs() < 1e-9);
//! for p in solution.row_strategy.probabilities() {
//!     assert!((p - 1.0 / 3.0).abs() < 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fictitious;
pub mod linsys;
pub mod matrix_game;
pub mod multiplicative;
pub mod simplex;
pub mod solver;
pub mod strategy;
pub mod support_enum;

pub use error::GameError;
pub use fictitious::{solve_fictitious_play, FictitiousPlayConfig};
pub use matrix_game::MatrixGame;
pub use multiplicative::{softmax, solve_multiplicative_weights, MultiplicativeWeightsConfig};
pub use simplex::solve_lp;
pub use solver::{
    FictitiousPlay, MultiplicativeWeights, SimplexLp, SolverKind, ZeroSumSolver, AUTO_EXACT_LIMIT,
};
pub use strategy::{sample_index, MixedStrategy, Solution};
