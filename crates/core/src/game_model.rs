//! The continuous poisoning game `U(S_a, θ) = Σ_{p_i ≥ θ} n_i·E(p_i) + Γ(θ)`.

use crate::curves::{CostCurve, EffectCurve};
use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// The attacker's pure strategy: placements `{(p_i, n_i)}` on the
/// removal-percentile axis (the paper's `S_a = {[r_i, n_i]}`).
pub type AttackPlacement = Vec<(f64, usize)>;

/// The poisoning game instance: curves plus the poison budget `N`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoisonGame {
    effect: EffectCurve,
    cost: CostCurve,
    n_points: usize,
}

impl PoisonGame {
    /// Build a game.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParameter`] if `n_points == 0` (with no
    /// budget there is no game).
    pub fn new(effect: EffectCurve, cost: CostCurve, n_points: usize) -> Result<Self, CoreError> {
        if n_points == 0 {
            return Err(CoreError::BadParameter {
                what: "n_points",
                value: 0.0,
            });
        }
        Ok(Self {
            effect,
            cost,
            n_points,
        })
    }

    /// The effect curve `E(p)`.
    pub fn effect(&self) -> &EffectCurve {
        &self.effect
    }

    /// The cost curve `Γ(p)`.
    pub fn cost(&self) -> &CostCurve {
        &self.cost
    }

    /// The poison budget `N`.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// The zero-sum payoff to the **attacker** for pure strategies:
    /// surviving points (placed at `p_i ≥ θ`, i.e. inside the filter)
    /// contribute `n_i·E(p_i)`; the defender additionally pays `Γ(θ)`.
    pub fn payoff(&self, attack: &AttackPlacement, theta: f64) -> f64 {
        let damage: f64 = attack
            .iter()
            .filter(|(p, _)| *p >= theta - 1e-12)
            .map(|(p, n)| *n as f64 * self.effect.eval(*p))
            .sum();
        damage + self.cost.eval(theta)
    }

    /// The attacker's best-response placement against a *pure* filter
    /// strength `θ` — the paper's BRF (1a)/(1b): if placing just inside
    /// the filter is profitable (`E(θ) > 0`), put all `N` points there;
    /// otherwise nothing the attacker does helps and any removed
    /// placement (payoff 0) is a best response — we return an empty
    /// placement for that case.
    pub fn attacker_best_response(&self, theta: f64) -> AttackPlacement {
        if self.effect.eval(theta) > 0.0 {
            vec![(theta, self.n_points)]
        } else {
            Vec::new()
        }
    }

    /// The defender's best-response filter strength against a known
    /// attack, by direct minimization over a grid of `resolution`
    /// candidate strengths (the BRF (2a)/(2b) of the paper, computed
    /// numerically rather than symbolically).
    pub fn defender_best_response(&self, attack: &AttackPlacement, resolution: usize) -> f64 {
        let grid = percentile_grid(resolution);
        let mut best = (0.0, f64::INFINITY);
        for &theta in &grid {
            let loss = self.payoff(attack, theta);
            if loss < best.1 {
                best = (theta, loss);
            }
        }
        best.0
    }

    /// The percentile form of the paper's `T_a`: placements deeper than
    /// this gain the attacker nothing. `None` when every placement is
    /// profitable.
    pub fn profit_threshold(&self) -> Option<f64> {
        self.effect.profit_threshold()
    }
}

/// An evenly spaced grid of `resolution + 1` percentiles covering
/// `[0, 0.5]` — the operating range of the filter (removing more than
/// half of each class is never rational: `Γ` dwarfs any poison damage
/// there, and the paper's Figure 1 sweeps 0–40 %).
pub fn percentile_grid(resolution: usize) -> Vec<f64> {
    let resolution = resolution.max(1);
    (0..=resolution)
        .map(|i| 0.5 * i as f64 / resolution as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game() -> PoisonGame {
        let effect =
            EffectCurve::from_samples(&[(0.0, 1.0), (0.2, 0.5), (0.4, 0.0), (0.5, -0.2)]).unwrap();
        let cost = CostCurve::from_samples(&[(0.0, 0.0), (0.25, 5.0), (0.5, 20.0)]).unwrap();
        PoisonGame::new(effect, cost, 10).unwrap()
    }

    #[test]
    fn zero_budget_rejected() {
        let g = game();
        assert!(PoisonGame::new(g.effect().clone(), g.cost().clone(), 0).is_err());
    }

    #[test]
    fn payoff_counts_only_survivors() {
        let g = game();
        // One placement outside the filter (removed), one inside.
        let attack = vec![(0.05, 4), (0.3, 6)];
        // θ = 0.1: the 0.05 placement is removed (0.05 < 0.1), the 0.3
        // placement survives.
        let u = g.payoff(&attack, 0.1);
        let expected = 6.0 * g.effect().eval(0.3) + g.cost().eval(0.1);
        assert!((u - expected).abs() < 1e-12);
    }

    #[test]
    fn payoff_with_no_filter_counts_everything() {
        let g = game();
        let attack = vec![(0.05, 4), (0.3, 6)];
        let u = g.payoff(&attack, 0.0);
        let expected = 4.0 * g.effect().eval(0.05) + 6.0 * g.effect().eval(0.3);
        assert!((u - expected).abs() < 1e-12);
    }

    #[test]
    fn attacker_best_response_hugs_filter() {
        let g = game();
        let br = g.attacker_best_response(0.1);
        assert_eq!(br, vec![(0.1, 10)]);
        // Beyond the profit threshold the attacker abstains.
        let br = g.attacker_best_response(0.45);
        assert!(br.is_empty());
    }

    #[test]
    fn defender_best_response_balances_terms() {
        let g = game();
        // All poison at the boundary: tightening to just past 0.0
        // removes everything at tiny Γ cost.
        let attack = vec![(0.0, 10)];
        let br = g.defender_best_response(&attack, 200);
        assert!(br > 0.0 && br < 0.1, "br {br}");
        // Attack so deep it is unprofitable to chase: θ = 0 is best.
        let attack = vec![(0.45, 10)];
        let br = g.defender_best_response(&attack, 200);
        let loss_at_br = g.payoff(&attack, br);
        let loss_at_zero = g.payoff(&attack, 0.0);
        assert!(loss_at_br <= loss_at_zero + 1e-12);
    }

    #[test]
    fn profit_threshold_matches_curve() {
        let g = game();
        let t = g.profit_threshold().unwrap();
        assert!((t - 0.4).abs() < 1e-9, "threshold {t}");
    }

    #[test]
    fn grid_covers_operating_range() {
        let grid = percentile_grid(10);
        assert_eq!(grid.len(), 11);
        assert_eq!(grid[0], 0.0);
        assert_eq!(*grid.last().unwrap(), 0.5);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(percentile_grid(0).len(), 2);
    }
}
